"""Benchmark/regeneration of the Sec. III-B equivalence claim.

PF and PCF produce (theoretically) identical results failure-free; under
one shared random schedule their per-node estimates coincide to rounding
for the entire run.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import equivalence_experiment


def test_pf_pcf_equivalence(benchmark, scale):
    dimension = {"small": 5, "medium": 6, "paper": 7}[scale]
    result = run_once(
        benchmark, equivalence_experiment, dimension=dimension, rounds=150
    )
    emit(result)
    label_to_value = {row[0]: row[1] for row in result.rows}
    assert label_to_value["max |PF - PCF| / |truth| (whole run)"] < 1e-9
