"""Benchmark suite: one module per paper figure/table plus ablations.

Run with ``pytest benchmarks/ --benchmark-only``; set
``REPRO_BENCH_SCALE=medium|paper`` for larger parameter ranges.
"""
