"""Benchmark/regeneration of Fig. 6 (PCF achievable accuracy vs scale).

Paper shape: in the same sweep where PF decays (Fig. 3), PCF reaches the
1e-15 target band at every size and its error grows much more slowly with
n.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import fig3_pf_accuracy, fig6_pcf_accuracy


def test_fig6_pcf_accuracy_holds(benchmark, scale):
    result = run_once(benchmark, fig6_pcf_accuracy, scale=scale)
    emit(result)

    index = {h: i for i, h in enumerate(result.headers)}
    for row in result.rows:
        # Every configuration stays within ~10x of the 1e-15 target.
        assert row[index["mean_max_rel_error"]] < 1e-14, row


def test_fig6_vs_fig3_contrast(benchmark, scale):
    def both():
        return (
            fig3_pf_accuracy(scale=scale, seeds=(0,)),
            fig6_pcf_accuracy(scale=scale, seeds=(0,)),
        )

    pf, pcf = run_once(benchmark, both)
    emit(pf)
    emit(pcf)
    index = {h: i for i, h in enumerate(pf.headers)}
    largest_pf = max(r[index["mean_max_rel_error"]] for r in pf.rows)
    largest_pcf = max(r[index["mean_max_rel_error"]] for r in pcf.rows)
    # At the top of the sweep PCF beats PF by a clear margin.
    assert largest_pf > 3 * largest_pcf
