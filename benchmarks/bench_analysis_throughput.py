"""Microbenchmarks: campaign analytics throughput.

Not a paper figure — these quantify the cost of the analysis layer on a
synthetic 10k-cell ``results.jsonl``: loading (parse + era-normalize +
dedup) and summarizing (groupby + scenario aggregation). The rows/sec
numbers bound how quickly a dashboard refresh tracks a large in-flight
sweep; the BENCH_engine.json ``analysis`` entry records the baseline.
"""

import json
import math

import pytest

from repro.analysis.campaigns.frame import Frame
from repro.analysis.campaigns.loader import load_records, normalize_record
from repro.analysis.campaigns.summary import scenario_summary

N_CELLS = 10_000
ALGORITHMS = ("push_sum", "push_flow", "push_cancel_flow")
FAULTS = ("none", "churn0.05", "partition@40-heal@80", "outage@40+30")


def _synthetic_record(i: int) -> dict:
    algorithm = ALGORITHMS[i % len(ALGORITHMS)]
    fault = FAULTS[i % len(FAULTS)]
    converged = i % 5 != 0
    return {
        "cell_id": f"{algorithm}|hypercube-32|{fault}|s{i}",
        "status": "ok",
        "algorithm": algorithm,
        "topology": "hypercube-32",
        "fault": fault,
        "seed": i,
        "n": 32,
        "rounds": 160,
        "epsilon": 1e-6,
        "converged": converged,
        "rounds_to_tolerance": 60 + i % 40 if converged else None,
        "final_error": 10.0 ** (-(i % 12) - 1),
        "mass_drift_floor": "nan" if i % 97 == 0 else 1e-15 * (i % 7),
        "recovery_rounds": float(i % 30) if fault != "none" else None,
        "recovered": fault == "none" or i % 3 != 0,
        "alerts": {"restart_regression": i % 11 == 0 and 1 or 0},
        "alerts_total": 1 if i % 11 == 0 else 0,
        "flight_dumps": [],
        "wall_s": 0.1 + (i % 10) / 100.0,
        "recorded_at": 1_700_000_000.0 + i * 0.25,
        "attempts": 1,
        "engine": "object",
    }


@pytest.fixture(scope="module")
def synthetic_results(tmp_path_factory):
    path = tmp_path_factory.mktemp("analysis_bench") / "results.jsonl"
    with path.open("w") as fh:
        for i in range(N_CELLS):
            fh.write(json.dumps(_synthetic_record(i)) + "\n")
    return path


def test_load_results_jsonl_rows_per_sec(benchmark, synthetic_results):
    """Parse + normalize + dedup a 10k-cell results.jsonl."""
    records, duplicates, skipped = benchmark(load_records, synthetic_results)
    assert len(records) == N_CELLS
    assert duplicates == 0 and skipped == 0
    stats = benchmark.stats.stats
    benchmark.extra_info["rows_per_sec"] = round(N_CELLS / stats.mean, 1)


def test_scenario_summary_rows_per_sec(benchmark, synthetic_results):
    """Groupby + aggregate 10k normalized rows into the scenario table."""
    records, _dup, _skip = load_records(synthetic_results)
    frame = Frame.from_records(records)

    summary = benchmark(scenario_summary, frame)
    assert len(summary) == len(ALGORITHMS) * len(FAULTS)
    for row in summary.rows():
        assert math.isfinite(float(row["median_final_error"]))
    stats = benchmark.stats.stats
    benchmark.extra_info["rows_per_sec"] = round(N_CELLS / stats.mean, 1)


def test_normalize_record_cost(benchmark):
    """Per-record era detection + tagged-float parsing cost."""
    raw = _synthetic_record(123)
    record = benchmark(normalize_record, dict(raw))
    assert record["schema_era"] == 4
