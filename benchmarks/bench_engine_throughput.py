"""Microbenchmarks: simulation engine throughput.

Not a paper figure — these quantify the two engines' cost per gossip round
(the practical reason the vectorized backend exists for the 2^15-node
sweeps) and the relative per-round cost of the three protocols.
"""

import numpy as np
import pytest

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
from repro.algorithms.registry import instantiate
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import UniformGossipSchedule
from repro.topology import hypercube
from repro.vectorized.parity import vector_engine_for

ALGORITHMS = ("push_sum", "push_flow", "push_cancel_flow")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_object_engine_round_cost(benchmark, algorithm):
    topo = hypercube(6)  # 64 nodes
    data = np.random.default_rng(0).uniform(size=topo.n)
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    algs = instantiate(algorithm, topo, initial)
    engine = SynchronousEngine(topo, algs, UniformGossipSchedule(topo.n, 1))

    benchmark(engine.step)
    assert engine.round > 0


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_vector_engine_round_cost(benchmark, algorithm):
    topo = hypercube(10)  # 1024 nodes, 16x the object benchmark's size
    data = np.random.default_rng(0).uniform(size=topo.n)
    engine = vector_engine_for(algorithm)(
        topo, data, np.ones(topo.n), seed=1
    )

    benchmark(engine.step)
    assert engine.round > 0


def test_vector_engine_large_scale_round(benchmark):
    topo = hypercube(14)  # 16384 nodes
    data = np.random.default_rng(0).uniform(size=topo.n)
    engine = vector_engine_for("push_cancel_flow")(
        topo, data, np.ones(topo.n), seed=1
    )
    benchmark(engine.step)


def test_full_reduction_wall_time(benchmark):
    """End-to-end: a complete 64-node PCF reduction to 1e-15."""
    from repro import run_reduction

    topo = hypercube(6)
    data = np.random.default_rng(0).uniform(size=topo.n)

    def reduce_once():
        return run_reduction(
            topo, data, algorithm="push_cancel_flow", epsilon=1e-15,
            backend="vector",
        )

    result = benchmark(reduce_once)
    assert result.converged
