"""Benchmark/regeneration of Fig. 4 (PF under a permanent link failure).

Paper shape: on a 6-D hypercube, handling a single permanent link failure
(at round 75 or 175) throws PF's max/median local error back almost to the
initial level — "the computation is basically restarted from the
beginning no matter how late the failure occurs".
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import fig4_pf_failure


def test_fig4_pf_restart_behaviour(benchmark, scale):
    result = run_once(benchmark, fig4_pf_failure, fail_rounds=(75, 175))
    emit(result)

    index = {h: i for i, h in enumerate(result.headers)}
    for row in result.rows:
        # Massive error jump, most convergence progress undone.
        assert row[index["jump_factor"]] > 1e3
        assert row[index["restart_fraction"]] > 0.6
    # The late failure leaves no room to re-converge within 200 rounds.
    late = [r for r in result.rows if r[index["fail_round"]] == 175][0]
    assert late[index["final_error"]] > 1e-6
