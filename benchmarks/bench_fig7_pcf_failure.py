"""Benchmark/regeneration of Fig. 7 (PCF under a permanent link failure).

Paper shape: the identical failure scenario of Fig. 4 (same schedule
seeds), but PCF "tolerates the failure without any fall-back in the
convergence".
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import fig4_pf_failure, fig7_pcf_failure


def test_fig7_pcf_no_fallback(benchmark, scale):
    result = run_once(benchmark, fig7_pcf_failure, fail_rounds=(75, 175))
    emit(result)

    index = {h: i for i, h in enumerate(result.headers)}
    for row in result.rows:
        assert row[index["restart_fraction"]] < 0.5
        recovery = row[index["recovery_rounds"]]
        assert recovery is not None and recovery <= 15
        assert row[index["final_error"]] < 1e-9


def test_fig7_vs_fig4_overlay(benchmark, scale):
    def both():
        return (
            fig4_pf_failure(fail_rounds=(75,)),
            fig7_pcf_failure(fail_rounds=(75,)),
        )

    pf, pcf = run_once(benchmark, both)
    index = {h: i for i, h in enumerate(pf.headers)}
    # Identical schedules: the error level just before the failure agrees
    # to rounding (PF and PCF are equivalent until the failure, Sec. III-B).
    before_pf = pf.rows[0][index["error_before"]]
    before_pcf = pcf.rows[0][index["error_before"]]
    assert abs(before_pf - before_pcf) <= 1e-6 * abs(before_pf)
    # Radically different after.
    assert pf.rows[0][index["jump_factor"]] > 10 * pcf.rows[0][index["jump_factor"]]
    assert (
        pf.rows[0][index["final_error"]] > 100 * pcf.rows[0][index["final_error"]]
    )
