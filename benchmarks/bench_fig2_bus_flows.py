"""Benchmark/regeneration of Fig. 2 (bus-network case study).

Regenerates the mechanism behind the paper's Sec. II-B example: on a bus
with ``v_1 = n + 1`` and the average pinned at 2, PF's equilibrium flows
grow linearly with n while PCF's cancellation keeps them O(1).
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import fig2_bus_flows


def rows_by(result, **filters):
    index = {h: i for i, h in enumerate(result.headers)}
    return [
        {h: row[index[h]] for h in index}
        for row in result.rows
        if all(row[index[k]] == v for k, v in filters.items())
    ]


def test_fig2_bus_flow_growth(benchmark, scale):
    sizes = {"small": (8, 16, 32), "medium": (8, 16, 32, 64),
             "paper": (8, 16, 32, 64, 128)}[scale]
    result = run_once(benchmark, fig2_bus_flows, sizes=sizes, epsilon=1e-11)
    emit(result)

    pf = rows_by(result, algorithm="push_flow")
    pcf = rows_by(result, algorithm="push_cancel_flow_hardened")
    # Shape: PF's max flow tracks the analytic n-1 tree flow...
    for row in pf:
        assert row["max_flow_magnitude"] > 0.5 * (row["n"] - 1)
    # ... and grows with n, while PCF's flows stay O(1)-ish.
    assert pf[-1]["max_flow_magnitude"] > 2.5 * pf[0]["max_flow_magnitude"]
    assert pcf[-1]["max_flow_magnitude"] < 0.5 * pf[-1]["max_flow_magnitude"]
    # ... and sublinearly in n: PF's flow doubled with n, PCF's didn't.
    pf_growth = pf[-1]["max_flow_magnitude"] / pf[0]["max_flow_magnitude"]
    pcf_growth = pcf[-1]["max_flow_magnitude"] / max(
        pcf[0]["max_flow_magnitude"], 1.0
    )
    assert pcf_growth < pf_growth
    for row in pf + pcf:
        assert row["max_rel_error"] < 1e-10
