"""Write ``BENCH_engine.json``: a machine-readable engine-throughput baseline.

Usage::

    PYTHONPATH=src python benchmarks/engine_baseline.py [output.json]
    PYTHONPATH=src python benchmarks/engine_baseline.py --quick --json out.json

``--quick`` is the CI mode (n=32 only, short timing windows); the
``bench-check`` job feeds its output to ``benchmarks/check_regression.py``,
which compares engine-to-engine ratios against the committed baseline.

Measures steady-state rounds/sec of the synchronous object engine and the
vectorized engine at n ∈ {32, 128} (push-flow, the paper's workhorse), with
telemetry detached — the committed numbers are the trajectory future PRs
compare against. Each entry carries two overhead records for the same
rounds with a telemetry observer set attached (collector + phase timer +
probes):

- ``overhead`` — every round sampled (the historical full-detail cost);
- ``overhead_sampled`` — the default-on configuration, sampling one round
  in :data:`repro.telemetry.sampling.DEFAULT_SAMPLE_EVERY`; engines skip
  per-message hook dispatch and phase timing on unsampled rounds, which
  is what keeps this slowdown within the CI-gated 1.5× budget.

Wall-clock numbers are machine-dependent; compare ratios, not absolutes.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import tempfile
import time

import numpy as np

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
from repro.algorithms.registry import instantiate
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import UniformGossipSchedule
from repro.telemetry import (
    DEFAULT_SAMPLE_EVERY,
    MetricsRegistry,
    PhaseTimer,
    RoundSampler,
    TelemetryCollector,
)
from repro.telemetry.probes import FlowMagnitudeProbe, MassConservationProbe
from repro.topology import hypercube
from repro.vectorized.backends import available_backends
from repro.vectorized.batched import BatchedEngine, BatchedRun
from repro.vectorized.parity import vector_engine_for

ALGORITHM = "push_flow"
SIZES = (32, 128)  # hypercube(5), hypercube(7)
MIN_SECONDS = 0.4
#: The batched entry: one campaign-style seed axis of this many runs,
#: executed as a single whole-array program, compared against running the
#: same runs one-by-one on the object engine (the pre-batching campaign
#: path). Same machine, same process — the speedup is a ratio, so it is
#: hardware-independent and CI-gateable. The entry is measured once per
#: available kernel backend (numpy always; numba when installed, with an
#: informational numba-vs-numpy ratio).
BATCHED_RUNS = 16
BATCHED_N = 1024  # hypercube(10); --quick drops to 128
#: The batched-groups entry: a whole campaign (all four algorithms as
#: separate (algorithm, topology) groups) executed with multiprocess
#: workers, vs the estimated sequential object-engine cost of the same
#: cells. Informational — absolute scaling depends on core count.
GROUPS_N = 4096  # hypercube(12); --quick drops to 128
GROUPS_ALGORITHMS = (
    "push_sum",
    "push_flow",
    "push_cancel_flow",
    "push_cancel_flow_hardened",
)


def _telemetry_observers(sampler=None):
    registry = MetricsRegistry()
    return [
        TelemetryCollector(registry),
        PhaseTimer(registry, sampler=sampler),
        FlowMagnitudeProbe(registry=registry, sampler=sampler),
        MassConservationProbe(registry=registry, sampler=sampler),
    ]


def _sync_engine(n, observers=()):
    topo = hypercube(int(np.log2(n)))
    data = np.random.default_rng(0).uniform(size=topo.n)
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    algs = instantiate(ALGORITHM, topo, initial)
    return SynchronousEngine(
        topo,
        algs,
        UniformGossipSchedule(topo.n, 1),
        observers=list(observers),
    )


def _vector_engine(n, observers=()):
    topo = hypercube(int(np.log2(n)))
    data = np.random.default_rng(0).uniform(size=topo.n)
    return vector_engine_for(ALGORITHM)(
        topo, data, np.ones(topo.n), seed=1, observers=list(observers)
    )


def _batched_engine(n, runs=BATCHED_RUNS, backend=None):
    topo = hypercube(int(np.log2(n)))
    children = np.random.SeedSequence(7).spawn(runs)
    batch = []
    for child in children:
        rng = np.random.default_rng(child)
        batch.append(
            BatchedRun(
                topology=topo,
                values=rng.uniform(size=topo.n),
                weights=np.ones(topo.n),
                rng=rng,
            )
        )
    return BatchedEngine(ALGORITHM, batch, backend=backend)


def _groups_entry(bn, rounds, sync_rps, workers):
    """Multiprocess batched groups: one whole campaign, all cores.

    Runs the same four-algorithm campaign twice — serial batched
    (``workers=0``) and with one worker process per (algorithm, topology)
    group — and reports the group-parallel scaling plus the combined
    speedup over the estimated cost of executing every cell sequentially
    on the object engine (``cells * rounds / sync_rps``, with ``sync_rps``
    measured on this machine in this process).
    """
    from repro.campaigns import CampaignSpec, run_campaign

    def spec(tag):
        # epsilon far below the attainable error floor: no cell retires
        # early, so both runs execute exactly cells * rounds work.
        return CampaignSpec.from_dict(
            {
                "name": f"bench-groups-{tag}",
                "engine": "batched",
                "algorithms": list(GROUPS_ALGORITHMS),
                "topologies": [{"family": "hypercube", "n": bn}],
                "faults": [{"kind": "none"}],
                "seeds": list(range(BATCHED_RUNS)),
                "rounds": rounds,
                "epsilon": 1e-300,
            }
        )

    cells = len(GROUPS_ALGORITHMS) * BATCHED_RUNS
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        t0 = time.perf_counter()
        serial = run_campaign(spec("serial"), root / "serial")
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = run_campaign(
            spec("parallel"), root / "parallel", workers=workers
        )
        parallel_s = time.perf_counter() - t0
    assert (serial.failed, parallel.failed) == (0, 0)
    sequential_sync_s = cells * rounds / max(sync_rps, 1e-9)
    return {
        "engine": "batched-groups",
        "algorithm": "all",
        "n": bn,
        "runs": BATCHED_RUNS,
        "groups": len(GROUPS_ALGORITHMS),
        "workers": workers,
        "rounds": rounds,
        "serial_seconds": round(serial_s, 6),
        "parallel_seconds": round(parallel_s, 6),
        "group_parallel_speedup": round(serial_s / max(parallel_s, 1e-9), 2),
        "sync_rounds_per_sec": sync_rps,
        "estimated_sequential_sync_seconds": round(sequential_sync_s, 6),
        # Informational: how much faster the whole multiprocess campaign
        # is than sequential object-engine cells. CI gates the in-process
        # batched ratio instead (see check_regression.py).
        "speedup_vs_sequential_sync": round(
            sequential_sync_s / max(parallel_s, 1e-9), 2
        ),
    }


def _server_entry(bn, rounds):
    """Live metrics server overhead: one small batched campaign, twice.

    Runs the same single-algorithm campaign dark (no socket) and live
    (ephemeral-port server, per-record snapshot merging, server.json)
    and reports the wall-clock ratio. Informational: the live plane is
    default-off, and with nothing scraping, the server thread is idle —
    the ratio measures the always-on cost (registry snapshots riding the
    result channel plus the listener thread), not scrape cost.
    """
    from repro.campaigns import CampaignSpec, run_campaign

    def spec(tag):
        return CampaignSpec.from_dict(
            {
                "name": f"bench-server-{tag}",
                "engine": "batched",
                "algorithms": [ALGORITHM],
                "topologies": [{"family": "hypercube", "n": bn}],
                "faults": [{"kind": "none"}],
                "seeds": list(range(BATCHED_RUNS)),
                "rounds": rounds,
                "epsilon": 1e-300,
            }
        )

    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        t0 = time.perf_counter()
        dark = run_campaign(spec("dark"), root / "dark")
        dark_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        live = run_campaign(spec("live"), root / "live", metrics_port=0)
        live_s = time.perf_counter() - t0
    assert (dark.failed, live.failed) == (0, 0)
    return {
        "engine": "campaign-live-server",
        "algorithm": ALGORITHM,
        "n": bn,
        "runs": BATCHED_RUNS,
        "rounds": rounds,
        "dark_seconds": round(dark_s, 6),
        "live_seconds": round(live_s, 6),
        "live_overhead_ratio": round(live_s / max(dark_s, 1e-9), 3),
    }


def rounds_per_sec(factory, min_seconds: float = MIN_SECONDS) -> dict:
    """Time ``engine.run`` in growing chunks until >= ``min_seconds`` elapsed."""
    engine = factory()
    engine.run(16)  # warm-up (allocations, first-touch)
    rounds = 0
    elapsed = 0.0
    chunk = 64
    while elapsed < min_seconds:
        t0 = time.perf_counter()
        engine.run(chunk)
        elapsed += time.perf_counter() - t0
        rounds += chunk
        chunk = min(chunk * 2, 8192)
    return {
        "rounds": rounds,
        "seconds": round(elapsed, 6),
        "rounds_per_sec": round(rounds / elapsed, 2),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Measure engine rounds/sec and write a JSON baseline."
    )
    parser.add_argument(
        "output",
        nargs="?",
        default=None,
        help="output path (positional form, kept for compatibility)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        metavar="PATH",
        default=None,
        help="output path (takes precedence over the positional form)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: n=32 only, short timing windows (noisier numbers)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(sys.argv[1:] if argv is None else argv)
    output = args.json_path or args.output or "BENCH_engine.json"
    sizes = SIZES[:1] if args.quick else SIZES
    min_seconds = 0.1 if args.quick else MIN_SECONDS
    entries = []
    for kind, factory in (("sync", _sync_engine), ("vector", _vector_engine)):
        for n in sizes:
            plain = rounds_per_sec(lambda: factory(n), min_seconds)
            observed = rounds_per_sec(
                lambda: factory(n, observers=_telemetry_observers()), min_seconds
            )
            sampled = rounds_per_sec(
                lambda: factory(
                    n,
                    observers=_telemetry_observers(
                        RoundSampler(every=DEFAULT_SAMPLE_EVERY)
                    ),
                ),
                min_seconds,
            )
            entries.append(
                {
                    "engine": kind,
                    "algorithm": ALGORITHM,
                    "n": n,
                    **plain,
                    "overhead": {
                        "telemetry_rounds_per_sec": observed["rounds_per_sec"],
                        "slowdown": round(
                            plain["rounds_per_sec"]
                            / max(observed["rounds_per_sec"], 1e-9),
                            3,
                        ),
                    },
                    "overhead_sampled": {
                        "sample_every": DEFAULT_SAMPLE_EVERY,
                        "telemetry_rounds_per_sec": sampled["rounds_per_sec"],
                        "slowdown": round(
                            plain["rounds_per_sec"]
                            / max(sampled["rounds_per_sec"], 1e-9),
                            3,
                        ),
                    },
                }
            )
            print(
                f"{kind:6s} n={n:4d}  {plain['rounds_per_sec']:>10.1f} rounds/s  "
                f"(telemetry: full {entries[-1]['overhead']['slowdown']:.2f}x, "
                f"sampled 1/{DEFAULT_SAMPLE_EVERY} "
                f"{entries[-1]['overhead_sampled']['slowdown']:.2f}x)"
            )

    # Batched campaign axis: BATCHED_RUNS independent runs as one program
    # vs the same runs executed sequentially on the object engine. One
    # batched "round" advances all runs, so the axis-level speedup is
    # runs * batched_rps / sync_rps. Measured once per available kernel
    # backend; the numpy entry is the CI-gated reference, the numba entry
    # carries an informational numba-vs-numpy ratio.
    bn = 128 if args.quick else BATCHED_N
    sync_ref = rounds_per_sec(lambda: _sync_engine(bn), min_seconds)
    numpy_rps = None
    for backend in available_backends():
        batched = rounds_per_sec(
            lambda: _batched_engine(bn, backend=backend), min_seconds
        )
        speedup = round(
            BATCHED_RUNS
            * batched["rounds_per_sec"]
            / max(sync_ref["rounds_per_sec"], 1e-9),
            2,
        )
        entry = {
            "engine": "batched",
            "algorithm": ALGORITHM,
            "backend": backend,
            "n": bn,
            "runs": BATCHED_RUNS,
            **batched,
            "sync_rounds_per_sec": sync_ref["rounds_per_sec"],
            "speedup_vs_sequential_sync": speedup,
        }
        if backend == "numpy":
            numpy_rps = batched["rounds_per_sec"]
        elif numpy_rps:
            entry["numba_speedup_vs_numpy"] = round(
                batched["rounds_per_sec"] / numpy_rps, 3
            )
        entries.append(entry)
        print(
            f"batched[{backend}] n={bn:4d} x{BATCHED_RUNS} runs  "
            f"{batched['rounds_per_sec']:>10.1f} axis rounds/s  "
            f"({speedup:.1f}x vs sequential object engine at "
            f"{sync_ref['rounds_per_sec']:.1f} rounds/s)"
        )

    # Multiprocess batched groups: a whole four-algorithm campaign with
    # one worker per group, vs the estimated sequential object-engine
    # cost of the same cells. Informational — scaling tracks core count.
    gn = 128 if args.quick else GROUPS_N
    groups_rounds = 40 if args.quick else 120
    groups_sync = (
        sync_ref
        if gn == bn
        else rounds_per_sec(lambda: _sync_engine(gn), min_seconds)
    )
    workers = max(1, min(len(GROUPS_ALGORITHMS), os.cpu_count() or 1))
    groups = _groups_entry(
        gn, groups_rounds, groups_sync["rounds_per_sec"], workers
    )
    entries.append(groups)
    print(
        f"batched-groups n={gn:4d} {groups['groups']} groups x "
        f"{BATCHED_RUNS} runs, {workers} workers  "
        f"{groups['group_parallel_speedup']:.2f}x group scaling, "
        f"{groups['speedup_vs_sequential_sync']:.1f}x vs sequential "
        "object engine (informational)"
    )

    # Live observability plane: the same campaign with and without the
    # HTTP metrics server + snapshot aggregation. Informational.
    server = _server_entry(gn, groups_rounds)
    entries.append(server)
    print(
        f"campaign-server n={gn:4d} live/dark wall-clock "
        f"{server['live_overhead_ratio']:.2f}x (informational; "
        "default-off, nothing scraping)"
    )
    payload = {
        "benchmark": "engine_throughput",
        "algorithm": ALGORITHM,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": args.quick,
        "note": (
            "rounds/sec with no observers attached; 'overhead' shows the "
            "same engine with a full telemetry observer set, "
            "'overhead_sampled' the default-on sampled configuration "
            "(one round in DEFAULT_SAMPLE_EVERY). The 'batched' entries "
            "run a whole seed axis as one whole-array program, once per "
            "available kernel backend; speedup_vs_sequential_sync is a "
            "same-machine ratio against the object engine (CI gates the "
            "numpy entry; numba and batched-groups are informational). "
            "The 'batched-groups' entry runs a four-algorithm campaign "
            "with one worker process per group; 'campaign-live-server' "
            "reruns a campaign with the --metrics-port HTTP plane up "
            "(informational: default-off). Compare ratios across "
            "commits, not absolute wall-clock."
        ),
        "entries": entries,
    }
    with open(output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
