"""Write ``BENCH_engine.json``: a machine-readable engine-throughput baseline.

Usage::

    PYTHONPATH=src python benchmarks/engine_baseline.py [output.json]

Measures steady-state rounds/sec of the synchronous object engine and the
vectorized engine at n ∈ {32, 128} (push-flow, the paper's workhorse), with
telemetry detached — the committed numbers are the trajectory future PRs
compare against, and the ``overhead`` entries record the relative cost of
running the same rounds with a full telemetry observer set attached
(collector + phase timer + probes), which is the quantity the telemetry
layer promises to keep small when *disabled* (observers detached entirely).

Wall-clock numbers are machine-dependent; compare ratios, not absolutes.
"""

from __future__ import annotations

import json
import platform
import sys
import time

import numpy as np

from repro.algorithms.aggregates import AggregateKind, initial_mass_pairs
from repro.algorithms.registry import instantiate
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import UniformGossipSchedule
from repro.telemetry import MetricsRegistry, PhaseTimer, TelemetryCollector
from repro.telemetry.probes import FlowMagnitudeProbe, MassConservationProbe
from repro.topology import hypercube
from repro.vectorized.parity import vector_engine_for

ALGORITHM = "push_flow"
SIZES = (32, 128)  # hypercube(5), hypercube(7)
MIN_SECONDS = 0.4


def _telemetry_observers():
    registry = MetricsRegistry()
    return [
        TelemetryCollector(registry),
        PhaseTimer(registry),
        FlowMagnitudeProbe(registry=registry),
        MassConservationProbe(registry=registry),
    ]


def _sync_engine(n, observers=()):
    topo = hypercube(int(np.log2(n)))
    data = np.random.default_rng(0).uniform(size=topo.n)
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    algs = instantiate(ALGORITHM, topo, initial)
    return SynchronousEngine(
        topo,
        algs,
        UniformGossipSchedule(topo.n, 1),
        observers=list(observers),
    )


def _vector_engine(n, observers=()):
    topo = hypercube(int(np.log2(n)))
    data = np.random.default_rng(0).uniform(size=topo.n)
    return vector_engine_for(ALGORITHM)(
        topo, data, np.ones(topo.n), seed=1, observers=list(observers)
    )


def rounds_per_sec(factory) -> dict:
    """Time ``engine.run`` in growing chunks until >= MIN_SECONDS elapsed."""
    engine = factory()
    engine.run(16)  # warm-up (allocations, first-touch)
    rounds = 0
    elapsed = 0.0
    chunk = 64
    while elapsed < MIN_SECONDS:
        t0 = time.perf_counter()
        engine.run(chunk)
        elapsed += time.perf_counter() - t0
        rounds += chunk
        chunk = min(chunk * 2, 8192)
    return {
        "rounds": rounds,
        "seconds": round(elapsed, 6),
        "rounds_per_sec": round(rounds / elapsed, 2),
    }


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    output = argv[0] if argv else "BENCH_engine.json"
    entries = []
    for kind, factory in (("sync", _sync_engine), ("vector", _vector_engine)):
        for n in SIZES:
            plain = rounds_per_sec(lambda: factory(n))
            observed = rounds_per_sec(
                lambda: factory(n, observers=_telemetry_observers())
            )
            entries.append(
                {
                    "engine": kind,
                    "algorithm": ALGORITHM,
                    "n": n,
                    **plain,
                    "overhead": {
                        "telemetry_rounds_per_sec": observed["rounds_per_sec"],
                        "slowdown": round(
                            plain["rounds_per_sec"]
                            / max(observed["rounds_per_sec"], 1e-9),
                            3,
                        ),
                    },
                }
            )
            print(
                f"{kind:6s} n={n:4d}  {plain['rounds_per_sec']:>10.1f} rounds/s  "
                f"(telemetry attached: {entries[-1]['overhead']['telemetry_rounds_per_sec']:>10.1f})"
            )
    payload = {
        "benchmark": "engine_throughput",
        "algorithm": ALGORITHM,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "note": (
            "rounds/sec with no observers attached; 'overhead' shows the "
            "same engine with a full telemetry observer set. Compare "
            "ratios across commits, not absolute wall-clock."
        ),
        "entries": entries,
    }
    with open(output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
