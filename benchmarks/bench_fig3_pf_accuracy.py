"""Benchmark/regeneration of Fig. 3 (PF achievable accuracy vs scale).

Paper shape: PF's best reachable max local relative error degrades from
~1e-15 at n=8 toward ~1e-11 at n=2^15, on both 3-D torus and hypercube,
for SUM and AVERAGE aggregates.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import fig3_pf_accuracy


def test_fig3_pf_accuracy_degrades(benchmark, scale):
    result = run_once(benchmark, fig3_pf_accuracy, scale=scale)
    emit(result)

    index = {h: i for i, h in enumerate(result.headers)}
    for family in ("hypercube", "torus3d"):
        rows = [r for r in result.rows if r[index["topology"]] == family]
        for kind in ("average", "sum"):
            series = [
                (r[index["n"]], r[index["mean_max_rel_error"]])
                for r in rows
                if r[index["aggregate"]] == kind
            ]
            series.sort()
            # Degradation by at least an order of magnitude across the
            # sweep (the Fig. 3 slope).
            assert series[-1][1] > 10 * series[0][1], (family, kind, series)
            # Smallest size is near machine precision.
            assert series[0][1] < 5e-15
