"""Ablation benchmarks (DESIGN.md rows A1-A4).

A1: PF flow-sum bookkeeping variants — the paper's remark that keeping the
    sum of flows in one variable "for efficiency reasons" does not rescue
    PF's accuracy.
A2: memory soft errors — stored-flow bit flips separate the
    recompute-from-flows variants (heal) from the incremental-phi variants
    (permanent offset), the trade-off behind the two PCF formulations.
A3: message loss — push-sum is destroyed, the flow algorithms self-heal.
A4: convergence rounds scale as O(log n) on hypercubes.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import (
    ablation_message_loss,
    ablation_pf_variants,
    ablation_state_bit_flips,
    scaling_rounds,
)


def test_a1_pf_variants(benchmark, scale):
    dims = {"small": (3, 6), "medium": (3, 6, 9), "paper": (3, 6, 9)}[scale]
    result = run_once(benchmark, ablation_pf_variants, dims=dims, seeds=(0, 1))
    emit(result)
    index = {h: i for i, h in enumerate(result.headers)}
    by_key = {
        (r[0], r[index["n"]]): r[index["mean_max_rel_error"]] for r in result.rows
    }
    largest = max(n for (_, n) in by_key)
    # Both variants degrade together: within an order of magnitude of each
    # other at the largest size, and both well above machine precision.
    a = by_key[("push_flow", largest)]
    b = by_key[("push_flow_incremental", largest)]
    assert max(a, b) < 20 * min(a, b)
    assert min(a, b) > 1e-15


def test_a2_memory_soft_errors(benchmark, scale):
    result = run_once(
        benchmark, ablation_state_bit_flips, dimension=5, total_rounds=500
    )
    emit(result)
    index = {h: i for i, h in enumerate(result.headers)}
    outcome = {row[0]: row[index["recovered"]] for row in result.rows}
    assert outcome["push_flow"] is True


def test_a3_message_loss(benchmark, scale):
    rates = {"small": (0.0, 0.2), "medium": (0.0, 0.05, 0.2),
             "paper": (0.0, 0.05, 0.2, 0.4)}[scale]
    result = run_once(
        benchmark, ablation_message_loss, loss_rates=rates, total_rounds=500
    )
    emit(result)
    index = {h: i for i, h in enumerate(result.headers)}
    rows = {
        (r[0], r[index["loss_rate"]]): r[index["final_max_rel_error"]]
        for r in result.rows
    }
    worst_rate = max(rates)
    assert rows[("push_sum", worst_rate)] > 1e-6
    assert rows[("push_flow", worst_rate)] < 1e-10
    assert rows[("push_cancel_flow", worst_rate)] < 1e-10


def test_a4_round_scaling(benchmark, scale):
    dims = {"small": (3, 6), "medium": (3, 5, 7, 9), "paper": (3, 5, 7, 9, 11)}[
        scale
    ]
    result = run_once(benchmark, scaling_rounds, dims=dims, seeds=(0, 1))
    emit(result)
    index = {h: i for i, h in enumerate(result.headers)}
    per_log = [row[index["rounds_per_log2n"]] for row in result.rows]
    assert max(per_log) / min(per_log) < 2.5
