"""Benchmark/regeneration of reproduction finding F1.

The Fig. 5 PCF handshake deadlocks under message crossing (both endpoints
of an edge gossiping with each other in one synchronous round) and the
computation's mass then drains into the dead edges. The hardened variant
(era-derived roles, initiator-only cancellation, frozen-verified catch-up)
is immune. Demonstrated on a bus, where end nodes cross every round.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import finding_crossing_deadlock


def test_finding_f1_crossing_deadlock(benchmark, scale):
    rounds = {"small": 12000, "medium": 20000, "paper": 40000}[scale]
    # The bus mixes diffusively (Theta(n^2) rounds); the hardened run's
    # reachable accuracy within the budget scales accordingly.
    accuracy = {"small": 1e-4, "medium": 1e-8, "paper": 1e-9}[scale]
    result = run_once(benchmark, finding_crossing_deadlock, n=64, rounds=rounds)
    emit(result)

    index = {h: i for i, h in enumerate(result.headers)}
    by_alg = {row[0]: row for row in result.rows}
    fig5 = by_alg["push_cancel_flow"]
    hardened = by_alg["push_cancel_flow_hardened"]
    # Fig-5 PCF lost most of its weight mass; the hardened variant kept it
    # and converged.
    assert fig5[index["total_weight_mass"]] < 0.5 * 64
    assert hardened[index["total_weight_mass"]] > 0.5 * 64
    assert hardened[index["estimates_finite"]] is True
    assert hardened[index["max_rel_error"]] < accuracy
