"""Benchmark/regeneration of Fig. 8 (dmGS factorization error, PF vs PCF).

Paper shape: with per-reduction target 1e-15 and random V in R^(N x 16)
over hypercubes, dmGS(PF)'s factorization error grows with N (its
reductions cap out before reaching the target) while dmGS(PCF) stays at
reduction-level accuracy with no failed reductions.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments.figures import fig8_qr


def rows_by(result, **filters):
    index = {h: i for i, h in enumerate(result.headers)}
    return [
        {h: row[index[h]] for h in index}
        for row in result.rows
        if all(row[index[k]] == v for k, v in filters.items())
    ]


def test_fig8_qr_factorization_error(benchmark, scale):
    runs = {"small": 3, "medium": 5, "paper": 50}[scale]
    m = {"small": 8, "medium": 16, "paper": 16}[scale]
    result = run_once(benchmark, fig8_qr, scale=scale, runs=runs, m=m)
    emit(result)

    pf = rows_by(result, algorithm="push_flow")
    pcf = rows_by(result, algorithm="push_cancel_flow")
    # dmGS(PCF) stays at reduction-level accuracy across all N...
    for row in pcf:
        assert row["mean_fact_error"] < 1e-13, row
        assert row["capped_reductions"] == 0, row
    # ... while dmGS(PF) is worse at the largest N and caps out.
    assert pf[-1]["mean_fact_error"] > 2 * pcf[-1]["mean_fact_error"]
    assert pf[-1]["capped_reductions"] > 0
