"""Fail CI when the vectorized engine's relative speed regresses.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py current.json \
        --baseline BENCH_engine.json --max-regression 0.30 \
        --max-sampled-slowdown 1.5

Wall-clock rounds/sec is machine-dependent, so comparing a CI runner's
absolute numbers against the committed ``BENCH_engine.json`` (measured on a
different box) would flag hardware, not code. Instead we compare the
**vector/sync throughput ratio** per problem size: both engines run the same
rounds on the same machine in the same process, so their ratio cancels the
hardware term and isolates "did the vectorized engine get slower relative
to the object engine". A ratio drop beyond ``--max-regression`` (default
30%) exits 1.

The second gate is the sampled-telemetry overhead budget: each vectorized
entry's ``overhead_sampled.slowdown`` (plain vs default-sampled telemetry
throughput, also a same-machine ratio) must stay at or below
``--max-sampled-slowdown`` (default 1.5). This is the promise that keeps
default-on observability affordable; the full-detail ``overhead`` numbers
are informational only.

The third gate is the batched-campaign throughput ratio: the ``batched``
bench entry's ``speedup_vs_sequential_sync`` (one whole-array program for
a 16-run seed axis vs the same runs sequentially on the object engine,
again a same-machine ratio) must stay at or above
``--min-batched-speedup`` (default 5).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional


def load_ratios(path: str) -> Dict[int, float]:
    """Map n -> (vector rounds/sec) / (sync rounds/sec) from a bench JSON."""
    with open(path) as fh:
        payload = json.load(fh)
    by_engine: Dict[str, Dict[int, float]] = {}
    for entry in payload.get("entries", []):
        engine = entry.get("engine")
        n = entry.get("n")
        rps = entry.get("rounds_per_sec")
        if engine not in ("sync", "vector") or n is None or not rps:
            continue
        by_engine.setdefault(engine, {})[int(n)] = float(rps)
    sync = by_engine.get("sync", {})
    vector = by_engine.get("vector", {})
    return {
        n: vector[n] / sync[n] for n in sorted(sync) if n in vector and sync[n] > 0
    }


def load_sampled_slowdowns(path: str) -> Dict[int, float]:
    """Map n -> vectorized ``overhead_sampled.slowdown`` from a bench JSON."""
    with open(path) as fh:
        payload = json.load(fh)
    slowdowns: Dict[int, float] = {}
    for entry in payload.get("entries", []):
        if entry.get("engine") != "vector":
            continue
        sampled = entry.get("overhead_sampled") or {}
        n = entry.get("n")
        slowdown = sampled.get("slowdown")
        if n is not None and slowdown is not None:
            slowdowns[int(n)] = float(slowdown)
    return slowdowns


def load_batched_speedups(path: str) -> Dict[int, float]:
    """Map n -> ``speedup_vs_sequential_sync`` of batched bench entries.

    Only the numpy reference backend is gated (entries predating the
    backend axis carry no ``backend`` key and count as numpy). The numba
    entries and the multiprocess ``batched-groups`` entry are
    informational — their ratios track numba's compiler and the runner's
    core count, not this repo's kernels.
    """
    with open(path) as fh:
        payload = json.load(fh)
    speedups: Dict[int, float] = {}
    for entry in payload.get("entries", []):
        if entry.get("engine") != "batched":
            continue
        if entry.get("backend") not in (None, "numpy"):
            continue
        n = entry.get("n")
        speedup = entry.get("speedup_vs_sequential_sync")
        if n is not None and speedup is not None:
            speedups[int(n)] = float(speedup)
    return speedups


def load_numba_speedups(path: str) -> Dict[int, float]:
    """Map n -> ``numba_speedup_vs_numpy`` of batched numba entries."""
    with open(path) as fh:
        payload = json.load(fh)
    speedups: Dict[int, float] = {}
    for entry in payload.get("entries", []):
        if entry.get("engine") != "batched":
            continue
        if entry.get("backend") != "numba":
            continue
        n = entry.get("n")
        speedup = entry.get("numba_speedup_vs_numpy")
        if n is not None and speedup is not None:
            speedups[int(n)] = float(speedup)
    return speedups


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Compare vector/sync throughput ratios against a baseline."
    )
    parser.add_argument("current", help="bench JSON from this checkout")
    parser.add_argument(
        "--baseline",
        default="BENCH_engine.json",
        help="committed baseline JSON (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        metavar="FRAC",
        help="allowed fractional ratio drop before failing (default: 0.30)",
    )
    parser.add_argument(
        "--max-sampled-slowdown",
        type=float,
        default=1.5,
        metavar="X",
        help=(
            "budget for the vectorized engine's default-sampled telemetry "
            "slowdown; 0 disables the gate (default: 1.5)"
        ),
    )
    parser.add_argument(
        "--min-batched-speedup",
        type=float,
        default=5.0,
        metavar="X",
        help=(
            "required speedup of the batched seed-axis program over "
            "sequential object-engine execution; gates the numpy "
            "reference backend only; 0 disables the gate (default: 5)"
        ),
    )
    parser.add_argument(
        "--min-numba-speedup",
        type=float,
        default=0.0,
        metavar="X",
        help=(
            "required numba-vs-numpy throughput ratio of the batched "
            "numba entries. Default 0: informational only (printed, "
            "never failing) — promote to a hard gate by passing a floor "
            "once the jitted numbers are stable in CI"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        current = load_ratios(args.current)
        baseline = load_ratios(args.baseline)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    common = sorted(set(current) & set(baseline))
    if not common:
        print(
            "error: no common problem sizes between "
            f"{args.current} ({sorted(current)}) and "
            f"{args.baseline} ({sorted(baseline)})",
            file=sys.stderr,
        )
        return 1

    failures = []
    print(f"{'n':>6}  {'baseline':>10}  {'current':>10}  {'change':>8}  verdict")
    for n in common:
        base, cur = baseline[n], current[n]
        change = cur / base - 1.0
        regressed = change < -args.max_regression
        verdict = "FAIL" if regressed else "ok"
        print(f"{n:>6}  {base:>10.2f}  {cur:>10.2f}  {change:>+7.1%}  {verdict}")
        if regressed:
            failures.append(n)

    if failures:
        print(
            f"error: vector/sync ratio regressed more than "
            f"{args.max_regression:.0%} at n={failures} — the vectorized "
            "engine got slower relative to the object engine.",
            file=sys.stderr,
        )
        return 1
    print(f"ratios within {args.max_regression:.0%} of baseline for n={common}")

    if args.max_sampled_slowdown > 0:
        slowdowns = load_sampled_slowdowns(args.current)
        if not slowdowns:
            print(
                "error: current bench JSON carries no vectorized "
                "overhead_sampled entries to gate on",
                file=sys.stderr,
            )
            return 1
        over = {
            n: s for n, s in slowdowns.items() if s > args.max_sampled_slowdown
        }
        for n in sorted(slowdowns):
            verdict = "FAIL" if n in over else "ok"
            print(
                f"sampled-telemetry slowdown n={n}: {slowdowns[n]:.2f}x "
                f"(budget {args.max_sampled_slowdown:.2f}x) {verdict}"
            )
        if over:
            print(
                "error: default-sampled telemetry exceeds the "
                f"{args.max_sampled_slowdown:.2f}x budget at "
                f"n={sorted(over)} — the sampling fast path regressed.",
                file=sys.stderr,
            )
            return 1

    if args.min_batched_speedup > 0:
        speedups = load_batched_speedups(args.current)
        if not speedups:
            print(
                "error: current bench JSON carries no batched entries "
                "to gate on",
                file=sys.stderr,
            )
            return 1
        under = {
            n: s for n, s in speedups.items() if s < args.min_batched_speedup
        }
        for n in sorted(speedups):
            verdict = "FAIL" if n in under else "ok"
            print(
                f"batched axis speedup n={n}: {speedups[n]:.1f}x "
                f"(floor {args.min_batched_speedup:.1f}x) {verdict}"
            )
        if under:
            print(
                "error: batched seed-axis execution fell below the "
                f"{args.min_batched_speedup:.1f}x floor over sequential "
                f"object-engine cells at n={sorted(under)}.",
                file=sys.stderr,
            )
            return 1

    # Numba-vs-numpy ratio: informational until a floor is passed.
    numba_speedups = load_numba_speedups(args.current)
    for n in sorted(numba_speedups):
        gated = args.min_numba_speedup > 0
        failing = gated and numba_speedups[n] < args.min_numba_speedup
        verdict = "FAIL" if failing else ("ok" if gated else "info")
        print(
            f"numba/numpy batched ratio n={n}: {numba_speedups[n]:.2f}x "
            + (
                f"(floor {args.min_numba_speedup:.2f}x) {verdict}"
                if gated
                else f"({verdict}, no floor set)"
            )
        )
    if args.min_numba_speedup > 0:
        if not numba_speedups:
            print(
                "error: --min-numba-speedup set but the current bench "
                "JSON carries no batched numba entries",
                file=sys.stderr,
            )
            return 1
        under = {
            n: s
            for n, s in numba_speedups.items()
            if s < args.min_numba_speedup
        }
        if under:
            print(
                "error: numba batched kernels fell below the "
                f"{args.min_numba_speedup:.2f}x floor over the numpy "
                f"reference at n={sorted(under)}.",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
