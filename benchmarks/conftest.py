"""Shared benchmark configuration.

Every figure/table of the paper has one benchmark module that regenerates
it and prints the series (captured in the pytest-benchmark output when run
with ``-s``; always printed on failure). Set ``REPRO_BENCH_SCALE`` to
``small`` (default), ``medium`` or ``paper`` to choose the parameter range
— ``paper`` runs the full published sizes (up to 2^15 nodes) and takes
correspondingly longer.
"""

import os

import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def scale() -> str:
    if SCALE not in ("small", "medium", "paper"):
        raise RuntimeError(
            f"REPRO_BENCH_SCALE must be small|medium|paper, got {SCALE!r}"
        )
    return SCALE


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(result) -> None:
    """Print a FigureResult table into the captured benchmark output."""
    print()
    print(result.render())
