"""Benchmarks for the hardened PCF extension (DESIGN.md S12).

Compares Fig-5 PCF and hardened PCF on the paper's accuracy sweep (the
hardened handshake must not cost accuracy or rounds) and measures its
per-round overhead (one extra mass pair per message).
"""

import numpy as np
import pytest

from benchmarks.conftest import emit, run_once
from repro import run_reduction
from repro.experiments.figures import accuracy_sweep
from repro.algorithms.aggregates import AggregateKind
from repro.topology import hypercube
from repro.vectorized.parity import vector_engine_for


def test_hardened_accuracy_sweep(benchmark, scale):
    result = run_once(
        benchmark,
        accuracy_sweep,
        "push_cancel_flow_hardened",
        scale=scale,
        kinds=(AggregateKind.AVERAGE,),
        seeds=(0,),
    )
    emit(result)
    index = {h: i for i, h in enumerate(result.headers)}
    for row in result.rows:
        # The hardened handshake keeps PCF's accuracy band.
        assert row[index["mean_max_rel_error"]] < 5e-14, row


def test_hardened_vs_pcf_rounds(benchmark, scale):
    """Round-count overhead of the hardened handshake (failure-free)."""
    topo = hypercube(6)
    data = np.random.default_rng(0).uniform(size=topo.n)

    def both():
        rounds = {}
        for alg in ("push_cancel_flow", "push_cancel_flow_hardened"):
            result = run_reduction(
                topo, data, algorithm=alg, epsilon=1e-14, backend="vector",
                schedule_seed=1,
            )
            assert result.converged, alg
            rounds[alg] = result.rounds
        return rounds

    rounds = run_once(benchmark, both)
    print(f"\nrounds to 1e-14 on hypercube(6): {rounds}")
    # Within 2x of each other.
    values = list(rounds.values())
    assert max(values) < 2 * min(values)


@pytest.mark.parametrize(
    "algorithm", ["push_cancel_flow", "push_cancel_flow_hardened"]
)
def test_vector_round_cost(benchmark, algorithm):
    topo = hypercube(10)
    data = np.random.default_rng(0).uniform(size=topo.n)
    engine = vector_engine_for(algorithm)(topo, data, np.ones(topo.n), seed=1)
    benchmark(engine.step)
