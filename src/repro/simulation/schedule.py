"""Communication schedules: who gossips with whom, each round.

The paper's experiments use randomized uniform neighbor selection under a
"regular, synchronous communication schedule", and crucially compare PF and
PCF under *identical* schedules ("we initially used exactly the same random
seed, i.e., the simulated random communication schedules are the same",
Sec. III-C). Schedules are therefore a component of their own, seeded
independently of everything else, with one RNG stream per node — two runs
with the same schedule seed and the same evolution of live-neighbor sets
make bit-identical choices, regardless of which algorithm runs on top.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


class Schedule(abc.ABC):
    """Chooses a gossip target for a node from its live neighbors."""

    @abc.abstractmethod
    def choose(self, node: int, live_neighbors: Sequence[int], round_index: int) -> Optional[int]:
        """Target for ``node`` this round, or ``None`` to stay silent.

        ``live_neighbors`` is the node's own current view (links it has not
        yet excluded); engines guarantee it is the same sequence ordering
        across algorithm implementations so seeded choices coincide.
        """

    def reset(self) -> None:
        """Rewind the schedule to its initial state (fresh RNG streams)."""


class UniformGossipSchedule(Schedule):
    """Uniformly random neighbor per node per round (the paper's schedule).

    One independent PCG64 stream per node (spawned from a single seed), so a
    node's choices depend only on (seed, node, how many times it chose, live
    set) — not on the behaviour of other nodes. This is what makes the PF vs
    PCF same-schedule comparison exact even under fault injection.
    """

    def __init__(self, n: int, seed: int) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        self._n = n
        self._seed = seed
        self._rngs = self._spawn()

    def _spawn(self) -> list:
        seq = np.random.SeedSequence(self._seed)
        return [np.random.Generator(np.random.PCG64(s)) for s in seq.spawn(self._n)]

    def reset(self) -> None:
        self._rngs = self._spawn()

    def choose(self, node: int, live_neighbors: Sequence[int], round_index: int) -> Optional[int]:
        if not 0 <= node < self._n:
            raise ConfigurationError(f"node {node} out of range for n={self._n}")
        if not live_neighbors:
            return None
        # Always draw, even for a single neighbor, so the stream position is
        # a pure function of rounds participated in.
        index = int(self._rngs[node].integers(0, len(live_neighbors)))
        return live_neighbors[index]


class RoundRobinSchedule(Schedule):
    """Deterministic cyclic neighbor selection.

    Useful for reproducible unit tests and for the bus-network equilibrium
    study (Fig. 2 assumes "a regular, synchronous communication schedule").
    Each node cycles through its live neighbors in order, maintaining its
    own cursor.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        self._n = n
        self._cursors = [0] * n

    def reset(self) -> None:
        self._cursors = [0] * self._n

    def choose(self, node: int, live_neighbors: Sequence[int], round_index: int) -> Optional[int]:
        if not live_neighbors:
            return None
        cursor = self._cursors[node] % len(live_neighbors)
        self._cursors[node] = cursor + 1
        return live_neighbors[cursor]


class FixedSchedule(Schedule):
    """A fully scripted schedule: ``targets[round][node]`` (or None).

    White-box tests use this to drive exact interleavings (e.g. forcing the
    PCF cancel/swap race).
    """

    def __init__(self, targets: Sequence[Sequence[Optional[int]]]) -> None:
        self._targets = [list(row) for row in targets]

    def choose(self, node: int, live_neighbors: Sequence[int], round_index: int) -> Optional[int]:
        if round_index >= len(self._targets):
            return None
        target = self._targets[round_index][node]
        if target is None or target not in live_neighbors:
            return None
        return target

    def reset(self) -> None:
        pass
