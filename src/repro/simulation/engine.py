"""The synchronous round-based gossip engine.

Execution model (the paper's "regular, synchronous communication schedule"):
in every round each live node, in node-id order,

1. asks the :class:`~repro.simulation.schedule.Schedule` for a gossip target
   among its live neighbors,
2. performs its local send bookkeeping (``make_message`` — the flow
   algorithms' "virtual send") and hands the message to the transport.

After all sends, the transport applies permanent-failure filtering (dead
links/nodes swallow messages) and per-message fault injectors (loss,
bit flips), then all surviving messages are delivered (``on_receive``),
again in deterministic order. Finally timed permanent failures scheduled for
*handling* this round trigger ``on_link_failed`` on the survivors, and
observers run.

The engine is deliberately deterministic: given (topology, algorithm,
initial data, schedule seed, fault plan/filters with their seeds) two runs
are bit-identical, and two runs differing *only* in the algorithm (e.g. PF
vs PCF) see the exact same communication schedule and fault timeline — the
methodology behind the paper's Fig. 4 vs Fig. 7 comparison.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.algorithms.base import GossipAlgorithm
from repro.dynamics.schedule import TopologyDelta, TopologySchedule
from repro.exceptions import ConfigurationError, SimulationError
from repro.faults.base import MessageFault, NoFault
from repro.faults.events import FaultPlan
from repro.simulation.messages import Message
from repro.simulation.observers import Observer, ObserverList
from repro.simulation.schedule import Schedule
from repro.topology.base import Topology

StopCondition = Callable[["SynchronousEngine", int], bool]


class SynchronousEngine:
    """Round-synchronous simulator for one reduction over one topology."""

    def __init__(
        self,
        topology: Topology,
        algorithms: Sequence[GossipAlgorithm],
        schedule: Schedule,
        *,
        message_fault: Optional[MessageFault] = None,
        fault_plan: Optional[FaultPlan] = None,
        topology_schedule: Optional[TopologySchedule] = None,
        observers: Sequence[Observer] = (),
    ) -> None:
        if len(algorithms) != topology.n:
            raise ConfigurationError(
                f"expected {topology.n} algorithm instances, got {len(algorithms)}"
            )
        for i, alg in enumerate(algorithms):
            if alg.node_id != i:
                raise ConfigurationError(
                    f"algorithm at position {i} has node_id {alg.node_id}"
                )
        self._topology = topology
        self._algorithms = list(algorithms)
        self._schedule = schedule
        self._message_fault = message_fault or NoFault()
        self._fault_plan = fault_plan or FaultPlan()
        from repro.telemetry.session import session_observers

        self._observer = ObserverList(
            list(observers) + session_observers(self, engine_kind="sync")
        )

        self._round = 0
        self._messages_sent = 0
        self._messages_delivered = 0
        self._dead_edges: Set[Tuple[int, int]] = set()
        self._dead_nodes: Set[int] = set()
        self._handled_edges: Set[Tuple[int, int]] = set()
        # Dynamic-topology overlay: temporarily absent nodes and downed
        # edges, disjoint from the permanent-failure sets above (permanent
        # failures win on conflicts and are never revived).
        self._topology_schedule = topology_schedule
        self._departed: Set[int] = set()
        self._down_edges: Set[Tuple[int, int]] = set()
        if topology_schedule is not None:
            topology_schedule.validate_against(topology)
        self._validate_fault_plan()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def algorithms(self) -> List[GossipAlgorithm]:
        return self._algorithms

    @property
    def round(self) -> int:
        """Number of completed rounds."""
        return self._round

    @property
    def messages_sent(self) -> int:
        return self._messages_sent

    @property
    def messages_delivered(self) -> int:
        return self._messages_delivered

    @property
    def dead_nodes(self) -> frozenset:
        return frozenset(self._dead_nodes)

    @property
    def departed_nodes(self) -> frozenset:
        """Nodes currently absent due to the dynamic topology schedule."""
        return frozenset(self._departed)

    @property
    def down_edges(self) -> frozenset:
        """Edges currently down due to the dynamic topology schedule."""
        return frozenset(self._down_edges)

    def live_nodes(self) -> List[int]:
        return [
            i
            for i in self._topology.nodes()
            if i not in self._dead_nodes and i not in self._departed
        ]

    def estimates(self) -> List[object]:
        """Current estimate of every *live* node (dead nodes excluded)."""
        return [
            self._algorithms[i].estimate() for i in self.live_nodes()
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        max_rounds: int,
        *,
        stop_when: Optional[StopCondition] = None,
    ) -> int:
        """Execute up to ``max_rounds`` rounds; returns rounds executed.

        ``stop_when(engine, round_index)`` is evaluated after each round
        (the harness uses it for the paper's "prescribed target accuracy"
        oracle termination).
        """
        if max_rounds < 0:
            raise ConfigurationError(f"max_rounds must be >= 0, got {max_rounds}")
        if self._round == 0:
            self._observer.on_run_start(self)
        executed = 0
        while executed < max_rounds:
            self.step()
            executed += 1
            if stop_when is not None and stop_when(self, self._round - 1):
                break
        self._observer.on_run_end(self, executed)
        return executed

    def step(self) -> None:
        """Execute exactly one synchronous round."""
        round_index = self._round
        # Observed runs time every phase; unobserved runs skip all of it so
        # disabled telemetry stays off the hot path. Sampled telemetry sets
        # additionally skip phase timing and per-message hooks on unsampled
        # rounds (`detailed` False); message totals of such rounds are
        # reported through the batched on_round_messages hook instead, and
        # drops/faults/handlings always fire individually.
        observed = bool(self._observer)
        detailed = observed and self._observer.wants_detail(round_index)

        # Dynamic topology deltas apply at the very start of the round,
        # before any fault activation or send — the transition instant has
        # no in-flight messages (the synchronous model delivers within the
        # round), so flows and phi change only through the handled
        # exclusion/restoration paths.
        if self._topology_schedule is not None:
            self._apply_topology_deltas(round_index)

        # Phase 0: components whose physical failure starts this round.
        for lf in self._fault_plan.link_failures:
            if lf.round == round_index:
                self._dead_edges.add(lf.edge)
                if observed:
                    self._observer.on_fault_injected(
                        self, round_index, "link_failure", f"link({lf.u},{lf.v})"
                    )
        for nf in self._fault_plan.node_failures:
            if nf.round == round_index:
                self._dead_nodes.add(nf.node)
                if observed:
                    self._observer.on_fault_injected(
                        self, round_index, "node_failure", f"node({nf.node})"
                    )

        # Phase 1: sends (local bookkeeping happens here).
        t0 = time.perf_counter() if detailed else 0.0
        outbox: List[Message] = []
        for node in self._topology.nodes():
            if node in self._dead_nodes or node in self._departed:
                continue
            alg = self._algorithms[node]
            live = alg.neighbors
            target = self._schedule.choose(node, live, round_index)
            if target is None:
                continue
            if target not in live:
                raise SimulationError(
                    f"schedule chose non-neighbor {target} for node {node}"
                )
            payload = alg.make_message(target)
            message = Message(
                sender=node,
                receiver=target,
                round=round_index,
                payload=payload,
            )
            outbox.append(message)
            self._messages_sent += 1
            if detailed:
                self._observer.on_message_sent(self, message)
        if detailed:
            t1 = time.perf_counter()
            self._observer.on_phase_end(self, "send", t1 - t0)
            t0 = t1

        # Phase 2: transport — permanent failures swallow, injectors filter.
        delivered: List[Message] = []
        for message in outbox:
            edge = message.edge()
            if edge in self._dead_edges or edge in self._down_edges:
                if observed:
                    self._observer.on_message_dropped(self, message, "dead_edge")
                continue
            if (
                message.receiver in self._dead_nodes
                or message.receiver in self._departed
            ):
                if observed:
                    self._observer.on_message_dropped(self, message, "dead_node")
                continue
            filtered = self._message_fault.apply(message)
            if filtered is not None:
                if observed and filtered is not message:
                    self._observer.on_fault_injected(
                        self,
                        round_index,
                        "message_corruption",
                        f"edge({message.sender},{message.receiver})",
                    )
                delivered.append(filtered)
            elif observed:
                self._observer.on_message_dropped(self, message, "injector")
        if detailed:
            t1 = time.perf_counter()
            self._observer.on_phase_end(self, "transport", t1 - t0)
            t0 = t1

        # Phase 3: deliveries, in deterministic (send) order.
        for message in delivered:
            self._algorithms[message.receiver].on_receive(
                message.sender, message.payload
            )
            self._messages_delivered += 1
            if detailed:
                self._observer.on_message_delivered(self, message)
        if detailed:
            t1 = time.perf_counter()
            self._observer.on_phase_end(self, "deliver", t1 - t0)
            t0 = t1

        # Phase 4: failure handling scheduled for this round.
        for lf in self._fault_plan.link_handlings_at(round_index):
            self._handle_link(lf.u, lf.v, round_index)
        for nf in self._fault_plan.node_handlings_at(round_index):
            for neighbor in self._topology.neighbors(nf.node):
                self._handle_link(nf.node, neighbor, round_index)
        if detailed:
            self._observer.on_phase_end(
                self, "handle", time.perf_counter() - t0
            )

        self._round += 1
        if observed and not detailed:
            # Unsampled round: report the send total in one batched call.
            # delivered == sent here because every drop was already
            # reported individually above (on_round_messages' delta counts
            # only drops that had no per-message callback).
            self._observer.on_round_messages(
                self, round_index, len(outbox), len(outbox)
            )
        self._observer.on_round_end(self, round_index)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _handle_link(self, u: int, v: int, round_index: int) -> None:
        edge = (u, v) if u < v else (v, u)
        if edge in self._handled_edges:
            return
        self._handled_edges.add(edge)
        self._dead_edges.add(edge)
        for endpoint, other in ((u, v), (v, u)):
            if endpoint in self._dead_nodes or endpoint in self._departed:
                continue
            alg = self._algorithms[endpoint]
            if other in alg.neighbors:
                alg.on_link_failed(other)
        self._observer.on_link_handled(self, round_index, edge[0], edge[1])

    # ------------------------------------------------------------------
    # Dynamic topology (repro.dynamics)
    # ------------------------------------------------------------------
    def _apply_topology_deltas(self, round_index: int) -> None:
        for delta in self._topology_schedule.deltas_at(round_index):
            if delta.kind == "edge_down":
                self._dyn_edge_down(delta, round_index)
            elif delta.kind == "edge_up":
                self._dyn_edge_up(delta, round_index)
            elif delta.kind == "node_leave":
                self._dyn_node_leave(delta, round_index)
            else:
                self._dyn_node_join(delta, round_index)

    def _emit_topology_event(
        self, round_index: int, delta: TopologyDelta
    ) -> None:
        detail: dict = {"label": delta.label}
        if delta.edge is not None:
            detail["edge"] = list(delta.edge)
        if delta.node is not None:
            detail["node"] = delta.node
        self._observer.on_topology_event(self, round_index, delta.kind, detail)

    def _dyn_edge_down(self, delta: TopologyDelta, round_index: int) -> None:
        edge = delta.edge
        if edge in self._down_edges or edge in self._dead_edges:
            return
        self._down_edges.add(edge)
        u, v = edge
        for endpoint, other in ((u, v), (v, u)):
            if endpoint in self._dead_nodes or endpoint in self._departed:
                continue
            alg = self._algorithms[endpoint]
            if other in alg.neighbors:
                alg.on_link_failed(other)
        if self._observer:
            # Downing an edge runs the exact link-failure recovery path, so
            # the same telemetry fires (restart detectors, fault timelines).
            self._observer.on_link_handled(self, round_index, u, v)
            self._emit_topology_event(round_index, delta)

    def _dyn_edge_up(self, delta: TopologyDelta, round_index: int) -> None:
        edge = delta.edge
        if edge not in self._down_edges:
            return
        self._down_edges.discard(edge)
        u, v = edge
        if not (
            u in self._dead_nodes
            or v in self._dead_nodes
            or u in self._departed
            or v in self._departed
        ):
            for endpoint, other in ((u, v), (v, u)):
                alg = self._algorithms[endpoint]
                if other not in alg.neighbors:
                    alg.on_link_restored(other)
        if self._observer:
            self._emit_topology_event(round_index, delta)

    def _dyn_node_leave(self, delta: TopologyDelta, round_index: int) -> None:
        node = delta.node
        if node in self._departed or node in self._dead_nodes:
            return
        self._departed.add(node)
        for neighbor in self._topology.neighbors(node):
            edge = (node, neighbor) if node < neighbor else (neighbor, node)
            if edge in self._dead_edges or edge in self._down_edges:
                continue
            if neighbor in self._dead_nodes or neighbor in self._departed:
                continue
            # The survivor runs the same recovery as a handled link failure;
            # the departing node's state is frozen as-is (it is reset
            # wholesale if it ever rejoins).
            alg = self._algorithms[neighbor]
            if node in alg.neighbors:
                alg.on_link_failed(node)
                if self._observer:
                    self._observer.on_link_handled(
                        self, round_index, edge[0], edge[1]
                    )
        if self._observer:
            self._emit_topology_event(round_index, delta)

    def _dyn_node_join(self, delta: TopologyDelta, round_index: int) -> None:
        node = delta.node
        if node not in self._departed or node in self._dead_nodes:
            return
        self._departed.discard(node)
        live_neighbors = []
        for neighbor in self._topology.neighbors(node):
            edge = (node, neighbor) if node < neighbor else (neighbor, node)
            if edge in self._dead_edges or edge in self._down_edges:
                continue
            if neighbor in self._dead_nodes or neighbor in self._departed:
                continue
            live_neighbors.append(neighbor)
        self._algorithms[node].reset_for_join(live_neighbors)
        for neighbor in live_neighbors:
            alg = self._algorithms[neighbor]
            if node not in alg.neighbors:
                alg.on_link_restored(node)
        if self._observer:
            self._emit_topology_event(round_index, delta)

    def _validate_fault_plan(self) -> None:
        for lf in self._fault_plan.link_failures:
            if not self._topology.has_edge(lf.u, lf.v):
                raise ConfigurationError(
                    f"fault plan kills edge ({lf.u}, {lf.v}) which does not "
                    f"exist in topology {self._topology.name!r}"
                )
        for nf in self._fault_plan.node_failures:
            if not 0 <= nf.node < self._topology.n:
                raise ConfigurationError(
                    f"fault plan kills node {nf.node} outside topology "
                    f"(n={self._topology.n})"
                )
