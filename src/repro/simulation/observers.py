"""Observer hooks for instrumenting simulation runs.

Engines call observers at well-defined points; the metrics recorders in
:mod:`repro.metrics` are the main clients. Observers must treat the engine
as read-only — they exist to *watch* the distributed computation with a
global (omniscient) view the real nodes never have.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.engine import SynchronousEngine


class Observer:
    """Base observer; all hooks default to no-ops."""

    def on_run_start(self, engine: "SynchronousEngine") -> None:
        """Called once before round 0."""

    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        """Called after every completed round (all deliveries processed)."""

    def on_link_handled(
        self, engine: "SynchronousEngine", round_index: int, u: int, v: int
    ) -> None:
        """Called when a permanent link failure was handled this round."""

    def on_run_end(self, engine: "SynchronousEngine", rounds_executed: int) -> None:
        """Called once after the final round."""


class ObserverList(Observer):
    """Fan-out helper so engines hold a single observer reference."""

    def __init__(self, observers: List[Observer]) -> None:
        self._observers = list(observers)

    def on_run_start(self, engine: "SynchronousEngine") -> None:
        for obs in self._observers:
            obs.on_run_start(engine)

    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        for obs in self._observers:
            obs.on_round_end(engine, round_index)

    def on_link_handled(
        self, engine: "SynchronousEngine", round_index: int, u: int, v: int
    ) -> None:
        for obs in self._observers:
            obs.on_link_handled(engine, round_index, u, v)

    def on_run_end(self, engine: "SynchronousEngine", rounds_executed: int) -> None:
        for obs in self._observers:
            obs.on_run_end(engine, rounds_executed)


class MessageCounter(Observer):
    """Counts rounds (engines count messages themselves; this logs per-round)."""

    def __init__(self) -> None:
        self.rounds = 0

    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        self.rounds += 1
