"""Observer hooks for instrumenting simulation runs.

Engines call observers at well-defined points; the metrics recorders in
:mod:`repro.metrics` and the telemetry layer in :mod:`repro.telemetry` are
the main clients. Observers must treat the engine as read-only — they exist
to *watch* the distributed computation with a global (omniscient) view the
real nodes never have.

All three engines (:class:`~repro.simulation.engine.SynchronousEngine`,
:class:`~repro.simulation.async_engine.AsynchronousEngine` and the
:mod:`repro.vectorized` engines) drive the same hook set, so one observer
implementation instruments any backend. The per-message hooks
(:meth:`Observer.on_message_sent` / :meth:`Observer.on_message_dropped`)
fire in the object engines only; the vectorized engines report the same
information through the batched :meth:`Observer.on_round_messages` hook —
a metrics recorder that implements both sees identical totals either way.

Drop reasons (``on_message_dropped``):

- ``"dead_edge"`` — the message crossed a permanently failed link;
- ``"dead_node"`` — the receiver is fail-stopped;
- ``"injector"`` — a :class:`~repro.faults.base.MessageFault` dropped it;
- ``"stale"`` — (async engine only) the receiver already excluded the
  sender's link while the message was in flight.

Sampling (``wants_detail``): the *detail* hooks — ``on_message_sent``,
``on_message_delivered`` and ``on_phase_end`` — are dispatched only on
rounds where at least one attached observer answers
:meth:`Observer.wants_detail` True, so a sampled telemetry set (see
:mod:`repro.telemetry.sampling`) makes engines skip per-message dispatch
and phase timing entirely on unsampled rounds. Everything semantically
load-bearing — run/round boundaries, faults, drops, link handlings — is
dispatched on every round regardless. Message *totals* of unsampled
rounds arrive through the batched ``on_round_messages`` hook, so counters
stay exact under sampling.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.engine import SynchronousEngine
    from repro.simulation.messages import Message

#: The transport-drop reasons engines may report.
DROP_REASONS = ("dead_edge", "dead_node", "injector", "stale")

#: The fault kinds engines may report via ``on_fault_injected``.
FAULT_KINDS = ("link_failure", "node_failure", "message_corruption")


class Observer:
    """Base observer; all hooks default to no-ops."""

    def wants_detail(self, round_index: int) -> bool:
        """Whether this observer needs the detail hooks on this round.

        Detail hooks are ``on_message_sent`` / ``on_message_delivered`` /
        ``on_phase_end``. The default True preserves the historical
        contract for explicitly attached observers; sampled telemetry
        observers answer from a shared
        :class:`~repro.telemetry.sampling.RoundSampler`, and observers
        that consume only round-level hooks return False so they never
        force the engine onto the slow path.
        """
        return True

    def on_run_start(self, engine: "SynchronousEngine") -> None:
        """Called once before round 0."""

    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        """Called after every completed round (all deliveries processed)."""

    def on_link_handled(
        self, engine: "SynchronousEngine", round_index: int, u: int, v: int
    ) -> None:
        """Called when a permanent link failure was handled this round."""

    def on_run_end(self, engine: "SynchronousEngine", rounds_executed: int) -> None:
        """Called once after the final round."""

    def on_message_sent(self, engine: "SynchronousEngine", message: "Message") -> None:
        """Called after a node's send bookkeeping, before transport."""

    def on_message_dropped(
        self, engine: "SynchronousEngine", message: "Message", reason: str
    ) -> None:
        """Called when the transport swallowed ``message`` (see DROP_REASONS)."""

    def on_message_delivered(
        self, engine: "SynchronousEngine", message: "Message"
    ) -> None:
        """Called after ``message`` reached its receiver's ``on_receive``.

        Fires in the object engines only (the vectorized engines report
        batched totals), and only on detailed rounds — it exists for the
        causal tracer, which links each delivery back to the send that
        produced it.
        """

    def on_fault_injected(
        self, engine: "SynchronousEngine", round_index: int, kind: str, detail: str
    ) -> None:
        """Called when a fault materializes (see FAULT_KINDS).

        ``link_failure``/``node_failure`` fire when the physical failure
        *starts* (handling is reported separately via ``on_link_handled``);
        ``message_corruption`` fires when an injector mutated an in-flight
        message without dropping it.
        """

    def on_topology_event(
        self,
        engine: "SynchronousEngine",
        round_index: int,
        kind: str,
        detail: dict,
    ) -> None:
        """Called when a dynamic topology delta was applied this round.

        ``kind`` is one of :data:`repro.dynamics.schedule.DELTA_KINDS`
        (``edge_down``/``edge_up``/``node_leave``/``node_join``);
        ``detail`` is a JSON-safe dict with ``edge`` or ``node`` plus the
        delta's ``label`` (e.g. ``partition``/``heal``/``churn``). Fires on
        every round regardless of sampling — topology changes are
        semantically load-bearing, like faults and link handlings.
        """

    def on_phase_end(
        self, engine: "SynchronousEngine", phase: str, seconds: float
    ) -> None:
        """Called after each engine phase with its wall-clock duration.

        Synchronous engine phases: ``send``, ``transport``, ``deliver``,
        ``handle`` (once per round each). The async engine reports ``send``
        and ``deliver`` per event; the vectorized engines report ``send``
        (schedule + transport draw) and ``deliver`` (array update) per
        round. Engines skip the timing entirely when no observer is
        attached, so disabled telemetry costs nothing.
        """

    def on_round_messages(
        self,
        engine: "SynchronousEngine",
        round_index: int,
        sent: int,
        delivered: int,
    ) -> None:
        """Batched message accounting for rounds without per-message hooks.

        Equivalent to ``sent`` ``on_message_sent`` calls of which
        ``sent - delivered`` were dropped *without an individual*
        ``on_message_dropped`` callback. The vectorized engines use it for
        every round (per-message callbacks are unaffordable at 2^15 nodes;
        their only drop source is the i.i.d. loss injector), and the
        object engines use it on unsampled rounds — there drops are still
        reported individually, so ``delivered == sent``.
        """


class ObserverList(Observer):
    """Fan-out helper so engines hold a single observer reference.

    Observers are invoked in registration order for every hook.
    ``bool(observer_list)`` is False when empty — engines use that to skip
    hook dispatch and phase timing entirely on unobserved runs.

    The four original hooks (run start/end, round end, link handled) are
    required; the newer hooks are dispatched with a ``getattr`` fallback so
    duck-typed observers predating them (e.g.
    :class:`repro.faults.state_flip.StateBitFlipInjector`) keep working.
    """

    def __init__(self, observers: List[Observer]) -> None:
        self._observers = list(observers)

    def __bool__(self) -> bool:
        return bool(self._observers)

    def __len__(self) -> int:
        return len(self._observers)

    def wants_detail(self, round_index: int) -> bool:
        """True when any member needs detail hooks this round.

        Duck-typed observers without the method count as wanting detail
        (the safe, historical behavior).
        """
        for obs in self._observers:
            fn = getattr(obs, "wants_detail", None)
            if fn is None or fn(round_index):
                return True
        return False

    def on_run_start(self, engine: "SynchronousEngine") -> None:
        for obs in self._observers:
            obs.on_run_start(engine)

    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        for obs in self._observers:
            obs.on_round_end(engine, round_index)

    def on_link_handled(
        self, engine: "SynchronousEngine", round_index: int, u: int, v: int
    ) -> None:
        for obs in self._observers:
            obs.on_link_handled(engine, round_index, u, v)

    def on_run_end(self, engine: "SynchronousEngine", rounds_executed: int) -> None:
        for obs in self._observers:
            obs.on_run_end(engine, rounds_executed)

    def on_message_sent(self, engine: "SynchronousEngine", message: "Message") -> None:
        for obs in self._observers:
            hook = getattr(obs, "on_message_sent", None)
            if hook is not None:
                hook(engine, message)

    def on_message_dropped(
        self, engine: "SynchronousEngine", message: "Message", reason: str
    ) -> None:
        for obs in self._observers:
            hook = getattr(obs, "on_message_dropped", None)
            if hook is not None:
                hook(engine, message, reason)

    def on_message_delivered(
        self, engine: "SynchronousEngine", message: "Message"
    ) -> None:
        for obs in self._observers:
            hook = getattr(obs, "on_message_delivered", None)
            if hook is not None:
                hook(engine, message)

    def on_fault_injected(
        self, engine: "SynchronousEngine", round_index: int, kind: str, detail: str
    ) -> None:
        for obs in self._observers:
            hook = getattr(obs, "on_fault_injected", None)
            if hook is not None:
                hook(engine, round_index, kind, detail)

    def on_topology_event(
        self,
        engine: "SynchronousEngine",
        round_index: int,
        kind: str,
        detail: dict,
    ) -> None:
        for obs in self._observers:
            hook = getattr(obs, "on_topology_event", None)
            if hook is not None:
                hook(engine, round_index, kind, detail)

    def on_phase_end(
        self, engine: "SynchronousEngine", phase: str, seconds: float
    ) -> None:
        for obs in self._observers:
            hook = getattr(obs, "on_phase_end", None)
            if hook is not None:
                hook(engine, phase, seconds)

    def on_round_messages(
        self,
        engine: "SynchronousEngine",
        round_index: int,
        sent: int,
        delivered: int,
    ) -> None:
        for obs in self._observers:
            hook = getattr(obs, "on_round_messages", None)
            if hook is not None:
                hook(engine, round_index, sent, delivered)


class RoundCounter(Observer):
    """Counts rounds and the per-round sent/delivered message deltas.

    ``rounds`` is the number of completed rounds observed; ``sent_per_round``
    and ``delivered_per_round`` record each round's message-count deltas
    (engines expose only cumulative totals).
    """

    def __init__(self) -> None:
        self.rounds = 0
        self.sent_per_round: List[int] = []
        self.delivered_per_round: List[int] = []
        self._last_sent = 0
        self._last_delivered = 0

    def wants_detail(self, round_index: int) -> bool:
        # Reads cumulative engine counters at round boundaries only.
        return False

    def on_run_start(self, engine: "SynchronousEngine") -> None:
        self._last_sent = engine.messages_sent
        self._last_delivered = engine.messages_delivered

    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        self.rounds += 1
        self.sent_per_round.append(engine.messages_sent - self._last_sent)
        self.delivered_per_round.append(
            engine.messages_delivered - self._last_delivered
        )
        self._last_sent = engine.messages_sent
        self._last_delivered = engine.messages_delivered


class MessageCounter(RoundCounter):
    """Deprecated alias of :class:`RoundCounter`.

    The historical name promised per-round message logging while the class
    only counted rounds; :class:`RoundCounter` now actually records the
    per-round sent/delivered deltas.
    """

    def __init__(self) -> None:
        warnings.warn(
            "MessageCounter is deprecated; use RoundCounter",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__()
