"""Asynchronous (Poisson-clock) gossip engine.

The synchronous engine mirrors the paper's experimental setup; this engine
models the *asynchronous time model* standard in the gossip literature
(Boyd et al. [5]): every node owns a rate-1 Poisson clock and gossips when
it ticks, and messages may take a random latency to arrive. No two events
are simultaneous, there are no rounds, and nodes act on arbitrarily
interleaved, possibly reordered deliveries.

Running the same protocols under this much more hostile scheduling regime —
and under message reordering, which the synchronous engine cannot produce —
is how the test suite checks that PF/PCF's fault-tolerance claims do not
secretly depend on round synchronism. Time is measured in expected
rounds-equivalents: one unit of simulated time ≈ one activation per node on
average, so :class:`~repro.faults.events.FaultPlan` rounds are interpreted
directly as simulated-time instants.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time as _time
from typing import Callable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.algorithms.base import GossipAlgorithm
from repro.exceptions import ConfigurationError
from repro.faults.base import MessageFault, NoFault
from repro.faults.events import FaultPlan
from repro.simulation.messages import Message
from repro.simulation.observers import Observer, ObserverList
from repro.topology.base import Topology

_ACTIVATE = 0
_DELIVER = 1


class AsynchronousEngine:
    """Event-driven gossip simulator with Poisson activations and latency."""

    def __init__(
        self,
        topology: Topology,
        algorithms: Sequence[GossipAlgorithm],
        *,
        seed: int = 0,
        latency: float = 0.0,
        latency_jitter: float = 0.0,
        message_fault: Optional[MessageFault] = None,
        fault_plan: Optional[FaultPlan] = None,
        observers: Sequence[Observer] = (),
    ) -> None:
        if len(algorithms) != topology.n:
            raise ConfigurationError(
                f"expected {topology.n} algorithm instances, got {len(algorithms)}"
            )
        if latency < 0 or latency_jitter < 0:
            raise ConfigurationError("latency parameters must be >= 0")
        self._topology = topology
        self._algorithms = list(algorithms)
        self._rng = np.random.default_rng(seed)
        self._latency = float(latency)
        self._jitter = float(latency_jitter)
        self._message_fault = message_fault or NoFault()
        self._fault_plan = fault_plan or FaultPlan()
        from repro.telemetry.session import session_observers

        self._observer = ObserverList(
            list(observers) + session_observers(self, engine_kind="async")
        )
        self._run_started = False

        self._now = 0.0
        self._sequence = itertools.count()
        self._queue: List[Tuple[float, int, int, object]] = []
        # Per-directed-edge FIFO enforcement: channels are order-preserving
        # (TCP-like). The flow handshake of PCF assumes FIFO links — an
        # older flow snapshot overtaking a newer one could clobber protocol
        # state the paper's (synchronous) model cannot produce.
        self._last_delivery_time: dict = {}
        self._dead_edges: Set[Tuple[int, int]] = set()
        self._dead_nodes: Set[int] = set()
        self._handled_edges: Set[Tuple[int, int]] = set()
        self._activations = 0
        self._messages_delivered = 0
        # Sends made on unsampled (detail-free) time units, flushed as one
        # batched on_round_messages call at the next unit boundary.
        self._unsampled_sends = 0

        # Prime one activation per node; each activation reschedules itself.
        for node in topology.nodes():
            self._schedule_activation(node)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (≈ rounds-equivalents)."""
        return self._now

    @property
    def activations(self) -> int:
        return self._activations

    @property
    def messages_sent(self) -> int:
        """Messages handed to the transport (== activations that sent)."""
        return self._activations

    @property
    def messages_delivered(self) -> int:
        return self._messages_delivered

    @property
    def algorithms(self) -> List[GossipAlgorithm]:
        return self._algorithms

    def live_nodes(self) -> List[int]:
        return [i for i in self._topology.nodes() if i not in self._dead_nodes]

    def estimates(self) -> List[object]:
        return [self._algorithms[i].estimate() for i in self.live_nodes()]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until_time: float,
        *,
        stop_when: Optional[Callable[["AsynchronousEngine"], bool]] = None,
        check_interval: int = 64,
    ) -> float:
        """Process events up to simulated ``until_time``; returns final time."""
        if until_time < self._now:
            raise ConfigurationError(
                f"until_time {until_time} is in the past (now={self._now})"
            )
        if not self._run_started:
            self._run_started = True
            self._observer.on_run_start(self)
        events_since_check = 0
        stopped = False
        while self._queue and self._queue[0][0] <= until_time:
            self._process_next()
            events_since_check += 1
            if stop_when is not None and events_since_check >= check_interval:
                events_since_check = 0
                if stop_when(self):
                    stopped = True
                    break
        if not stopped:
            # Cross any fault instants in the remaining quiet interval.
            self._advance_time(until_time)
        self._flush_unsampled_sends(int(self._now))
        # Rounds-equivalents completed: one simulated time unit each.
        self._observer.on_run_end(self, int(self._now))
        return self._now

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _schedule_activation(self, node: int) -> None:
        delay = float(self._rng.exponential(1.0))
        heapq.heappush(
            self._queue,
            (self._now + delay, next(self._sequence), _ACTIVATE, node),
        )

    def _process_next(self) -> None:
        time, _, kind, data = heapq.heappop(self._queue)
        self._advance_time(time)
        if kind == _ACTIVATE:
            self._activate(int(data))
        else:
            self._deliver(data)  # type: ignore[arg-type]

    def _advance_time(self, time: float) -> None:
        observed = bool(self._observer)
        # Apply permanent failures whose instant we are crossing.
        for lf in self._fault_plan.link_failures:
            if lf.round <= time:
                if observed and lf.edge not in self._dead_edges:
                    self._observer.on_fault_injected(
                        self, int(time), "link_failure", f"link({lf.u},{lf.v})"
                    )
                self._dead_edges.add(lf.edge)
            if lf.handle_round <= time:
                self._handle_link(lf.u, lf.v)  # idempotent
        for nf in self._fault_plan.node_failures:
            if nf.round <= time:
                if observed and nf.node not in self._dead_nodes:
                    self._observer.on_fault_injected(
                        self, int(time), "node_failure", f"node({nf.node})"
                    )
                self._dead_nodes.add(nf.node)
            if nf.handle_round <= time:
                for neighbor in self._topology.neighbors(nf.node):
                    self._handle_link(nf.node, neighbor)
        if observed and int(time) > int(self._now):
            # Report each completed unit interval as one rounds-equivalent
            # so per-round observers (traces, probes) sample async runs too.
            self._flush_unsampled_sends(int(self._now))
            for r in range(int(self._now), int(time)):
                self._observer.on_round_end(self, r)
        self._now = time

    def _flush_unsampled_sends(self, round_index: int) -> None:
        """Batch-report sends that skipped per-message hooks (sampling)."""
        if self._unsampled_sends and self._observer:
            # delivered == sent: drops are always reported individually.
            self._observer.on_round_messages(
                self, round_index, self._unsampled_sends, self._unsampled_sends
            )
            self._unsampled_sends = 0

    def _activate(self, node: int) -> None:
        if node not in self._dead_nodes:
            alg = self._algorithms[node]
            live = alg.neighbors
            if live:
                detailed = bool(self._observer) and self._observer.wants_detail(
                    int(self._now)
                )
                t0 = _time.perf_counter() if detailed else 0.0
                target = live[int(self._rng.integers(0, len(live)))]
                payload = alg.make_message(target)
                message = Message(
                    sender=node,
                    receiver=target,
                    round=int(self._now),
                    payload=payload,
                )
                self._activations += 1
                if detailed:
                    self._observer.on_message_sent(self, message)
                elif self._observer:
                    self._unsampled_sends += 1
                self._dispatch(message)
                if detailed:
                    self._observer.on_phase_end(
                        self, "send", _time.perf_counter() - t0
                    )
            self._schedule_activation(node)

    def _dispatch(self, message: Message) -> None:
        if message.edge() in self._dead_edges:
            if self._observer:
                self._observer.on_message_dropped(self, message, "dead_edge")
            return
        filtered = self._message_fault.apply(message)
        if filtered is None:
            if self._observer:
                self._observer.on_message_dropped(self, message, "injector")
            return
        if self._observer and filtered is not message:
            self._observer.on_fault_injected(
                self,
                int(self._now),
                "message_corruption",
                f"edge({message.sender},{message.receiver})",
            )
        delay = self._latency
        if self._jitter > 0.0:
            delay += float(self._rng.exponential(self._jitter))
        channel = (message.sender, message.receiver)
        deliver_at = self._now + delay
        previous = self._last_delivery_time.get(channel)
        if previous is not None and deliver_at <= previous:
            # FIFO channel: never overtake the previously sent message.
            deliver_at = math.nextafter(previous, math.inf)
        self._last_delivery_time[channel] = deliver_at
        heapq.heappush(
            self._queue,
            (deliver_at, next(self._sequence), _DELIVER, filtered),
        )

    def _deliver(self, message: Message) -> None:
        observed = bool(self._observer)
        # Re-check liveness at delivery time: the link/receiver may have
        # died while the message was in flight.
        if message.edge() in self._dead_edges:
            if observed:
                self._observer.on_message_dropped(self, message, "dead_edge")
            return
        if message.receiver in self._dead_nodes:
            if observed:
                self._observer.on_message_dropped(self, message, "dead_node")
            return
        receiver = self._algorithms[message.receiver]
        if message.sender not in receiver.neighbors:
            # The receiver already excluded this link (stale in-flight
            # message after failure handling): drop silently.
            if observed:
                self._observer.on_message_dropped(self, message, "stale")
            return
        detailed = observed and self._observer.wants_detail(int(self._now))
        t0 = _time.perf_counter() if detailed else 0.0
        receiver.on_receive(message.sender, message.payload)
        self._messages_delivered += 1
        if detailed:
            self._observer.on_message_delivered(self, message)
            self._observer.on_phase_end(
                self, "deliver", _time.perf_counter() - t0
            )

    def _handle_link(self, u: int, v: int) -> None:
        edge = (u, v) if u < v else (v, u)
        if edge in self._handled_edges:
            return
        self._handled_edges.add(edge)
        self._dead_edges.add(edge)
        for endpoint, other in ((u, v), (v, u)):
            if endpoint in self._dead_nodes:
                continue
            alg = self._algorithms[endpoint]
            if other in alg.neighbors:
                alg.on_link_failed(other)
        self._observer.on_link_handled(self, int(self._now), edge[0], edge[1])
