"""Structured run tracing.

A :class:`TraceRecorder` observer captures a per-round structured record —
message counts, estimate spread, live-node count, failure handlings — and
can dump the whole trace as JSON lines for offline analysis. This is the
operational/debugging companion to the error-oriented recorders in
:mod:`repro.metrics`.

Round thinning is configured through the telemetry-wide
:class:`~repro.telemetry.sampling.RoundSampler` (``sampler=``); the
historical ``every=N`` form is kept as a deprecated alias so one
configuration drives trace thinning and event sampling alike.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import warnings
from typing import TYPE_CHECKING, List, Optional, Union

import numpy as np

from repro.simulation.observers import Observer
from repro.telemetry.sampling import RoundSampler, resolve_sampler

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.engine import SynchronousEngine


def _sanitize_value(value: object) -> object:
    if isinstance(value, float) and not np.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: _sanitize_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize_value(item) for item in value]
    return value


def sanitize_record(payload: dict) -> dict:
    """Replace non-finite floats with ``None`` so json.dumps emits valid JSON.

    Recurses into nested lists/tuples and dicts — flight-recorder dumps and
    trace events carry nested payload snapshots whose NaN/inf values would
    otherwise serialize as bare ``NaN``/``Infinity`` (invalid JSON).
    """
    return {key: _sanitize_value(value) for key, value in payload.items()}


@dataclasses.dataclass(frozen=True)
class RoundRecord:
    """One round's global state snapshot (oracle view)."""

    round: int
    live_nodes: int
    messages_sent: int  # cumulative
    messages_delivered: int  # cumulative
    estimate_min: float
    estimate_max: float
    estimate_spread: float
    finite: bool
    link_handlings: List[str]

    def to_json(self) -> str:
        # NaN/inf serialize as bare ``NaN``/``Infinity`` (invalid JSON)
        # unless mapped to null first, same as dump_jsonl does.
        return json.dumps(sanitize_record(dataclasses.asdict(self)))


class TraceRecorder(Observer):
    """Records a :class:`RoundRecord` on every sampled round.

    ``sampler`` thins the trace (see
    :class:`~repro.telemetry.sampling.RoundSampler`); failure handlings are
    always recorded on the round they happen. ``every`` is a deprecated
    alias for ``sampler=RoundSampler(every=N)``.
    """

    def __init__(
        self,
        *,
        sampler: Optional[RoundSampler] = None,
        every: Optional[int] = None,
    ) -> None:
        if every is not None:
            warnings.warn(
                "TraceRecorder(every=N) is deprecated; pass "
                "sampler=RoundSampler(every=N) so trace thinning shares the "
                "telemetry-wide sampling configuration",
                DeprecationWarning,
                stacklevel=2,
            )
        self._sampler = resolve_sampler(sampler, every=every)
        self.records: List[RoundRecord] = []
        self._pending_handlings: List[str] = []

    def wants_detail(self, round_index: int) -> bool:
        # Consumes round-level hooks only; never forces per-message detail.
        return False

    def on_link_handled(
        self, engine: "SynchronousEngine", round_index: int, u: int, v: int
    ) -> None:
        self._pending_handlings.append(f"link({u},{v})")

    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        if not self._sampler.sample(round_index) and not self._pending_handlings:
            return
        estimates = np.array(
            [
                np.max(np.atleast_1d(np.asarray(e, dtype=np.float64)))
                for e in engine.estimates()
            ]
        )
        finite = bool(np.all(np.isfinite(estimates)))
        if finite and len(estimates):
            lo, hi = float(estimates.min()), float(estimates.max())
        else:
            lo = hi = float("nan")
        self.records.append(
            RoundRecord(
                round=round_index,
                live_nodes=len(engine.live_nodes()),
                messages_sent=engine.messages_sent,
                messages_delivered=engine.messages_delivered,
                estimate_min=lo,
                estimate_max=hi,
                estimate_spread=(hi - lo) if finite else float("nan"),
                finite=finite,
                link_handlings=list(self._pending_handlings),
            )
        )
        self._pending_handlings.clear()

    # ------------------------------------------------------------------
    def dump_jsonl(self, path: Union[str, pathlib.Path]) -> int:
        """Write the trace as JSON lines; returns the record count."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        sanitized = [
            json.dumps(sanitize_record(dataclasses.asdict(record)))
            for record in self.records
        ]
        path.write_text("\n".join(sanitized) + ("\n" if sanitized else ""))
        return len(self.records)

    def last(self) -> Optional[RoundRecord]:
        return self.records[-1] if self.records else None
