"""Message record passed between nodes by the simulation engines."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Message:
    """One in-flight protocol message.

    ``payload`` is an algorithm-specific frozen dataclass (see
    :mod:`repro.algorithms`); the engines and fault injectors treat it as
    opaque apart from generic float corruption.
    """

    sender: int
    receiver: int
    round: int
    payload: object

    def with_payload(self, payload: object) -> "Message":
        """Copy of this message carrying a (possibly corrupted) payload."""
        return Message(
            sender=self.sender,
            receiver=self.receiver,
            round=self.round,
            payload=payload,
        )

    def edge(self) -> tuple:
        """Canonical undirected edge this message travels on."""
        return (
            (self.sender, self.receiver)
            if self.sender < self.receiver
            else (self.receiver, self.sender)
        )
