"""Distributed-system simulation engines for gossip reductions.

:class:`SynchronousEngine` reproduces the paper's round-synchronous
experimental model; :class:`AsynchronousEngine` provides the Poisson-clock
asynchronous time model of the gossip literature for robustness checks.
"""

from repro.simulation.async_engine import AsynchronousEngine
from repro.simulation.engine import SynchronousEngine
from repro.simulation.messages import Message
from repro.simulation.observers import (
    MessageCounter,
    Observer,
    ObserverList,
    RoundCounter,
)
from repro.simulation.trace import RoundRecord, TraceRecorder
from repro.simulation.schedule import (
    FixedSchedule,
    RoundRobinSchedule,
    Schedule,
    UniformGossipSchedule,
)

__all__ = [
    "SynchronousEngine",
    "AsynchronousEngine",
    "Message",
    "Observer",
    "ObserverList",
    "MessageCounter",
    "RoundCounter",
    "TraceRecorder",
    "RoundRecord",
    "Schedule",
    "UniformGossipSchedule",
    "RoundRobinSchedule",
    "FixedSchedule",
]
