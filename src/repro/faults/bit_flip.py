"""Bit-flip (soft error) injection into message payloads.

Models single-event upsets corrupting a message in flight: with probability
``p`` per message, one uniformly chosen bit of one uniformly chosen float in
the payload's mass pairs is flipped. Flow-based algorithms heal such
corruption at the next successful exchange on the affected edge (Sec. II-A);
push-sum is permanently corrupted — both behaviours are locked in by tests.

Payload dataclasses are corrupted generically: every
:class:`~repro.algorithms.state.MassPair` field is a flip target, covering
all three protocols without per-protocol injector code. Integer control
fields (PCF's ``c``/``r``) can optionally be corrupted too
(``corrupt_control=True``) to probe the handshake's resilience.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.algorithms.base import payload_mass_pairs
from repro.algorithms.state import MassPair
from repro.faults.base import MessageFault
from repro.util.float_bits import flip_bit
from repro.util.validation import check_probability

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.simulation.messages import Message


def _flip_in_pair(
    pair: MassPair, rng: np.random.Generator, *, max_bit: int = 63
) -> MassPair:
    """Flip one random bit (0..max_bit) in one random float of ``pair``."""
    bit = int(rng.integers(0, max_bit + 1))
    if pair.is_vector:
        values = pair.value  # a copy
        slot = int(rng.integers(0, len(values) + 1))
        if slot == len(values):
            return MassPair(values, flip_bit(pair.weight, bit))
        values[slot] = flip_bit(float(values[slot]), bit)
        return MassPair(values, pair.weight)
    if rng.integers(0, 2) == 0:
        return MassPair(flip_bit(float(pair.value), bit), pair.weight)
    return MassPair(pair.value, flip_bit(pair.weight, bit))


def corrupt_payload(
    payload: object,
    rng: np.random.Generator,
    *,
    corrupt_control: bool = False,
    max_bit: int = 63,
) -> object:
    """Return a copy of ``payload`` with one flipped bit.

    ``max_bit`` bounds the flipped bit position: 51 restricts corruption to
    the mantissa (value perturbed by at most a factor of 2 — the
    "recoverable" soft-error regime), 63 allows exponent and sign flips
    whose astronomically rescaled values permanently degrade the
    achievable accuracy of any flow-retaining protocol (see the soft-error
    integration tests). Raises if the payload exposes nothing to corrupt.
    """
    pair_fields = payload_mass_pairs(payload)
    int_fields: List[str] = []
    if corrupt_control:
        for f in dataclasses.fields(payload):
            if isinstance(getattr(payload, f.name), int):
                int_fields.append(f.name)
    targets = pair_fields + int_fields
    if not targets:
        raise ValueError(
            f"payload {type(payload).__name__} has no corruptible fields"
        )
    chosen = targets[int(rng.integers(0, len(targets)))]
    current = getattr(payload, chosen)
    if isinstance(current, MassPair):
        replacement: object = _flip_in_pair(current, rng, max_bit=max_bit)
    else:
        # Flip a low bit of the control integer, keeping it nonnegative so
        # it remains a syntactically valid (if wrong) protocol value.
        replacement = int(current) ^ (1 << int(rng.integers(0, 4)))
    return dataclasses.replace(payload, **{chosen: replacement})


class BitFlipFault(MessageFault):
    """Flip one payload bit with probability ``p`` per message."""

    def __init__(
        self,
        p: float,
        *,
        seed: int = 0,
        corrupt_control: bool = False,
        max_bit: int = 63,
    ) -> None:
        if not 0 <= max_bit <= 63:
            raise ValueError(f"max_bit must be in [0, 63], got {max_bit}")
        self._p = check_probability(p, "p")
        self._seed = seed
        self._corrupt_control = corrupt_control
        self._max_bit = max_bit
        self._rng = np.random.default_rng(seed)
        self._flips = 0

    def apply(self, message: "Message") -> Optional["Message"]:
        if self._p <= 0.0 or self._rng.random() >= self._p:
            return message
        self._flips += 1
        corrupted = corrupt_payload(
            message.payload,
            self._rng,
            corrupt_control=self._corrupt_control,
            max_bit=self._max_bit,
        )
        return message.with_payload(corrupted)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        self._flips = 0

    @property
    def flips(self) -> int:
        return self._flips
