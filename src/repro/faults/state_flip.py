"""Memory soft errors: bit flips in *stored* flow variables.

In-flight corruption (:mod:`repro.faults.bit_flip`) is healed by every
flow-based protocol at the next exchange. Flips in node *memory* are the
harder case the paper's PCF-variant discussion turns on: protocols whose
estimate bookkeeping re-reads the flows (PF ``recompute``, PCF ``robust``)
heal them too, whereas incrementally tracked flow sums (PF ``incremental``,
PCF ``efficient``) bake the corruption in permanently.

Implemented as an engine :class:`~repro.simulation.observers.Observer` that,
at each scheduled round, flips one random bit in one random live node's
stored flow state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Set, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.simulation.engine import SynchronousEngine


class StateBitFlipInjector:
    """Flips a stored-flow bit at the end of each scheduled round.

    Structurally an engine Observer — duck-typed rather than inherited so
    :mod:`repro.faults` stays import-independent of :mod:`repro.simulation`.

    Only mantissa/low-exponent bits (0..55) are flipped by default so the
    corrupted value stays finite: the point of the ablation is silent
    gradual corruption, not inf/NaN detection, though ``max_bit=63`` is
    allowed for the full soft-error model.
    """

    def __init__(
        self, rounds: Iterable[int], *, seed: int = 0, max_bit: int = 55
    ) -> None:
        if not 0 <= max_bit <= 63:
            raise ValueError(f"max_bit must be in [0, 63], got {max_bit}")
        self._rounds: Set[int] = set(int(r) for r in rounds)
        self._rng = np.random.default_rng(seed)
        self._max_bit = max_bit
        self.injections: List[Tuple[int, int, int]] = []  # (round, node, bit)

    # Observer protocol (duck-typed) -----------------------------------
    def on_run_start(self, engine: "SynchronousEngine") -> None:
        pass

    def on_link_handled(
        self, engine: "SynchronousEngine", round_index: int, u: int, v: int
    ) -> None:
        pass

    def on_run_end(self, engine: "SynchronousEngine", rounds_executed: int) -> None:
        pass

    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        if round_index not in self._rounds:
            return
        candidates = [
            i
            for i in engine.live_nodes()
            if hasattr(engine.algorithms[i], "inject_flow_bit_flip")
            and engine.algorithms[i].neighbors
        ]
        if not candidates:
            return
        node = candidates[int(self._rng.integers(0, len(candidates)))]
        alg = engine.algorithms[node]
        neighbors = alg.neighbors
        neighbor = neighbors[int(self._rng.integers(0, len(neighbors)))]
        bit = int(self._rng.integers(0, self._max_bit + 1))
        try:
            # PCF signature takes a slot; PF does not.
            alg.inject_flow_bit_flip(neighbor, bit, slot=int(self._rng.integers(0, 2)))
        except TypeError:
            alg.inject_flow_bit_flip(neighbor, bit)
        self.injections.append((round_index, node, bit))
