"""Fault-injection interfaces.

Two orthogonal fault classes, mirroring the paper's taxonomy (Sec. I/II):

- **Soft/transient faults** — message loss and bit flips — are modelled as
  :class:`MessageFault` filters applied to every in-flight message by the
  transport. The flow algorithms recover from these "without even detecting
  or correcting them explicitly".
- **Permanent failures** — broken links and fail-stop nodes — are timed
  :mod:`repro.faults.events` in a :class:`~repro.faults.events.FaultPlan`;
  the engine kills deliveries immediately and notifies the affected
  algorithms at the (possibly delayed) *handling* round, which triggers the
  algorithmic exclusion ("setting the corresponding flow variables to
  zero").
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.simulation.messages import Message


class MessageFault(abc.ABC):
    """A per-message fault filter (loss, corruption, ...)."""

    @abc.abstractmethod
    def apply(self, message: "Message") -> Optional["Message"]:
        """Return the (possibly corrupted) message, or ``None`` to drop it."""

    def reset(self) -> None:
        """Rewind internal RNG state for a fresh run."""


class CompositeFault(MessageFault):
    """Applies several message faults in order; any drop wins."""

    def __init__(self, faults: Iterable[MessageFault]) -> None:
        self._faults: List[MessageFault] = list(faults)

    def apply(self, message: "Message") -> Optional["Message"]:
        current: Optional["Message"] = message
        for fault in self._faults:
            if current is None:
                return None
            current = fault.apply(current)
        return current

    def reset(self) -> None:
        for fault in self._faults:
            fault.reset()


class NoFault(MessageFault):
    """Identity filter (the failure-free baseline)."""

    def apply(self, message: "Message") -> Optional["Message"]:
        return message

    def reset(self) -> None:
        pass


class WindowedFault(MessageFault):
    """Applies an inner fault only to messages sent within a round window.

    Lets experiments model bounded fault episodes ("flips during rounds
    100..300, then a clean network") and measure *recovery*, which is the
    actual self-healing claim — under sustained injection the steady-state
    error necessarily reflects the most recent faults.
    """

    def __init__(
        self, inner: MessageFault, *, start_round: int = 0, end_round: int
    ) -> None:
        if end_round < start_round:
            raise ValueError(
                f"end_round {end_round} precedes start_round {start_round}"
            )
        self._inner = inner
        self._start = start_round
        self._end = end_round

    def apply(self, message: "Message") -> Optional["Message"]:
        if self._start <= message.round <= self._end:
            return self._inner.apply(message)
        return message

    def reset(self) -> None:
        self._inner.reset()
