"""Declarative fault-schedule specs — the fault axis of campaign grids.

A fault schedule is a plain serializable dict (JSON/TOML-friendly) naming
one of the fault models in :mod:`repro.faults` plus its parameters, or a
composition of several. Campaign specs carry these dicts across process
boundaries; :func:`build_faults` instantiates them for one concrete run.

Grammar::

    {"kind": "<kind>", <params...>, "name": "<optional label>"}
    {"compose": [<fault spec>, ...], "name": "<optional label>"}

Kinds (mapped onto the paper's fault taxonomy, Sec. I/II):

- ``none`` — the failure-free baseline.
- ``message_loss`` — i.i.d. per-message loss (``rate``).
- ``burst_loss`` — Gilbert–Elliott burst loss (``p_gb``, ``p_bg``).
- ``bit_flip`` — in-flight payload corruption (``rate``, optional
  ``max_bit``, ``corrupt_control``).
- ``link_failure`` — one permanent link failure (``round``, optional
  ``edge`` default ``[0, 1]``, ``detection_delay``) — the Figs. 4/7 event.
- ``node_failure`` — fail-stop node (``round``, ``node``, optional
  ``detection_delay``).
- ``state_flip`` — memory soft errors in stored flows (``rounds`` list,
  optional ``max_bit``) — the PCF-variant ablation's injector.

Randomized faults (loss, flips) derive their RNG streams from the run seed
passed to :func:`build_faults`, so two algorithms swept with the same seed
see the identical fault timeline — the paper's paired-comparison method.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.faults.base import CompositeFault, MessageFault
from repro.faults.bit_flip import BitFlipFault
from repro.faults.events import FaultPlan, LinkFailure, NodeFailure
from repro.faults.message_loss import BurstMessageLoss, IidMessageLoss
from repro.faults.state_flip import StateBitFlipInjector

#: kind -> (required params, optional params)
FAULT_KINDS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "none": ((), ()),
    "message_loss": (("rate",), ()),
    "burst_loss": (("p_gb", "p_bg"), ()),
    "bit_flip": (("rate",), ("max_bit", "corrupt_control")),
    "link_failure": (("round",), ("edge", "detection_delay")),
    "node_failure": (("round", "node"), ("detection_delay",)),
    "state_flip": (("rounds",), ("max_bit",)),
}

# Stride between the RNG streams of composed sub-faults of one run.
_SEED_STRIDE = 7919


@dataclasses.dataclass
class BuiltFaults:
    """A fault schedule instantiated for one concrete run.

    ``message_fault`` plugs into the engine's transport, ``fault_plan``
    carries the permanent failures, ``observers`` hold any state-injection
    observers, and ``event_round`` is the earliest permanent-failure
    *handling* round (the reference point for recovery analysis), ``None``
    when the schedule has no permanent failures.
    """

    name: str
    message_fault: Optional[MessageFault]
    fault_plan: FaultPlan
    observers: List[object]
    event_round: Optional[int]


def _default_name(spec: Mapping[str, object]) -> str:
    kind = spec["kind"]
    if kind == "none":
        return "none"
    if kind == "message_loss":
        return f"loss{spec['rate']:g}"
    if kind == "burst_loss":
        return f"burst{spec['p_gb']:g}/{spec['p_bg']:g}"
    if kind == "bit_flip":
        return f"flip{spec['rate']:g}"
    if kind == "link_failure":
        u, v = spec.get("edge", (0, 1))
        return f"link({u},{v})@{spec['round']}"
    if kind == "node_failure":
        return f"node({spec['node']})@{spec['round']}"
    if kind == "state_flip":
        rounds = spec["rounds"]
        return f"stateflip@{','.join(str(r) for r in rounds)}"
    raise AssertionError(kind)  # validated before this is called


def _validate_single(spec: Mapping[str, object], where: str) -> Dict[str, object]:
    kind = spec.get("kind")
    if not isinstance(kind, str) or kind not in FAULT_KINDS:
        raise ConfigurationError(
            f"{where}: unknown fault kind {kind!r}; "
            f"expected one of {sorted(FAULT_KINDS)}"
        )
    required, optional = FAULT_KINDS[kind]
    allowed = set(required) | set(optional) | {"kind", "name"}
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise ConfigurationError(
            f"{where}: unknown key(s) {unknown} for fault kind {kind!r}; "
            f"allowed: {sorted(allowed)}"
        )
    missing = sorted(set(required) - set(spec))
    if missing:
        raise ConfigurationError(
            f"{where}: fault kind {kind!r} is missing required key(s) {missing}"
        )
    out: Dict[str, object] = dict(spec)
    if kind in ("message_loss", "bit_flip"):
        rate = float(out["rate"])  # type: ignore[arg-type]
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"{where}: rate must be in [0, 1], got {rate}"
            )
        out["rate"] = rate
    if kind == "link_failure":
        edge = out.get("edge", [0, 1])
        if (
            not isinstance(edge, (list, tuple))
            or len(edge) != 2
            or not all(isinstance(e, int) for e in edge)
        ):
            raise ConfigurationError(
                f"{where}: edge must be a pair of node ids, got {edge!r}"
            )
        out["edge"] = [int(edge[0]), int(edge[1])]
    if kind == "state_flip":
        rounds = out["rounds"]
        if not isinstance(rounds, (list, tuple)) or not rounds:
            raise ConfigurationError(
                f"{where}: rounds must be a non-empty list, got {rounds!r}"
            )
        out["rounds"] = [int(r) for r in rounds]
    return out


def validate_fault_spec(
    spec: Mapping[str, object], *, where: str = "fault spec"
) -> Dict[str, object]:
    """Validate ``spec`` and return a normalized copy with a ``name``.

    Raises :class:`~repro.exceptions.ConfigurationError` on unknown kinds,
    unknown/missing keys or out-of-range parameters — the campaign loader
    surfaces these before any run starts.
    """
    if not isinstance(spec, Mapping):
        raise ConfigurationError(
            f"{where}: a fault schedule must be a table/dict, got {type(spec).__name__}"
        )
    if "compose" in spec:
        unknown = sorted(set(spec) - {"compose", "name"})
        if unknown:
            raise ConfigurationError(
                f"{where}: composed schedule allows only 'compose' and 'name', "
                f"got extra key(s) {unknown}"
            )
        parts = spec["compose"]
        if not isinstance(parts, (list, tuple)) or not parts:
            raise ConfigurationError(
                f"{where}: 'compose' must be a non-empty list of fault specs"
            )
        normalized = [
            _validate_single(part, f"{where}[{i}]") for i, part in enumerate(parts)
        ]
        name = spec.get("name") or "+".join(_default_name(p) for p in normalized)
        return {"name": str(name), "compose": normalized}
    single = _validate_single(spec, where)
    single["name"] = str(spec.get("name") or _default_name(single))
    return single


def build_faults(spec: Mapping[str, object], *, seed: int = 0) -> BuiltFaults:
    """Instantiate a (validated or raw) fault-schedule spec for one run."""
    normalized = validate_fault_spec(spec)
    parts = normalized.get("compose") or [normalized]
    message_faults: List[MessageFault] = []
    link_failures: List[LinkFailure] = []
    node_failures: List[NodeFailure] = []
    observers: List[object] = []
    for index, part in enumerate(parts):
        kind = part["kind"]
        part_seed = seed + index * _SEED_STRIDE
        if kind == "none":
            continue
        elif kind == "message_loss":
            message_faults.append(IidMessageLoss(part["rate"], seed=part_seed))
        elif kind == "burst_loss":
            message_faults.append(
                BurstMessageLoss(
                    float(part["p_gb"]), float(part["p_bg"]), seed=part_seed
                )
            )
        elif kind == "bit_flip":
            message_faults.append(
                BitFlipFault(
                    part["rate"],
                    seed=part_seed,
                    corrupt_control=bool(part.get("corrupt_control", False)),
                    max_bit=int(part.get("max_bit", 63)),
                )
            )
        elif kind == "link_failure":
            u, v = part["edge"]
            link_failures.append(
                LinkFailure(
                    round=int(part["round"]),
                    u=u,
                    v=v,
                    detection_delay=int(part.get("detection_delay", 0)),
                )
            )
        elif kind == "node_failure":
            node_failures.append(
                NodeFailure(
                    round=int(part["round"]),
                    node=int(part["node"]),
                    detection_delay=int(part.get("detection_delay", 0)),
                )
            )
        elif kind == "state_flip":
            observers.append(
                StateBitFlipInjector(
                    part["rounds"],
                    seed=part_seed,
                    max_bit=int(part.get("max_bit", 55)),
                )
            )
    message_fault: Optional[MessageFault]
    if not message_faults:
        message_fault = None
    elif len(message_faults) == 1:
        message_fault = message_faults[0]
    else:
        message_fault = CompositeFault(message_faults)
    plan = FaultPlan(link_failures=link_failures, node_failures=node_failures)
    handle_rounds = [lf.handle_round for lf in link_failures]
    handle_rounds += [nf.handle_round for nf in node_failures]
    return BuiltFaults(
        name=str(normalized["name"]),
        message_fault=message_fault,
        fault_plan=plan,
        observers=observers,
        event_round=min(handle_rounds) if handle_rounds else None,
    )
