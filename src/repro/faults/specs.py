"""Declarative fault-schedule specs — the fault axis of campaign grids.

A fault schedule is a plain serializable dict (JSON/TOML-friendly) naming
one of the fault models in :mod:`repro.faults` plus its parameters, or a
composition of several. Campaign specs carry these dicts across process
boundaries; :func:`build_faults` instantiates them for one concrete run.

Grammar::

    {"kind": "<kind>", <params...>, "name": "<optional label>"}
    {"compose": [<fault spec>, ...], "name": "<optional label>"}

Kinds (mapped onto the paper's fault taxonomy, Sec. I/II):

- ``none`` — the failure-free baseline.
- ``message_loss`` — i.i.d. per-message loss (``rate``).
- ``burst_loss`` — Gilbert–Elliott burst loss (``p_gb``, ``p_bg``).
- ``bit_flip`` — in-flight payload corruption (``rate``, optional
  ``max_bit``, ``corrupt_control``).
- ``link_failure`` — one permanent link failure (``round``, optional
  ``edge`` default ``[0, 1]``, ``detection_delay``) — the Figs. 4/7 event.
- ``node_failure`` — fail-stop node (``round``, ``node``, optional
  ``detection_delay``).
- ``state_flip`` — memory soft errors in stored flows (``rounds`` list,
  optional ``max_bit``) — the PCF-variant ablation's injector.

Dynamic-topology kinds (:mod:`repro.dynamics` — the regime of the related
dynamic-aggregation papers):

- ``churn`` — Poisson node join/leave churn (``rate``, optional
  ``start``/``end``/``min_live_fraction``) or a scripted ``events`` list
  of ``[round, "leave"|"join", node]`` entries;
- ``partition`` — cut the graph in two at ``round``, optionally heal at
  ``heal_round`` (optional ``fraction``);
- ``regional_outage`` — a contiguous id-block of nodes fails together at
  ``round`` for ``duration`` rounds (optional ``region_count``,
  ``region``);
- ``trace`` — replay a recorded per-round loss/failure schedule from a
  JSONL/CSV ``path`` (see :class:`repro.dynamics.trace.TraceRecorder`).

Randomized faults (loss, flips, random dynamics) derive their RNG streams
from the run seed passed to :func:`build_faults`, so two algorithms swept
with the same seed see the identical fault timeline — the paper's
paired-comparison method. Composed sub-faults draw from independent
``np.random.SeedSequence(seed).spawn(...)`` children, so the streams of
different parts are statistically independent, not merely offset.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.faults.base import CompositeFault, MessageFault
from repro.faults.bit_flip import BitFlipFault
from repro.faults.events import FaultPlan, LinkFailure, NodeFailure
from repro.faults.message_loss import BurstMessageLoss, IidMessageLoss
from repro.faults.state_flip import StateBitFlipInjector

#: kind -> (required params, optional params)
FAULT_KINDS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "none": ((), ()),
    "message_loss": (("rate",), ()),
    "burst_loss": (("p_gb", "p_bg"), ()),
    "bit_flip": (("rate",), ("max_bit", "corrupt_control")),
    "link_failure": (("round",), ("edge", "detection_delay")),
    "node_failure": (("round", "node"), ("detection_delay",)),
    "state_flip": (("rounds",), ("max_bit",)),
    "churn": ((), ("rate", "start", "end", "events", "min_live_fraction")),
    "partition": (("round",), ("heal_round", "fraction")),
    "regional_outage": (("round", "duration"), ("region_count", "region")),
    "trace": (("path",), ()),
}

#: Kinds that build a dynamic topology schedule (need a topology at build).
DYNAMIC_FAULT_KINDS = ("churn", "partition", "regional_outage")


@dataclasses.dataclass
class BuiltFaults:
    """A fault schedule instantiated for one concrete run.

    ``message_fault`` plugs into the engine's transport, ``fault_plan``
    carries the permanent failures, ``observers`` hold any state-injection
    observers, and ``event_round`` is the earliest permanent-failure
    *handling* round (the reference point for recovery analysis), ``None``
    when the schedule has no permanent failures.
    """

    name: str
    message_fault: Optional[MessageFault]
    fault_plan: FaultPlan
    observers: List[object]
    event_round: Optional[int]
    #: Dynamic topology schedule (None for static fault schedules); plugs
    #: into the engines' ``topology_schedule`` hook.
    topology_schedule: Optional[object] = None
    #: JSON-safe summary of the dynamics for results.jsonl records.
    dynamics_meta: Optional[Dict[str, object]] = None


def _default_name(spec: Mapping[str, object]) -> str:
    kind = spec["kind"]
    if kind == "none":
        return "none"
    if kind == "message_loss":
        return f"loss{spec['rate']:g}"
    if kind == "burst_loss":
        return f"burst{spec['p_gb']:g}/{spec['p_bg']:g}"
    if kind == "bit_flip":
        return f"flip{spec['rate']:g}"
    if kind == "link_failure":
        u, v = spec.get("edge", (0, 1))
        return f"link({u},{v})@{spec['round']}"
    if kind == "node_failure":
        return f"node({spec['node']})@{spec['round']}"
    if kind == "state_flip":
        rounds = spec["rounds"]
        return f"stateflip@{','.join(str(r) for r in rounds)}"
    if kind == "churn":
        if "events" in spec:
            return "churn-scripted"
        return f"churn{spec['rate']:g}"
    if kind == "partition":
        heal = spec.get("heal_round")
        suffix = f"-heal@{heal}" if heal is not None else ""
        return f"partition@{spec['round']}{suffix}"
    if kind == "regional_outage":
        return f"outage@{spec['round']}+{spec['duration']}"
    if kind == "trace":
        import os

        return f"trace:{os.path.basename(str(spec['path']))}"
    raise AssertionError(kind)  # validated before this is called


def _validate_single(spec: Mapping[str, object], where: str) -> Dict[str, object]:
    kind = spec.get("kind")
    if not isinstance(kind, str) or kind not in FAULT_KINDS:
        raise ConfigurationError(
            f"{where}: unknown fault kind {kind!r}; "
            f"expected one of {sorted(FAULT_KINDS)}"
        )
    required, optional = FAULT_KINDS[kind]
    allowed = set(required) | set(optional) | {"kind", "name"}
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise ConfigurationError(
            f"{where}: unknown key(s) {unknown} for fault kind {kind!r}; "
            f"allowed: {sorted(allowed)}"
        )
    missing = sorted(set(required) - set(spec))
    if missing:
        raise ConfigurationError(
            f"{where}: fault kind {kind!r} is missing required key(s) {missing}"
        )
    out: Dict[str, object] = dict(spec)
    if kind in ("message_loss", "bit_flip"):
        rate = float(out["rate"])  # type: ignore[arg-type]
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"{where}: rate must be in [0, 1], got {rate}"
            )
        out["rate"] = rate
    if "round" in out:
        round_index = int(out["round"])  # type: ignore[arg-type]
        if round_index < 0:
            raise ConfigurationError(
                f"{where}: round must be >= 0, got {round_index}"
            )
        out["round"] = round_index
    if "detection_delay" in out and int(out["detection_delay"]) < 0:
        raise ConfigurationError(
            f"{where}: detection_delay must be >= 0, "
            f"got {out['detection_delay']}"
        )
    if kind == "link_failure":
        edge = out.get("edge", [0, 1])
        if (
            not isinstance(edge, (list, tuple))
            or len(edge) != 2
            or not all(isinstance(e, int) for e in edge)
        ):
            raise ConfigurationError(
                f"{where}: edge must be a pair of node ids, got {edge!r}"
            )
        u, v = int(edge[0]), int(edge[1])
        if u < 0 or v < 0:
            raise ConfigurationError(
                f"{where}: edge node ids must be >= 0, got ({u}, {v})"
            )
        if u == v:
            raise ConfigurationError(
                f"{where}: edge endpoints must differ, got ({u}, {v})"
            )
        out["edge"] = [u, v]
    if kind == "node_failure" and int(out["node"]) < 0:
        raise ConfigurationError(
            f"{where}: node must be >= 0, got {out['node']}"
        )
    if kind == "state_flip":
        rounds = out["rounds"]
        if not isinstance(rounds, (list, tuple)) or not rounds:
            raise ConfigurationError(
                f"{where}: rounds must be a non-empty list, got {rounds!r}"
            )
        out["rounds"] = [int(r) for r in rounds]
        if any(r < 0 for r in out["rounds"]):
            raise ConfigurationError(
                f"{where}: rounds must all be >= 0, got {out['rounds']}"
            )
    if kind == "churn":
        has_rate = "rate" in out
        has_events = "events" in out
        if has_rate == has_events:
            raise ConfigurationError(
                f"{where}: churn needs exactly one of 'rate' or 'events'"
            )
        if has_rate:
            rate = float(out["rate"])  # type: ignore[arg-type]
            if rate <= 0.0:
                raise ConfigurationError(
                    f"{where}: churn rate must be > 0, got {rate}"
                )
            out["rate"] = rate
            start = int(out.get("start", 0))
            if start < 0:
                raise ConfigurationError(
                    f"{where}: start must be >= 0, got {start}"
                )
            out["start"] = start
            if "end" in out:
                end = int(out["end"])  # type: ignore[arg-type]
                if end <= start:
                    raise ConfigurationError(
                        f"{where}: end must be > start, got [{start}, {end})"
                    )
                out["end"] = end
        else:
            for key in ("start", "end", "min_live_fraction"):
                if key in out:
                    raise ConfigurationError(
                        f"{where}: {key!r} only applies to rate-based churn"
                    )
            events = out["events"]
            if not isinstance(events, (list, tuple)) or not events:
                raise ConfigurationError(
                    f"{where}: events must be a non-empty list of "
                    f"[round, action, node], got {events!r}"
                )
            normalized_events = []
            for event in events:
                if len(event) != 3 or event[1] not in ("leave", "join"):
                    raise ConfigurationError(
                        f"{where}: churn event must be "
                        f"[round, 'leave'|'join', node], got {event!r}"
                    )
                r, action, node = int(event[0]), event[1], int(event[2])
                if r < 0 or node < 0:
                    raise ConfigurationError(
                        f"{where}: churn event round/node must be >= 0, "
                        f"got {event!r}"
                    )
                normalized_events.append([r, action, node])
            out["events"] = normalized_events
        if "min_live_fraction" in out:
            fraction = float(out["min_live_fraction"])  # type: ignore[arg-type]
            if not 0.0 < fraction <= 1.0:
                raise ConfigurationError(
                    f"{where}: min_live_fraction must be in (0, 1], "
                    f"got {fraction}"
                )
            out["min_live_fraction"] = fraction
    if kind == "partition":
        if "heal_round" in out:
            heal = int(out["heal_round"])  # type: ignore[arg-type]
            if heal <= out["round"]:
                raise ConfigurationError(
                    f"{where}: heal_round must be after the partition "
                    f"round, got {heal} <= {out['round']}"
                )
            out["heal_round"] = heal
        if "fraction" in out:
            fraction = float(out["fraction"])  # type: ignore[arg-type]
            if not 0.0 < fraction < 1.0:
                raise ConfigurationError(
                    f"{where}: fraction must be in (0, 1), got {fraction}"
                )
            out["fraction"] = fraction
    if kind == "regional_outage":
        duration = int(out["duration"])  # type: ignore[arg-type]
        if duration < 1:
            raise ConfigurationError(
                f"{where}: duration must be >= 1, got {duration}"
            )
        out["duration"] = duration
        region_count = int(out.get("region_count", 4))
        if region_count < 2:
            raise ConfigurationError(
                f"{where}: region_count must be >= 2, got {region_count}"
            )
        out["region_count"] = region_count
        if "region" in out:
            region = int(out["region"])  # type: ignore[arg-type]
            if not 0 <= region < region_count:
                raise ConfigurationError(
                    f"{where}: region must be in [0, {region_count}), "
                    f"got {region}"
                )
            out["region"] = region
    if kind == "trace":
        path = out["path"]
        if not isinstance(path, str) or not path:
            raise ConfigurationError(
                f"{where}: path must be a non-empty string, got {path!r}"
            )
    return out


def validate_fault_spec(
    spec: Mapping[str, object], *, where: str = "fault spec"
) -> Dict[str, object]:
    """Validate ``spec`` and return a normalized copy with a ``name``.

    Raises :class:`~repro.exceptions.ConfigurationError` on unknown kinds,
    unknown/missing keys or out-of-range parameters — the campaign loader
    surfaces these before any run starts.
    """
    if not isinstance(spec, Mapping):
        raise ConfigurationError(
            f"{where}: a fault schedule must be a table/dict, got {type(spec).__name__}"
        )
    if "compose" in spec:
        unknown = sorted(set(spec) - {"compose", "name"})
        if unknown:
            raise ConfigurationError(
                f"{where}: composed schedule allows only 'compose' and 'name', "
                f"got extra key(s) {unknown}"
            )
        parts = spec["compose"]
        if not isinstance(parts, (list, tuple)) or not parts:
            raise ConfigurationError(
                f"{where}: 'compose' must be a non-empty list of fault specs"
            )
        normalized = [
            _validate_single(part, f"{where}[{i}]") for i, part in enumerate(parts)
        ]
        name = spec.get("name") or "+".join(_default_name(p) for p in normalized)
        return {"name": str(name), "compose": normalized}
    single = _validate_single(spec, where)
    single["name"] = str(spec.get("name") or _default_name(single))
    return single


def _part_seeds(seed: int, count: int) -> List[int]:
    """Independent per-part RNG seeds for one composed schedule.

    ``SeedSequence.spawn`` children are statistically independent streams
    (the fixed-stride derivation used before produced correlated ones —
    the same bug class PR 5 fixed in the campaign runner), while staying a
    pure function of ``seed``: the paired-comparison property (same seed →
    same fault timeline across algorithms) is preserved.
    """
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(1)[0]) for child in children]


def validate_fault_against_topology(
    spec: Mapping[str, object], n: int, *, where: str = "fault spec"
) -> None:
    """Range-check a validated spec's node/edge ids against a topology size.

    The campaign loader calls this per (fault, topology) pair so a
    misconfigured grid fails at validation time instead of mid-run inside
    the engine. Edge *existence* still depends on the concrete (possibly
    seed-randomized) topology instance and is checked by the engine.
    """
    normalized = validate_fault_spec(spec, where=where)
    for part in normalized.get("compose") or [normalized]:
        kind = part["kind"]
        if kind == "link_failure":
            u, v = part.get("edge", [0, 1])
            if u >= n or v >= n:
                raise ConfigurationError(
                    f"{where}: link_failure edge ({u}, {v}) is outside the "
                    f"topology (n={n})"
                )
        elif kind == "node_failure" and int(part["node"]) >= n:
            raise ConfigurationError(
                f"{where}: node_failure node {part['node']} is outside the "
                f"topology (n={n})"
            )
        elif kind == "churn" and "events" in part:
            for r, _action, node in part["events"]:
                if node >= n:
                    raise ConfigurationError(
                        f"{where}: churn event names node {node} outside "
                        f"the topology (n={n})"
                    )
        elif kind == "regional_outage" and int(part["region_count"]) > n:
            raise ConfigurationError(
                f"{where}: region_count {part['region_count']} exceeds the "
                f"topology size (n={n})"
            )


def _build_dynamic_part(
    part: Mapping[str, object],
    topology,
    part_seed: int,
    horizon: Optional[int],
    where: str,
):
    """Instantiate one dynamic part as a TopologySchedule."""
    from repro.dynamics import builders

    kind = part["kind"]
    if kind == "churn":
        if "events" in part:
            return builders.scripted_churn(
                (r, action, node) for r, action, node in part["events"]
            )
        end = part.get("end", horizon)
        if end is None:
            raise ConfigurationError(
                f"{where}: rate-based churn needs 'end' or a run horizon"
            )
        return builders.poisson_churn(
            topology,
            rate=float(part["rate"]),
            start=int(part.get("start", 0)),
            end=int(end),
            seed=part_seed,
            min_live_fraction=float(part.get("min_live_fraction", 0.5)),
        )
    if kind == "partition":
        heal = part.get("heal_round")
        return builders.partition_and_heal(
            topology,
            round=int(part["round"]),
            heal_round=int(heal) if heal is not None else None,
            fraction=float(part.get("fraction", 0.5)),
            seed=part_seed,
        )
    assert kind == "regional_outage"
    return builders.regional_outage(
        topology,
        round=int(part["round"]),
        duration=int(part["duration"]),
        region_count=int(part["region_count"]),
        region=part.get("region"),
        seed=part_seed,
    )


def build_topology_schedule(
    spec: Mapping[str, object],
    *,
    topology,
    seed: int = 0,
    horizon: Optional[int] = None,
):
    """Build only the dynamic topology schedule of a fault spec (or None).

    Uses the exact per-part seed derivation of :func:`build_faults`, so the
    object and batched campaign paths construct identical schedules for the
    same cell seed.
    """
    from repro.dynamics.schedule import TopologySchedule

    normalized = validate_fault_spec(spec)
    parts = normalized.get("compose") or [normalized]
    seeds = _part_seeds(seed, len(parts))
    deltas = []
    for index, part in enumerate(parts):
        if part["kind"] in DYNAMIC_FAULT_KINDS:
            schedule = _build_dynamic_part(
                part, topology, seeds[index], horizon, f"fault {normalized['name']!r}"
            )
            deltas.extend(schedule.deltas)
        elif part["kind"] == "trace":
            from repro.dynamics.trace import load_trace, replay_from_trace

            replay = replay_from_trace(load_trace(str(part["path"])))
            deltas.extend(replay.topology_schedule.deltas)
    return TopologySchedule(deltas) if deltas else None


def build_faults(
    spec: Mapping[str, object],
    *,
    seed: int = 0,
    topology=None,
    horizon: Optional[int] = None,
) -> BuiltFaults:
    """Instantiate a (validated or raw) fault-schedule spec for one run.

    Dynamic kinds (``churn``/``partition``/``regional_outage``) need the
    run's ``topology`` (the universe graph the schedule perturbs); rate-
    based churn without an explicit ``end`` additionally needs ``horizon``
    (the run's round budget).
    """
    normalized = validate_fault_spec(spec)
    parts = normalized.get("compose") or [normalized]
    seeds = _part_seeds(seed, len(parts))
    message_faults: List[MessageFault] = []
    link_failures: List[LinkFailure] = []
    node_failures: List[NodeFailure] = []
    observers: List[object] = []
    dynamic_deltas: List[object] = []
    for index, part in enumerate(parts):
        kind = part["kind"]
        part_seed = seeds[index]
        if kind == "none":
            continue
        elif kind in DYNAMIC_FAULT_KINDS:
            if topology is None:
                raise ConfigurationError(
                    f"fault kind {kind!r} needs a topology at build time "
                    "(pass build_faults(..., topology=...))"
                )
            schedule = _build_dynamic_part(
                part,
                topology,
                part_seed,
                horizon,
                f"fault {normalized['name']!r}",
            )
            dynamic_deltas.extend(schedule.deltas)
        elif kind == "trace":
            from repro.dynamics.trace import load_trace, replay_from_trace

            replay = replay_from_trace(load_trace(str(part["path"])))
            if replay.message_fault is not None:
                message_faults.append(replay.message_fault)
            link_failures.extend(replay.fault_plan.link_failures)
            node_failures.extend(replay.fault_plan.node_failures)
            dynamic_deltas.extend(replay.topology_schedule.deltas)
        elif kind == "message_loss":
            message_faults.append(IidMessageLoss(part["rate"], seed=part_seed))
        elif kind == "burst_loss":
            message_faults.append(
                BurstMessageLoss(
                    float(part["p_gb"]), float(part["p_bg"]), seed=part_seed
                )
            )
        elif kind == "bit_flip":
            message_faults.append(
                BitFlipFault(
                    part["rate"],
                    seed=part_seed,
                    corrupt_control=bool(part.get("corrupt_control", False)),
                    max_bit=int(part.get("max_bit", 63)),
                )
            )
        elif kind == "link_failure":
            u, v = part["edge"]
            link_failures.append(
                LinkFailure(
                    round=int(part["round"]),
                    u=u,
                    v=v,
                    detection_delay=int(part.get("detection_delay", 0)),
                )
            )
        elif kind == "node_failure":
            node_failures.append(
                NodeFailure(
                    round=int(part["round"]),
                    node=int(part["node"]),
                    detection_delay=int(part.get("detection_delay", 0)),
                )
            )
        elif kind == "state_flip":
            observers.append(
                StateBitFlipInjector(
                    part["rounds"],
                    seed=part_seed,
                    max_bit=int(part.get("max_bit", 55)),
                )
            )
    message_fault: Optional[MessageFault]
    if not message_faults:
        message_fault = None
    elif len(message_faults) == 1:
        message_fault = message_faults[0]
    else:
        message_fault = CompositeFault(message_faults)
    plan = FaultPlan(link_failures=link_failures, node_failures=node_failures)
    topology_schedule = None
    dynamics_meta = None
    if dynamic_deltas:
        from repro.dynamics.schedule import TopologySchedule

        topology_schedule = TopologySchedule(dynamic_deltas)
        dynamics_meta = topology_schedule.meta()
    handle_rounds = [lf.handle_round for lf in link_failures]
    handle_rounds += [nf.handle_round for nf in node_failures]
    if handle_rounds:
        # The earliest permanent-failure handling round (the reference
        # point of the paper's recovery analysis).
        event_round: Optional[int] = min(handle_rounds)
    elif topology_schedule is not None:
        # Pure dynamics: recovery is measured from the final delta (the
        # heal/restore/rejoin instant after which the network is whole).
        event_round = topology_schedule.last_round
    else:
        event_round = None
    return BuiltFaults(
        name=str(normalized["name"]),
        message_fault=message_fault,
        fault_plan=plan,
        observers=observers,
        event_round=event_round,
        topology_schedule=topology_schedule,
        dynamics_meta=dynamics_meta,
    )
