"""Fault injection: soft errors (loss, bit flips) and permanent failures."""

from repro.faults.base import CompositeFault, MessageFault, NoFault, WindowedFault
from repro.faults.bit_flip import BitFlipFault, corrupt_payload
from repro.faults.events import (
    FaultPlan,
    LinkFailure,
    NodeFailure,
    single_link_failure,
)
from repro.faults.message_loss import BurstMessageLoss, IidMessageLoss
from repro.faults.specs import (
    DYNAMIC_FAULT_KINDS,
    FAULT_KINDS,
    BuiltFaults,
    build_faults,
    build_topology_schedule,
    validate_fault_against_topology,
    validate_fault_spec,
)
from repro.faults.state_flip import StateBitFlipInjector

__all__ = [
    "MessageFault",
    "CompositeFault",
    "NoFault",
    "WindowedFault",
    "IidMessageLoss",
    "BurstMessageLoss",
    "BitFlipFault",
    "corrupt_payload",
    "FaultPlan",
    "LinkFailure",
    "NodeFailure",
    "single_link_failure",
    "StateBitFlipInjector",
    "DYNAMIC_FAULT_KINDS",
    "FAULT_KINDS",
    "BuiltFaults",
    "build_faults",
    "build_topology_schedule",
    "validate_fault_against_topology",
    "validate_fault_spec",
]
