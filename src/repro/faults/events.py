"""Timed permanent failures: broken links and fail-stop nodes.

A :class:`FaultPlan` is a declarative timeline the engine consults each
round. Each permanent failure has two instants:

- ``fail_round`` — the component physically dies: messages on the link (or
  to/from the node) silently vanish from then on;
- handling at ``fail_round + detection_delay`` — the failure detector
  reports it and the engine calls ``on_link_failed`` on the survivors, which
  perform the paper's algorithmic exclusion.

The paper's Figs. 4/7 experiments use a single permanent link failure whose
"failure handling takes place after 75 (resp. 175) iterations"; with the
default ``detection_delay=0`` the fail and handling rounds coincide, which
reproduces that setup.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterable, List, Set, Tuple

from repro.exceptions import ConfigurationError

Edge = Tuple[int, int]


def _canonical(u: int, v: int) -> Edge:
    if u == v:
        raise ConfigurationError(f"self-edge ({u}, {v}) in fault plan")
    return (u, v) if u < v else (v, u)


@dataclasses.dataclass(frozen=True)
class LinkFailure:
    """Permanent failure of the link between ``u`` and ``v``."""

    round: int
    u: int
    v: int
    detection_delay: int = 0

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ConfigurationError(f"fail round must be >= 0, got {self.round}")
        if self.detection_delay < 0:
            raise ConfigurationError(
                f"detection delay must be >= 0, got {self.detection_delay}"
            )

    @property
    def edge(self) -> Edge:
        return _canonical(self.u, self.v)

    @property
    def handle_round(self) -> int:
        return self.round + self.detection_delay


@dataclasses.dataclass(frozen=True)
class NodeFailure:
    """Fail-stop failure of a node: it stops sending, receiving, computing.

    Interpreted (as in the paper, Sec. II-C) as the permanent failure of all
    the node's links; every surviving neighbor excludes its link at the
    handling round.
    """

    round: int
    node: int
    detection_delay: int = 0

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ConfigurationError(f"fail round must be >= 0, got {self.round}")
        if self.detection_delay < 0:
            raise ConfigurationError(
                f"detection delay must be >= 0, got {self.detection_delay}"
            )

    @property
    def handle_round(self) -> int:
        return self.round + self.detection_delay


class FaultPlan:
    """Immutable timeline of permanent failures, queried by the engine."""

    def __init__(
        self,
        *,
        link_failures: Iterable[LinkFailure] = (),
        node_failures: Iterable[NodeFailure] = (),
    ) -> None:
        self._link_failures: Tuple[LinkFailure, ...] = tuple(link_failures)
        self._node_failures: Tuple[NodeFailure, ...] = tuple(node_failures)
        seen_edges: Set[Edge] = set()
        for lf in self._link_failures:
            if lf.edge in seen_edges:
                raise ConfigurationError(f"duplicate link failure on {lf.edge}")
            seen_edges.add(lf.edge)
        seen_nodes: Set[int] = set()
        for nf in self._node_failures:
            if nf.node in seen_nodes:
                raise ConfigurationError(f"duplicate node failure on {nf.node}")
            seen_nodes.add(nf.node)

    @property
    def link_failures(self) -> Tuple[LinkFailure, ...]:
        return self._link_failures

    @property
    def node_failures(self) -> Tuple[NodeFailure, ...]:
        return self._node_failures

    def is_empty(self) -> bool:
        return not self._link_failures and not self._node_failures

    # ------------------------------------------------------------------
    # Round queries
    # ------------------------------------------------------------------
    def dead_edges_by(self, round_index: int) -> FrozenSet[Edge]:
        """Edges physically dead at ``round_index`` (inclusive of this round)."""
        dead: Set[Edge] = set()
        for lf in self._link_failures:
            if lf.round <= round_index:
                dead.add(lf.edge)
        return frozenset(dead)

    def dead_nodes_by(self, round_index: int) -> FrozenSet[int]:
        return frozenset(
            nf.node for nf in self._node_failures if nf.round <= round_index
        )

    def link_handlings_at(self, round_index: int) -> List[LinkFailure]:
        return [
            lf for lf in self._link_failures if lf.handle_round == round_index
        ]

    def node_handlings_at(self, round_index: int) -> List[NodeFailure]:
        return [
            nf for nf in self._node_failures if nf.handle_round == round_index
        ]

    def last_event_round(self) -> int:
        """Latest handling round in the plan (-1 when empty)."""
        rounds = [lf.handle_round for lf in self._link_failures]
        rounds += [nf.handle_round for nf in self._node_failures]
        return max(rounds) if rounds else -1


def single_link_failure(round_index: int, u: int, v: int) -> FaultPlan:
    """The Figs. 4/7 scenario: one permanent link failure, handled on the spot."""
    return FaultPlan(link_failures=[LinkFailure(round=round_index, u=u, v=v)])
