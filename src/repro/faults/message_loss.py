"""Message-loss fault models.

Plain i.i.d. loss (every message independently dropped with probability
``p``) plus a two-state Gilbert–Elliott burst-loss model for correlated
losses, which stresses the flow algorithms' self-healing harder: during a
burst an entire edge goes quiet for many consecutive rounds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.faults.base import MessageFault
from repro.util.validation import check_probability

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.simulation.messages import Message


class IidMessageLoss(MessageFault):
    """Drop each message independently with probability ``p``."""

    def __init__(self, p: float, *, seed: int = 0) -> None:
        self._p = check_probability(p, "p")
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._dropped = 0
        self._seen = 0

    def apply(self, message: "Message") -> Optional["Message"]:
        self._seen += 1
        if self._p > 0.0 and self._rng.random() < self._p:
            self._dropped += 1
            return None
        return message

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        self._dropped = 0
        self._seen = 0

    @property
    def dropped(self) -> int:
        return self._dropped

    @property
    def seen(self) -> int:
        return self._seen


class BurstMessageLoss(MessageFault):
    """Gilbert–Elliott burst loss, tracked per directed edge.

    Each edge is in a GOOD or BAD state; messages are dropped in BAD.
    ``p_gb`` is the per-message GOOD→BAD transition probability and ``p_bg``
    the BAD→GOOD recovery probability (mean burst length ``1/p_bg``).
    """

    def __init__(self, p_gb: float, p_bg: float, *, seed: int = 0) -> None:
        self._p_gb = check_probability(p_gb, "p_gb")
        self._p_bg = check_probability(p_bg, "p_bg")
        if self._p_bg == 0.0 and self._p_gb > 0.0:
            raise ValueError("p_bg=0 with p_gb>0 makes every edge fail permanently")
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._bad: Dict[Tuple[int, int], bool] = {}
        self._dropped = 0

    def apply(self, message: "Message") -> Optional["Message"]:
        key = (message.sender, message.receiver)
        bad = self._bad.get(key, False)
        if bad:
            if self._rng.random() < self._p_bg:
                bad = False
        else:
            if self._rng.random() < self._p_gb:
                bad = True
        self._bad[key] = bad
        if bad:
            self._dropped += 1
            return None
        return message

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        self._bad.clear()
        self._dropped = 0

    @property
    def dropped(self) -> int:
        return self._dropped
