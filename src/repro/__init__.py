"""repro — reproduction of Niederbrucker, Straková & Gansterer (SC 2012):
*Improving Fault Tolerance and Accuracy of a Distributed Reduction
Algorithm*.

The package implements the paper's subject matter end to end:

- gossip reduction protocols: push-sum, push-flow (PF), and the paper's
  contribution, **push-cancel-flow (PCF)** (:mod:`repro.algorithms`);
- a deterministic synchronous round simulator plus an asynchronous
  Poisson-clock engine (:mod:`repro.simulation`);
- fault injection — message loss, bit flips, permanent link and node
  failures (:mod:`repro.faults`);
- the evaluation topologies and more (:mod:`repro.topology`);
- vectorized NumPy engines for 2^15-node sweeps (:mod:`repro.vectorized`);
- a fully distributed QR factorization (dmGS) built on the reductions
  (:mod:`repro.linalg`);
- the experiment harness regenerating every figure of the paper's
  evaluation (:mod:`repro.experiments`).

Quickstart::

    import numpy as np
    from repro import run_reduction, AggregateKind, topology

    topo = topology.hypercube(6)             # 64 nodes
    data = np.random.default_rng(0).uniform(size=topo.n)
    result = run_reduction(topo, data, kind=AggregateKind.AVERAGE,
                           algorithm="push_cancel_flow", epsilon=1e-15)
    print(result.max_error, result.rounds)
"""

from repro import (
    algorithms,
    analysis,
    faults,
    linalg,
    metrics,
    simulation,
    topology,
    vectorized,
)
from repro.algorithms import AggregateKind, MassPair
from repro.exceptions import ReproError
from repro.reduction import ReductionResult, default_round_cap, run_reduction

__version__ = "1.0.0"

__all__ = [
    "run_reduction",
    "ReductionResult",
    "default_round_cap",
    "AggregateKind",
    "MassPair",
    "ReproError",
    "algorithms",
    "analysis",
    "simulation",
    "topology",
    "faults",
    "metrics",
    "vectorized",
    "linalg",
    "__version__",
]
