"""Convergence analysis of recorded error series.

Quantifies the two phenomena the paper's failure experiments visualize:

- *convergence round*: when a run first (and lastingly) reaches a target
  accuracy;
- *fallback*: how many orders of magnitude a failure throws the error back,
  and how many rounds of progress that re-costs (Fig. 4's "fall-back almost
  to the beginning" vs Fig. 7's "no fall-back").
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence


def convergence_round(
    errors: Sequence[float], threshold: float, *, sustained: bool = True
) -> Optional[int]:
    """First round from which the error stays at/below ``threshold``.

    With ``sustained=False``, the first round that merely touches the
    threshold. Returns ``None`` if never reached.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    last_bad = -1
    touched = None
    for t, err in enumerate(errors):
        if err <= threshold:
            if touched is None:
                touched = t
        else:
            last_bad = t
    if touched is None:
        return None
    if not sustained:
        return touched
    if last_bad == len(errors) - 1:
        return None
    return last_bad + 1


@dataclasses.dataclass(frozen=True)
class FallbackReport:
    """Quantifies the error jump caused by one failure-handling event."""

    event_round: int
    error_before: float
    error_after: float
    initial_error: float
    recovery_rounds: Optional[int]

    @property
    def jump_factor(self) -> float:
        """Multiplicative error increase caused by the event (>= 1 is a jump)."""
        if self.error_before == 0.0:
            return math.inf if self.error_after > 0 else 1.0
        return self.error_after / self.error_before

    @property
    def restart_fraction(self) -> float:
        """How far back (0 = no fallback, 1 = full restart) in log-error terms.

        Computed as the fraction of the already-achieved log-error progress
        that the event undid: 0 when the error did not move, 1 when it
        returned all the way to the initial error level.
        """
        if self.error_after <= self.error_before:
            return 0.0
        if self.initial_error <= self.error_before:
            return 1.0
        progress = math.log(self.initial_error) - math.log(self.error_before)
        undone = math.log(min(self.error_after, self.initial_error)) - math.log(
            self.error_before
        )
        return min(1.0, undone / progress)


def fallback_report(
    errors: Sequence[float],
    event_round: int,
    *,
    recovery_threshold: Optional[float] = None,
) -> FallbackReport:
    """Analyze the error series around a failure handled at ``event_round``.

    ``errors[t]`` is the error *after* round ``t``; the pre-event error is
    read one round before the event, the post-event error right after it.
    ``recovery_rounds`` is how many extra rounds the run needed to get back
    to its pre-event error level (or ``recovery_threshold`` if given).
    """
    if not 0 <= event_round < len(errors):
        raise ValueError(
            f"event_round {event_round} outside recorded range "
            f"[0, {len(errors) - 1}]"
        )
    error_before = errors[event_round - 1] if event_round > 0 else errors[0]
    error_after = errors[event_round]
    target = recovery_threshold if recovery_threshold is not None else error_before
    recovery: Optional[int] = None
    for t in range(event_round, len(errors)):
        if errors[t] <= target:
            recovery = t - event_round
            break
    return FallbackReport(
        event_round=event_round,
        error_before=error_before,
        error_after=error_after,
        initial_error=errors[0],
        recovery_rounds=recovery,
    )


def rounds_to_accuracy(
    errors: Sequence[float], thresholds: Sequence[float]
) -> dict:
    """Map each threshold to the first round reaching it (None if never)."""
    return {
        thr: convergence_round(errors, thr, sustained=False) for thr in thresholds
    }
