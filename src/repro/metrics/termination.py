"""Oracle-free (local) termination detection.

The experiments stop reductions with a global error oracle (the paper's
"prescribed target accuracy"), which a real deployment does not have. This
module provides the practical alternative: each node watches only its *own*
estimate and declares itself stable once the estimate has stopped moving —
relatively — for a window of rounds; the run terminates when every live
node is stable. The window guards against the false calm of a node that
merely has not gossiped recently.

This is a heuristic, as any local detector must be (a node cannot
distinguish "converged" from "partitioned away from the action"); the
tests quantify how close it lands to the oracle stopping point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.simulation.observers import Observer

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.engine import SynchronousEngine


class LocalTermination(Observer):
    """Per-node estimate-stability detector, attachable to an engine.

    Parameters
    ----------
    rel_tolerance:
        A node is "moving" while its estimate changes by more than this
        relative amount between consecutive rounds.
    window:
        Consecutive quiet rounds a node needs before counting as stable.
    """

    def __init__(self, *, rel_tolerance: float = 1e-14, window: int = 30) -> None:
        if not 0.0 < rel_tolerance < 1.0:
            raise ConfigurationError(
                f"rel_tolerance must be in (0, 1), got {rel_tolerance}"
            )
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self._tol = rel_tolerance
        self._window = window
        self._previous: Dict[int, np.ndarray] = {}
        self._quiet_rounds: Dict[int, int] = {}
        self.stable_since: Optional[int] = None

    # ------------------------------------------------------------------
    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        all_stable = True
        for node in engine.live_nodes():
            estimate = np.atleast_1d(
                np.asarray(engine.algorithms[node].estimate(), dtype=np.float64)
            )
            previous = self._previous.get(node)
            self._previous[node] = estimate
            if previous is None or previous.shape != estimate.shape:
                self._quiet_rounds[node] = 0
                all_stable = False
                continue
            if not np.all(np.isfinite(estimate)):
                self._quiet_rounds[node] = 0
                all_stable = False
                continue
            scale = float(np.max(np.abs(estimate)))
            if scale == 0.0:
                scale = 1.0
            change = float(np.max(np.abs(estimate - previous))) / scale
            if change <= self._tol:
                self._quiet_rounds[node] = self._quiet_rounds.get(node, 0) + 1
            else:
                self._quiet_rounds[node] = 0
            if self._quiet_rounds[node] < self._window:
                all_stable = False
        if all_stable:
            if self.stable_since is None:
                self.stable_since = round_index
        else:
            self.stable_since = None

    # ------------------------------------------------------------------
    @property
    def all_stable(self) -> bool:
        """True when every live node has been quiet for the full window."""
        return self.stable_since is not None

    def stable_fraction(self, engine: "SynchronousEngine") -> float:
        """Share of live nodes currently past the quiet window."""
        live = engine.live_nodes()
        if not live:
            return 1.0
        stable = sum(
            1 for node in live if self._quiet_rounds.get(node, 0) >= self._window
        )
        return stable / len(live)

    def stop_condition(self) -> Callable[["SynchronousEngine", int], bool]:
        """A ``stop_when`` callable for :meth:`SynchronousEngine.run`."""

        def stop(engine: "SynchronousEngine", round_index: int) -> bool:
            return self.all_stable

        return stop
