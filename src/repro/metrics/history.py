"""Per-round error recording — the observer behind the Figs. 4/7 curves."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.algorithms.state import Value
from repro.metrics.errors import max_local_error, median_local_error
from repro.simulation.observers import Observer

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.engine import SynchronousEngine


class ErrorHistory(Observer):
    """Records max/median local relative error after every round.

    Attach to a :class:`~repro.simulation.engine.SynchronousEngine`; after
    the run, ``max_errors[t]`` / ``median_errors[t]`` give the error state
    after round ``t`` — exactly the series plotted in Figs. 4 and 7.
    """

    def __init__(self, truth: Value, *, record_flows: bool = False) -> None:
        self._truth = truth
        self.max_errors: List[float] = []
        self.median_errors: List[float] = []
        self.max_flow_magnitudes: List[float] = []
        self.link_handlings: List[int] = []
        self._record_flows = record_flows

    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        estimates = engine.estimates()
        self.max_errors.append(max_local_error(estimates, self._truth))
        self.median_errors.append(median_local_error(estimates, self._truth))
        if self._record_flows:
            magnitudes = [
                getattr(engine.algorithms[i], "max_flow_magnitude", lambda: 0.0)()
                for i in engine.live_nodes()
            ]
            self.max_flow_magnitudes.append(max(magnitudes) if magnitudes else 0.0)

    def on_link_handled(
        self, engine: "SynchronousEngine", round_index: int, u: int, v: int
    ) -> None:
        self.link_handlings.append(round_index)

    @property
    def rounds(self) -> int:
        return len(self.max_errors)

    def final_max_error(self) -> float:
        if not self.max_errors:
            raise ValueError("no rounds recorded")
        return self.max_errors[-1]

    def first_round_below(self, threshold: float) -> Optional[int]:
        """First round whose max error is <= threshold (None if never)."""
        for t, err in enumerate(self.max_errors):
            if err <= threshold:
                return t
        return None
