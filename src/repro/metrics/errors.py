"""Local-error metrics against the exact aggregate oracle.

The paper's accuracy criterion (Sec. II-B): the approximations ``r~_i``
should satisfy ``max_i |(r~_i - r)/r| <= c(n) * eps_mach`` for the exact
result ``r``. These helpers compute the max/median local relative error
over all (live) nodes — the quantities plotted in Figs. 3, 4, 6 and 7.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.algorithms.aggregates import relative_error
from repro.algorithms.state import Value
from repro.util.stats import median as _median


def local_errors(estimates: Sequence[Value], truth: Value) -> List[float]:
    """Per-node relative errors (``inf`` for non-finite estimates)."""
    return [relative_error(est, truth) for est in estimates]


def max_local_error(estimates: Sequence[Value], truth: Value) -> float:
    """The paper's headline metric: worst node's relative error."""
    errors = local_errors(estimates, truth)
    if not errors:
        raise ValueError("no estimates to evaluate")
    return max(errors)


def median_local_error(estimates: Sequence[Value], truth: Value) -> float:
    """Median node relative error (the dashed curves of Figs. 4/7)."""
    errors = local_errors(estimates, truth)
    if not errors:
        raise ValueError("no estimates to evaluate")
    finite = [e for e in errors if np.isfinite(e)]
    if len(finite) < len(errors):
        # Non-finite estimates rank above everything; treat them as +inf in
        # the order statistics rather than discarding them.
        errors = [e if np.isfinite(e) else float("inf") for e in errors]
        errors.sort()
        return errors[len(errors) // 2]
    return _median(errors)


def error_floor(error: float, *, floor: float = 1e-17) -> float:
    """Clamp an exact-zero error to a plot-friendly floor.

    Log-scale reporting of error series needs a positive floor; 1e-17 sits
    below machine epsilon so it never masks a real value.
    """
    return max(error, floor)
