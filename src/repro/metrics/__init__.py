"""Error metrics, per-round recording, and convergence/fallback analysis."""

from repro.metrics.convergence import (
    FallbackReport,
    convergence_round,
    fallback_report,
    rounds_to_accuracy,
)
from repro.metrics.errors import (
    error_floor,
    local_errors,
    max_local_error,
    median_local_error,
)
from repro.metrics.history import ErrorHistory
from repro.metrics.termination import LocalTermination

__all__ = [
    "local_errors",
    "max_local_error",
    "median_local_error",
    "error_floor",
    "ErrorHistory",
    "LocalTermination",
    "convergence_round",
    "fallback_report",
    "FallbackReport",
    "rounds_to_accuracy",
]
