"""High-level one-call API for running a distributed reduction.

:func:`run_reduction` wires together a topology, an algorithm, a schedule,
optional fault injection and the error oracle, runs the gossip computation
to a target accuracy (or to its achievable plateau), and returns everything
an application or experiment needs. This is the entry point the examples
and the distributed QR build on.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

import numpy as np

from repro.algorithms.aggregates import (
    AggregateKind,
    initial_mass_pairs,
    true_aggregate,
)
from repro.algorithms.registry import ALGORITHMS, instantiate
from repro.algorithms.state import Value
from repro.exceptions import ConfigurationError
from repro.faults.base import MessageFault
from repro.faults.events import FaultPlan
from repro.metrics.history import ErrorHistory
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import Schedule, UniformGossipSchedule
from repro.topology.base import Topology
from repro.vectorized.parity import vector_engine_for

_VECTOR_CAPABLE = (
    "push_sum",
    "push_flow",
    "push_cancel_flow",
    "push_cancel_flow_hardened",
)


def is_vector_capable(algorithm: str) -> bool:
    """Whether ``backend="auto"`` may route this algorithm to the
    vectorized engine (given no schedule/fault/history overrides)."""
    return algorithm in _VECTOR_CAPABLE


def default_round_cap(n: int, epsilon: float = 1e-15) -> int:
    """A generous iteration budget: ``O(log^2 n + log 1/eps)`` rounds.

    The paper caps each reduction's iterations ("a maximal number of
    iterations per reduction was set"); the quadratic log term covers
    slower-mixing regular topologies (tori) at scale, while well-connected
    networks stop much earlier via the accuracy oracle.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    log_n = math.ceil(math.log2(max(n, 2)))
    log_eps = math.ceil(math.log10(1.0 / min(max(epsilon, 1e-300), 0.5)))
    return max(300, 12 * log_n * log_n + 10 * log_eps)


@dataclasses.dataclass
class ReductionResult:
    """Outcome of one distributed reduction."""

    estimates: np.ndarray  # (n,) or (n, d) per-node estimates
    truth: Value  # exact aggregate (oracle)
    max_error: float  # final max local relative error
    rounds: int  # rounds executed
    converged: bool  # reached the epsilon target
    messages_sent: int
    messages_delivered: int
    algorithm: str
    backend: str
    history: Optional[ErrorHistory] = None
    best_error: float = float("inf")  # lowest max-error touched during the run
    best_round: int = -1  # round at which best_error was first reached

    def estimate_of(self, node: int) -> Value:
        est = self.estimates[node]
        if np.ndim(est) == 0:
            return float(est)
        return np.asarray(est)


def run_reduction(
    topology: Topology,
    data: Sequence[Value],
    *,
    kind: AggregateKind = AggregateKind.AVERAGE,
    algorithm: str = "push_cancel_flow",
    epsilon: float = 1e-15,
    max_rounds: Optional[int] = None,
    schedule_seed: int = 0,
    schedule: Optional[Schedule] = None,
    message_fault: Optional[MessageFault] = None,
    fault_plan: Optional[FaultPlan] = None,
    record_history: bool = False,
    backend: str = "auto",
    stall_rounds: Optional[int] = None,
    root: int = 0,
    error_scale: Optional[float] = None,
) -> ReductionResult:
    """Run one all-to-all reduction of ``data`` over ``topology``.

    Parameters
    ----------
    kind:
        Which aggregate (:class:`AggregateKind`) the reduction computes.
    algorithm:
        One of :data:`repro.algorithms.ALGORITHMS`.
    epsilon:
        Target max local relative accuracy; the run stops once every node is
        within ``epsilon`` of the exact aggregate (oracle termination, as in
        the paper's experiments).
    max_rounds:
        Iteration cap; defaults to :func:`default_round_cap`.
    backend:
        ``"object"`` (reference engine), ``"vector"`` (NumPy engine), or
        ``"auto"`` — vectorized when the configuration allows it (no custom
        schedule, no fault plan, no per-message faults, vector-capable
        algorithm), object engine otherwise.
    stall_rounds:
        If set, additionally stop once the max error has not improved for
        this many consecutive rounds — measuring an algorithm's *achievable*
        accuracy plateau (the quantity plotted in Figs. 3/6) without a
        hand-tuned cap.
    root:
        The node carrying the unit weight for SUM/COUNT aggregates.
    error_scale:
        Optional custom normalization for the accuracy oracle: when given,
        errors are ``max |est - truth| / error_scale`` instead of relative
        to the truth's own magnitude. Callers whose true aggregate can be
        arbitrarily tiny compared to the data (e.g. near-orthogonal dot
        products in dmGS) pass the data scale here, making "epsilon
        accuracy" mean *epsilon relative to the problem scale* — otherwise
        the target would be unreachable in floating point.
    """
    if len(data) != topology.n:
        raise ConfigurationError(
            f"expected {topology.n} data items, got {len(data)}"
        )
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    cap = max_rounds if max_rounds is not None else default_round_cap(
        topology.n, epsilon
    )

    truth = true_aggregate(kind, list(data))
    initial = initial_mass_pairs(kind, list(data), root=root)

    use_vector = False
    if backend == "vector":
        use_vector = True
    elif backend == "auto":
        use_vector = (
            algorithm in _VECTOR_CAPABLE
            and schedule is None
            and message_fault is None
            and (fault_plan is None or fault_plan.is_empty())
            and not record_history
        )
    elif backend != "object":
        raise ConfigurationError(
            f"backend must be 'auto', 'object' or 'vector', got {backend!r}"
        )

    if use_vector:
        return _run_vector(
            topology,
            initial,
            truth,
            algorithm=algorithm,
            epsilon=epsilon,
            cap=cap,
            seed=schedule_seed,
            stall_rounds=stall_rounds,
            error_scale=error_scale,
        )
    return _run_object(
        topology,
        initial,
        truth,
        algorithm=algorithm,
        epsilon=epsilon,
        cap=cap,
        seed=schedule_seed,
        schedule=schedule,
        message_fault=message_fault,
        fault_plan=fault_plan,
        record_history=record_history,
        stall_rounds=stall_rounds,
        error_scale=error_scale,
    )


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
def _run_object(
    topology: Topology,
    initial,
    truth,
    *,
    algorithm: str,
    epsilon: float,
    cap: int,
    seed: int,
    schedule: Optional[Schedule],
    message_fault: Optional[MessageFault],
    fault_plan: Optional[FaultPlan],
    record_history: bool,
    stall_rounds: Optional[int],
    error_scale: Optional[float] = None,
) -> ReductionResult:
    algs = instantiate(algorithm, topology, initial)
    sched = schedule or UniformGossipSchedule(topology.n, seed)
    history = ErrorHistory(truth) if record_history else None
    observers = [history] if history is not None else []
    engine = SynchronousEngine(
        topology,
        algs,
        sched,
        message_fault=message_fault,
        fault_plan=fault_plan,
        observers=observers,
    )

    tracker = _StallTracker(stall_rounds)
    last_event = fault_plan.last_event_round() if fault_plan else -1
    error_of = _make_error_fn(truth, error_scale)
    best = _BestTracker()

    def stop(eng: SynchronousEngine, round_index: int) -> bool:
        err = error_of(eng.estimates())
        best.observe(err, round_index)
        # Never stop before all planned permanent failures have been
        # handled — the experiments need the post-failure behaviour.
        if round_index < last_event:
            return False
        return err <= epsilon or tracker.stalled(err)

    rounds = engine.run(cap, stop_when=stop)
    estimates = np.stack(
        [np.atleast_1d(np.asarray(algs[i].estimate())) for i in engine.live_nodes()]
    )
    if estimates.shape[1] == 1:
        estimates = estimates[:, 0]
    final_error = error_of(engine.estimates())
    best.observe(final_error, rounds - 1)
    return ReductionResult(
        estimates=estimates,
        truth=truth,
        max_error=final_error,
        rounds=rounds,
        converged=final_error <= epsilon,
        messages_sent=engine.messages_sent,
        messages_delivered=engine.messages_delivered,
        algorithm=algorithm,
        backend="object",
        history=history,
        best_error=best.error,
        best_round=best.round,
    )


def _run_vector(
    topology: Topology,
    initial,
    truth,
    *,
    algorithm: str,
    epsilon: float,
    cap: int,
    seed: int,
    stall_rounds: Optional[int],
    error_scale: Optional[float] = None,
) -> ReductionResult:
    values = np.stack([np.atleast_1d(np.asarray(p.value)) for p in initial])
    weights = np.array([p.weight for p in initial])
    cls = vector_engine_for(algorithm)
    engine = cls(topology, values, weights, seed=seed)
    truth_vec = np.atleast_1d(np.asarray(truth, dtype=np.float64))

    tracker = _StallTracker(stall_rounds)

    # Max-norm relative error, matching aggregates.relative_error; an
    # explicit error_scale overrides the truth-magnitude normalization.
    if error_scale is not None:
        scale = float(error_scale)
    else:
        scale = float(np.max(np.abs(truth_vec)))
    if scale <= 0.0:
        scale = 1.0

    def vec_error(eng) -> float:
        est = eng.estimates()  # (n, d)
        if not np.all(np.isfinite(est)):
            return float("inf")
        return float(np.max(np.abs(est - truth_vec[None, :])) / scale)

    best = _BestTracker()

    def stop(eng, round_index: int) -> bool:
        err = vec_error(eng)
        best.observe(err, round_index)
        return err <= epsilon or tracker.stalled(err)

    rounds = engine.run(cap, stop_when=stop)
    estimates = engine.estimates()
    if estimates.shape[1] == 1:
        estimates = estimates[:, 0]
    final_error = vec_error(engine)
    best.observe(final_error, rounds - 1)
    return ReductionResult(
        estimates=estimates,
        truth=truth,
        max_error=final_error,
        rounds=rounds,
        converged=final_error <= epsilon,
        messages_sent=engine.messages_sent,
        messages_delivered=engine.messages_delivered,
        algorithm=algorithm,
        backend="vector",
        history=None,
        best_error=best.error,
        best_round=best.round,
    )


class _BestTracker:
    """Remembers the lowest max-error observed and when it occurred.

    Gossip error curves fluctuate (transient per-node perturbations heal
    over subsequent rounds), so the paper's "achievable accuracy" — the
    level at which an oracle-terminated run would stop — is the running
    minimum, not the value at an arbitrary final round.
    """

    def __init__(self) -> None:
        self.error = float("inf")
        self.round = -1

    def observe(self, error: float, round_index: int) -> None:
        if error < self.error:
            self.error = error
            self.round = round_index


def _make_error_fn(truth, error_scale: Optional[float]):
    """Max-norm error function over a list of per-node estimates."""
    truth_vec = np.atleast_1d(np.asarray(truth, dtype=np.float64))
    if error_scale is not None:
        scale = float(error_scale)
    else:
        scale = float(np.max(np.abs(truth_vec)))
    if scale <= 0.0:
        scale = 1.0

    def error_of(estimates) -> float:
        worst = 0.0
        for est in estimates:
            arr = np.atleast_1d(np.asarray(est, dtype=np.float64))
            if not np.all(np.isfinite(arr)):
                return float("inf")
            worst = max(worst, float(np.max(np.abs(arr - truth_vec))))
        return worst / scale

    return error_of


class _StallTracker:
    """Detects an error plateau: no improvement for ``window`` rounds."""

    def __init__(self, window: Optional[int]) -> None:
        self._window = window
        self._best = float("inf")
        self._since_improvement = 0

    def stalled(self, error: float) -> bool:
        if self._window is None:
            return False
        if error < self._best:
            self._best = error
            self._since_improvement = 0
            return False
        self._since_improvement += 1
        return self._since_improvement >= self._window
