"""Synchronous client facade: the daemon as a drop-in ReductionService.

:class:`DaemonClient` exposes the exact surface ``dmgs`` and
``distributed_qr`` consume — ``.topology``, ``.algorithm``,
``.epsilon``, ``.stats`` and ``.all_reduce_sum`` — but executes every
reduction as a daemon job, so a Gram-Schmidt sweep transparently
multiplexes with other tenants' work. Schedule-seed accounting mirrors
:class:`~repro.linalg.ReductionService` exactly (master seed + call
index, advanced only on success), which is what makes the client's
results bit-identical to the in-process service's.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.linalg.reduction_service import ReductionStats
from repro.topology.base import Topology


class DaemonClient:
    """One tenant's synchronous handle on a :class:`ReductionDaemon`."""

    def __init__(
        self,
        daemon,
        topology: Topology,
        *,
        tenant: str = "default",
        algorithm: str = "push_cancel_flow",
        epsilon: float = 1e-15,
        max_rounds: Optional[int] = None,
        seed: int = 0,
        backend: str = "auto",
        stall_rounds: Optional[int] = 60,
        aggregate: str = "average",
        timeout: Optional[float] = None,
        deadline_s: Optional[float] = None,
    ) -> None:
        self._daemon = daemon
        self._topology = topology
        self._tenant = tenant
        self._algorithm = algorithm
        self._epsilon = epsilon
        self._max_rounds = max_rounds
        self._seed = seed
        self._backend = backend
        self._stall_rounds = stall_rounds
        self._aggregate = aggregate
        self._timeout = timeout
        self._deadline_s = deadline_s
        self._call_index = 0
        self.stats = ReductionStats()

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def algorithm(self) -> str:
        return self._algorithm

    @property
    def epsilon(self) -> float:
        return self._epsilon

    @property
    def tenant(self) -> str:
        return self._tenant

    def all_reduce_sum(self, partials: Sequence[np.ndarray]) -> np.ndarray:
        """Submit one reduction job and block for its per-node estimates.

        Same contract as :meth:`ReductionService.all_reduce_sum`,
        including the failure accounting of the exception-safe seed
        stream: a call that raises (rejection, job failure, timeout)
        consumes no call index, so a retry reruns the same schedule.
        """
        try:
            job_id = self._daemon.submit(
                tenant=self._tenant,
                algorithm=self._algorithm,
                topology=self._topology,
                partials=partials,
                epsilon=self._epsilon,
                aggregate=self._aggregate,
                seed=self._seed,
                call_index=self._call_index,
                max_rounds=self._max_rounds,
                stall_rounds=self._stall_rounds,
                backend=self._backend,
                deadline_s=self._deadline_s,
            )
            result = self._daemon.result(job_id, timeout=self._timeout)
        except Exception:
            self.stats.failed_calls += 1
            raise
        self._call_index += 1
        self.stats.calls += 1
        self.stats.total_rounds += result.rounds
        self.stats.total_messages += result.messages_sent
        if not result.converged:
            self.stats.failed_to_converge += 1
        self.stats.worst_error = max(
            self.stats.worst_error, result.max_error
        )
        return result.estimates
