"""Group execution: many reduction jobs as one whole-array program.

The daemon's central move is multiplexing: R compatible jobs (same
algorithm, node count and value dimension) stack onto one
:class:`~repro.vectorized.batched.BatchedEngine` — run ``r``'s node
``i`` becomes global node ``r*n + i`` — and execute as a single NumPy
program. Correctness is inherited from the batched engine's parity
guarantee (disjoint-union graph + run-major message assembly keep every
run's state bit-for-bit identical to running it alone); what this module
adds is a *vectorized replica of the single-run termination logic* in
:func:`repro.reduction._run_vector`:

- per-run accuracy oracle ``max|est - truth| / error_scale`` with the
  same max-then-divide order and the same non-finite → inf guard;
- per-run stall tracking with ``_StallTracker``'s exact update rule,
  including the short-circuit (a run that converges on a round never
  consults — and thus never mutates — its stall state that round);
- per-run best-error tracking, plus the final re-observation of the
  frozen state at ``rounds - 1``;
- per-run round caps via :attr:`BatchedRun.max_rounds`, so jobs with
  different budgets share a batch without over-running the short ones.

Because every floating-point operation happens in the same order on the
same values, a job's estimates out of a batch of 64 equal — bitwise —
the estimates of a serial :class:`ReductionService` call with the same
master seed. The demo and the daemon tests assert this with
``np.array_equal``, not ``allclose``.

Jobs that cannot take the vector path (non-vector-capable algorithm, or
``backend="object"``) execute one at a time through
:func:`repro.reduction.run_reduction` with exactly the arguments the
serial service would pass — identical by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms.aggregates import initial_mass_pairs, true_aggregate
from repro.linalg.reduction_service import (
    finalize_sum_estimates,
    plan_sum_reduction,
)
from repro.reduction import default_round_cap, run_reduction
from repro.service.jobs import ExecRequest, ExecResult
from repro.vectorized.batched import BatchedEngine, BatchedRun


def execute_group(
    requests: Sequence[ExecRequest],
    *,
    kernel_backend: Optional[str] = None,
) -> List[ExecResult]:
    """Execute a group of jobs, batching the vector-capable ones.

    The group is partitioned by ``(algorithm, n, d)`` × engine path; each
    vector partition runs as one batched program, object-path jobs run
    individually. Results come back in submission order.
    """
    vector_parts: Dict[tuple, List[ExecRequest]] = {}
    results: Dict[str, ExecResult] = {}
    object_reqs: List[ExecRequest] = []
    for req in requests:
        if _uses_vector(req):
            n, d = req.data.shape
            vector_parts.setdefault((req.algorithm, n, d), []).append(req)
        else:
            object_reqs.append(req)
    for part in vector_parts.values():
        for res in _execute_vector_batch(part, kernel_backend=kernel_backend):
            results[res.job_id] = res
    for req in object_reqs:
        results[req.job_id] = _execute_object(req)
    return [results[req.job_id] for req in requests]


def _uses_vector(req: ExecRequest) -> bool:
    from repro.reduction import is_vector_capable

    if req.backend == "vector":
        return True
    return req.backend == "auto" and is_vector_capable(req.algorithm)


def _execute_object(req: ExecRequest) -> ExecResult:
    """One job through ``run_reduction`` — the serial service's code path."""
    payload, kind, error_scale = plan_sum_reduction(req.data, req.aggregate)
    n = req.topology.n
    cap = (
        req.max_rounds
        if req.max_rounds is not None
        else default_round_cap(n, req.epsilon)
    )
    result = run_reduction(
        req.topology,
        payload,
        kind=kind,
        algorithm=req.algorithm,
        epsilon=req.epsilon,
        max_rounds=cap,
        schedule_seed=req.schedule_seed,
        backend=req.backend,
        stall_rounds=req.stall_rounds,
        error_scale=error_scale,
    )
    estimates = finalize_sum_estimates(
        result.estimates,
        n=n,
        aggregate=req.aggregate,
        scalar_input=req.scalar_input,
    )
    return ExecResult(
        job_id=req.job_id,
        estimates=estimates,
        rounds=result.rounds,
        messages_sent=result.messages_sent,
        messages_delivered=result.messages_delivered,
        converged=result.converged,
        max_error=result.max_error,
        best_error=result.best_error,
        best_round=result.best_round,
        engine="object",
        batched_with=1,
    )


def _execute_vector_batch(
    requests: Sequence[ExecRequest],
    *,
    kernel_backend: Optional[str] = None,
) -> List[ExecResult]:
    """R jobs of one ``(algorithm, n, d)`` signature as one program."""
    n_runs = len(requests)
    n = requests[0].topology.n
    runs: List[BatchedRun] = []
    truth_rows: List[np.ndarray] = []
    scales = np.empty(n_runs)
    epsilons = np.empty(n_runs)
    caps = np.empty(n_runs, dtype=np.int64)
    windows = np.empty(n_runs, dtype=np.int64)  # -1 = stall tracking off
    scalar_inputs: List[bool] = []
    aggregates: List[str] = []
    for i, req in enumerate(requests):
        payload, kind, error_scale = plan_sum_reduction(
            req.data, req.aggregate
        )
        truth = true_aggregate(kind, list(payload))
        initial = initial_mass_pairs(kind, list(payload), root=0)
        # Exactly _run_vector's state construction, one run at a time.
        values = np.stack(
            [np.atleast_1d(np.asarray(p.value)) for p in initial]
        )
        weights = np.array([p.weight for p in initial])
        truth_rows.append(
            np.atleast_1d(np.asarray(truth, dtype=np.float64))
        )
        scale = float(error_scale)
        scales[i] = scale if scale > 0.0 else 1.0
        epsilons[i] = req.epsilon
        caps[i] = (
            req.max_rounds
            if req.max_rounds is not None
            else default_round_cap(n, req.epsilon)
        )
        windows[i] = -1 if req.stall_rounds is None else int(req.stall_rounds)
        scalar_inputs.append(req.scalar_input)
        aggregates.append(req.aggregate)
        runs.append(
            BatchedRun(
                topology=req.topology,
                values=values,
                weights=weights,
                # default_rng(int seed): the same stream a single
                # VectorizedEngine(topology, ..., seed=seed) would draw.
                rng=int(req.schedule_seed),
                max_rounds=int(caps[i]),
            )
        )

    engine = BatchedEngine(
        requests[0].algorithm, runs, backend=kernel_backend
    )
    truth_mat = np.stack(truth_rows)  # (R, d)

    # Vectorized _StallTracker / _BestTracker state, one slot per run.
    stall_best = np.full(n_runs, np.inf)
    stall_since = np.zeros(n_runs, dtype=np.int64)
    best_error = np.full(n_runs, np.inf)
    best_round = np.full(n_runs, -1, dtype=np.int64)

    def run_errors() -> np.ndarray:
        est = engine.estimates()  # (R, n, d)
        finite = np.isfinite(est).all(axis=(1, 2))
        with np.errstate(invalid="ignore"):
            # Max over the run's (n, d) block first, then one divide by
            # the run scale — the same operation order as vec_error.
            diff = np.abs(est - truth_mat[:, None, :]).max(axis=(1, 2))
        return np.where(finite, diff / scales, np.inf)

    def stop(eng: BatchedEngine, round_index: int) -> np.ndarray:
        active = eng.last_round_active
        err = run_errors()
        improved = active & (err < best_error)
        best_error[improved] = err[improved]
        best_round[improved] = round_index
        converged = err <= epsilons
        # _StallTracker parity, including the `or` short-circuit: a run
        # that converged this round does not touch its stall state.
        tracked = active & ~converged & (windows >= 0)
        better = tracked & (err < stall_best)
        stall_best[better] = err[better]
        stall_since[better] = 0
        worse = tracked & ~better
        stall_since[worse] += 1
        stalled = worse & (stall_since >= np.maximum(windows, 1))
        return active & (converged | stalled)

    engine.run(int(caps.max()), stop_when=stop, check_every=1)

    rounds = engine.run_rounds
    est_all = engine.estimates()
    final_error = run_errors()
    # _run_vector re-observes the frozen state at rounds - 1.
    improved = final_error < best_error
    best_error[improved] = final_error[improved]
    best_round[improved] = rounds[improved] - 1
    converged = final_error <= epsilons
    sent = engine.messages_sent
    delivered = engine.messages_delivered

    results: List[ExecResult] = []
    for i, req in enumerate(requests):
        estimates = est_all[i]
        if estimates.shape[1] == 1:
            estimates = estimates[:, 0]
        estimates = finalize_sum_estimates(
            estimates,
            n=n,
            aggregate=aggregates[i],
            scalar_input=scalar_inputs[i],
        )
        results.append(
            ExecResult(
                job_id=req.job_id,
                estimates=estimates,
                rounds=int(rounds[i]),
                messages_sent=int(sent[i]),
                messages_delivered=int(delivered[i]),
                converged=bool(converged[i]),
                max_error=float(final_error[i]),
                best_error=float(best_error[i]),
                best_round=int(best_round[i]),
                engine="batched",
                batched_with=n_runs,
            )
        )
    return results
