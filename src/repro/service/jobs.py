"""Job model for the reduction daemon.

A *job* is one all-to-all sum reduction: the exact request a caller
would otherwise hand to :meth:`ReductionService.all_reduce_sum`, plus
the service-level envelope (tenant, deadline, retry budget). The specs
here are plain picklable dataclasses so whole groups travel to worker
processes through ``multiprocessing`` unchanged, and results return
through shared memory with their float64 payloads bit-intact (pickle
round-trips IEEE doubles exactly).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.linalg.reduction_service import (
    AGGREGATE_MODES,
    derive_schedule_seed,
    normalize_partials,
)
from repro.reduction import is_vector_capable
from repro.topology.base import Topology

BACKENDS = ("auto", "object", "vector")


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclasses.dataclass
class JobSpec:
    """One reduction job, fully normalized at admission time.

    ``data`` is the ``(n, d)`` partials matrix produced by
    :func:`repro.linalg.reduction_service.normalize_partials` —
    validation happens *before* the job enters the queue, so a malformed
    submission is rejected synchronously instead of failing later inside
    a batch that other tenants' jobs share.

    ``seed``/``call_index`` mirror :class:`ReductionService`'s schedule
    accounting: the reduction runs with
    ``derive_schedule_seed(seed, call_index)``, so a daemon job is
    schedule-identical to call ``call_index`` of a serial service
    constructed with master seed ``seed``.
    """

    tenant: str
    algorithm: str
    topology: Topology
    data: np.ndarray
    scalar_input: bool
    epsilon: float = 1e-15
    aggregate: str = "average"
    seed: int = 0
    call_index: int = 0
    max_rounds: Optional[int] = None
    stall_rounds: Optional[int] = 60
    backend: str = "auto"
    #: Wall-clock budget in seconds from submission; None = unbounded.
    deadline_s: Optional[float] = None

    @classmethod
    def build(
        cls,
        *,
        tenant: str,
        algorithm: str,
        topology: Topology,
        partials,
        epsilon: float = 1e-15,
        aggregate: str = "average",
        seed: int = 0,
        call_index: int = 0,
        max_rounds: Optional[int] = None,
        stall_rounds: Optional[int] = 60,
        backend: str = "auto",
        deadline_s: Optional[float] = None,
    ) -> "JobSpec":
        """Validate raw submission arguments into a queueable spec."""
        from repro.algorithms import ALGORITHMS

        if algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
            )
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon must be in (0, 1), got {epsilon}"
            )
        if aggregate not in AGGREGATE_MODES:
            raise ConfigurationError(
                f"aggregate must be 'average' or 'sum', got {aggregate!r}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be positive, got {deadline_s}"
            )
        data, scalar_input = normalize_partials(partials, topology.n)
        return cls(
            tenant=str(tenant),
            algorithm=algorithm,
            topology=topology,
            data=data,
            scalar_input=scalar_input,
            epsilon=float(epsilon),
            aggregate=aggregate,
            seed=int(seed),
            call_index=int(call_index),
            max_rounds=max_rounds,
            stall_rounds=stall_rounds,
            backend=backend,
            deadline_s=deadline_s,
        )

    @property
    def schedule_seed(self) -> int:
        return derive_schedule_seed(self.seed, self.call_index)

    @property
    def uses_vector_engine(self) -> bool:
        """Replicates :func:`repro.reduction.run_reduction`'s routing for
        the daemon's configuration space (no schedules, faults or history
        recording ever reach a daemon job)."""
        if self.backend == "vector":
            return True
        return self.backend == "auto" and is_vector_capable(self.algorithm)

    def group_key(self) -> Tuple:
        """Jobs sharing a key may execute as one whole-array program.

        The vector path batches on ``(algorithm, n, d)`` — per-run
        topologies, epsilons, seeds and aggregates all vary freely inside
        a batch (the disjoint-union graph and per-run stop logic carry
        them). Object-path jobs execute alone.
        """
        n, d = self.data.shape
        if self.uses_vector_engine:
            return ("vec", self.algorithm, n, d)
        return ("obj", id(self))


@dataclasses.dataclass
class ExecRequest:
    """The worker-facing slice of a job: everything needed to execute it.

    ``crash_attempts`` is a test seam: a worker *subprocess* whose
    ``attempt`` is still within ``crash_attempts`` dies with ``os._exit``
    before executing — the daemon-lifecycle tests use it to kill a worker
    mid-group and assert the jobs are retried. In-process execution
    ignores it.
    """

    job_id: str
    algorithm: str
    topology: Topology
    data: np.ndarray
    scalar_input: bool
    aggregate: str
    epsilon: float
    schedule_seed: int
    max_rounds: Optional[int]
    stall_rounds: Optional[int]
    backend: str
    attempt: int = 1
    crash_attempts: int = 0


@dataclasses.dataclass
class ExecResult:
    """Per-job outcome of :func:`repro.service.batch.execute_group`."""

    job_id: str
    estimates: np.ndarray
    rounds: int
    messages_sent: int
    messages_delivered: int
    converged: bool
    max_error: float
    best_error: float
    best_round: int
    engine: str  # "batched" | "object"
    #: Number of jobs sharing the whole-array program (1 on the object path).
    batched_with: int = 1


@dataclasses.dataclass
class JobResult:
    """What a tenant gets back for one job (one epoch of it)."""

    job_id: str
    tenant: str
    epoch: int
    attempts: int
    estimates: np.ndarray
    rounds: int
    messages_sent: int
    messages_delivered: int
    converged: bool
    max_error: float
    engine: str
    batched_with: int
    latency_s: float


@dataclasses.dataclass
class JobSnapshot:
    """Introspection row served on the daemon's ``/jobs`` endpoint."""

    job_id: str
    tenant: str
    algorithm: str
    state: str
    epoch: int
    attempts: int
    error: Optional[str] = None
