"""``python -m repro.experiments serve-reductions``: run the daemon.

Two modes:

- plain serving: start a :class:`ReductionDaemon` plus the telemetry
  HTTP plane and stay up until interrupted (an in-process client in the
  same interpreter submits jobs; the HTTP plane is observability);
- ``--demo``: additionally push a mixed-tenant job stream through the
  daemon from N concurrent tenant threads, then *prove* the service
  contract — every job's per-node estimates are compared bit-for-bit
  (``np.array_equal``, not allclose) against a serial
  :class:`ReductionService` call with the same master seed, the
  ``/healthz`` / ``/jobs`` / ``/metrics`` endpoints are scraped and
  strictly parsed, an epoch resubmission is verified to re-reduce the
  updated partials, and shutdown is checked to leak no shared-memory
  segments and no worker processes. The CI ``service-smoke`` job runs
  exactly this.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import QueueFullError
from repro.service.daemon import ReductionDaemon
from repro.service.http import DaemonSource
from repro.telemetry.server import MetricsServer

#: The demo's tenant workload mix: vector-capable algorithms cycle so
#: several batched groups form, topology families vary per tenant.
DEMO_ALGORITHMS = (
    "push_cancel_flow",
    "push_flow",
    "push_sum",
    "push_cancel_flow_hardened",
)
DEMO_N = 32


def _demo_topology(tenant_index: int):
    from repro.topology import complete, hypercube_for_nodes, ring, star

    families = (
        lambda: hypercube_for_nodes(DEMO_N),
        lambda: ring(DEMO_N),
        lambda: complete(DEMO_N),
        lambda: star(DEMO_N),
    )
    return families[tenant_index % len(families)]()


def _bit_identical(a: np.ndarray, b: np.ndarray) -> bool:
    """Bitwise float64 equality — stricter than ``np.array_equal``.

    Non-converging runs legitimately carry inf/NaN estimates (the
    paper's flow blow-up on bottleneck topologies); ``array_equal``
    would call two byte-identical NaN arrays unequal, so parity is
    judged on the raw bit patterns.
    """
    a = np.ascontiguousarray(np.asarray(a, dtype=np.float64))
    b = np.ascontiguousarray(np.asarray(b, dtype=np.float64))
    return a.shape == b.shape and np.array_equal(
        a.view(np.uint64), b.view(np.uint64)
    )


def _http_get(url: str, timeout: float = 10.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode("utf-8")


def _tenant_worker(
    daemon: ReductionDaemon,
    tenant_index: int,
    n_jobs: int,
    out: List[Tuple[str, Dict[str, object]]],
    errors: List[BaseException],
) -> None:
    """Submit this tenant's jobs (async), then gather every result."""
    try:
        rng = np.random.default_rng(1000 + tenant_index)
        topology = _demo_topology(tenant_index)
        tenant = f"tenant-{tenant_index}"
        submitted: List[Tuple[str, Dict[str, object]]] = []
        for j in range(n_jobs):
            algorithm = DEMO_ALGORITHMS[j % len(DEMO_ALGORITHMS)]
            # A third of the jobs reduce 3-vectors (dmGS-style dot-product
            # blocks); the rest are scalar sums.
            if j % 3 == 0:
                partials = [rng.standard_normal(3) for _ in range(DEMO_N)]
            else:
                partials = [float(v) for v in rng.standard_normal(DEMO_N)]
            spec = {
                "tenant": tenant,
                "algorithm": algorithm,
                "topology": topology,
                "partials": partials,
                "epsilon": 1e-13,
                "aggregate": "sum" if j % 5 == 0 else "average",
                "seed": tenant_index * 10_000 + j,
            }
            while True:
                try:
                    job_id = daemon.submit(**spec)
                    break
                except QueueFullError:
                    time.sleep(0.01)  # backpressure: drain, then retry
            submitted.append((job_id, spec))
        for job_id, spec in submitted:
            daemon.result(job_id, timeout=300.0)
            out.append((job_id, spec))
    except BaseException as exc:  # noqa: BLE001 - surfaced by the main thread
        errors.append(exc)


def _verify_parity(
    daemon: ReductionDaemon, done: List[Tuple[str, Dict[str, object]]]
) -> int:
    """Replay every job on a serial ReductionService; demand bit equality."""
    from repro.linalg.reduction_service import ReductionService

    max_batched = 0
    for job_id, spec in done:
        result = daemon.result(job_id, timeout=1.0)
        max_batched = max(max_batched, result.batched_with)
        service = ReductionService(
            spec["topology"],
            algorithm=spec["algorithm"],  # type: ignore[arg-type]
            epsilon=spec["epsilon"],  # type: ignore[arg-type]
            seed=spec["seed"],  # type: ignore[arg-type]
            aggregate=spec["aggregate"],  # type: ignore[arg-type]
        )
        serial = service.all_reduce_sum(spec["partials"])  # type: ignore[arg-type]
        if not _bit_identical(serial, result.estimates):
            raise AssertionError(
                f"job {job_id} ({spec['algorithm']}, batched_with="
                f"{result.batched_with}) is not bit-identical to the "
                "serial ReductionService call"
            )
    return max_batched


def _verify_epoch_restart(
    daemon: ReductionDaemon, done: List[Tuple[str, Dict[str, object]]]
) -> None:
    """Resubmit one finished job with new partials; the re-reduction must
    match a serial service run on the updated inputs."""
    from repro.linalg.reduction_service import ReductionService

    job_id, spec = done[0]
    rng = np.random.default_rng(99)
    topology = spec["topology"]
    updated = [float(v) for v in rng.standard_normal(topology.n)]  # type: ignore[attr-defined]
    epoch = daemon.resubmit(job_id, updated)
    result = daemon.result(job_id, timeout=60.0)
    assert result.epoch == epoch, (result.epoch, epoch)
    service = ReductionService(
        topology,  # type: ignore[arg-type]
        algorithm=spec["algorithm"],  # type: ignore[arg-type]
        epsilon=spec["epsilon"],  # type: ignore[arg-type]
        seed=spec["seed"],  # type: ignore[arg-type]
        aggregate=spec["aggregate"],  # type: ignore[arg-type]
    )
    serial = service.all_reduce_sum(updated)
    if not _bit_identical(serial, result.estimates):
        raise AssertionError(
            "epoch resubmission did not reproduce the serial reduction "
            "of the updated partials"
        )


def _verify_http(url: str, expected_jobs: int) -> None:
    """Scrape and strictly validate the live observability plane."""
    from repro.telemetry import parse_prometheus_text

    health = json.loads(_http_get(url + "/healthz"))
    assert health["status"] == "ok", health
    assert health["queue_depth"] == 0, health
    assert health["jobs_completed"] >= expected_jobs, health

    jobs = json.loads(_http_get(url + "/jobs"))["jobs"]
    assert len(jobs) == expected_jobs, (len(jobs), expected_jobs)
    assert all(j["state"] == "done" for j in jobs), jobs

    samples = parse_prometheus_text(_http_get(url + "/metrics"))
    by_name: Dict[str, float] = {}
    for name, _labels, value in samples:
        by_name[name] = by_name.get(name, 0.0) + value
    # Latency histogram must be live: one observation per completed epoch.
    count = by_name.get("daemon_job_latency_seconds_count", 0.0)
    assert count >= expected_jobs, (
        f"daemon_job_latency_seconds_count={count}, "
        f"expected >= {expected_jobs}"
    )
    assert by_name.get("daemon_jobs_submitted_total", 0.0) >= expected_jobs
    assert by_name.get("daemon_batch_jobs_count", 0.0) >= 1
    # The campaign-only endpoints must 404 on a daemon source.
    try:
        _http_get(url + "/progress")
    except urllib.error.HTTPError as exc:
        assert exc.code == 404, exc.code
    else:
        raise AssertionError("/progress should 404 on a daemon source")


def _verify_clean_shutdown() -> None:
    import multiprocessing

    children = multiprocessing.active_children()
    assert not children, f"leaked worker processes: {children}"
    leaked = glob.glob(f"/dev/shm/repro-svc-{os.getpid()}-*")
    assert not leaked, f"leaked shared-memory segments: {leaked}"


def _run_demo(
    daemon: ReductionDaemon,
    url: str,
    *,
    jobs: int,
    tenants: int,
    say,
) -> None:
    per_tenant = (jobs + tenants - 1) // tenants
    total = per_tenant * tenants
    say(
        f"demo: {total} jobs from {tenants} concurrent tenants "
        f"({per_tenant} each, n={DEMO_N})"
    )
    done: List[Tuple[str, Dict[str, object]]] = []
    errors: List[BaseException] = []
    threads = [
        threading.Thread(
            target=_tenant_worker,
            args=(daemon, t, per_tenant, done, errors),
            name=f"demo-tenant-{t}",
        )
        for t in range(tenants)
    ]
    t0 = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    say(f"all {len(done)} jobs completed in {time.monotonic() - t0:.2f}s")

    max_batched = _verify_parity(daemon, done)
    assert max_batched > 1, (
        "no job was multiplexed into a batched group — the demo stream "
        "should coalesce"
    )
    say(
        f"parity: every job bit-identical to its serial ReductionService "
        f"replay (largest batch: {max_batched} jobs)"
    )
    _verify_epoch_restart(daemon, done)
    say("epoch restart: resubmitted partials re-reduced correctly")
    _verify_http(url, len(done))
    say("http: /healthz, /jobs and strictly-parsed /metrics all check out")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve-reductions",
        description=(
            "Run the persistent multi-tenant reduction daemon with its "
            "live telemetry endpoints (/metrics /healthz /jobs)."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="address to bind (default: %(default)s)"
    )
    parser.add_argument(
        "--port", type=int, default=0, help="port to bind (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for group execution (0 = in-process)",
    )
    parser.add_argument("--max-pending", type=int, default=256)
    parser.add_argument("--tenant-quota", type=int, default=64)
    parser.add_argument("--retries", type=int, default=1)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument(
        "--linger",
        type=float,
        default=0.01,
        help="seconds a sub-full batch waits for more compatible jobs",
    )
    parser.add_argument(
        "--start-method",
        choices=["fork", "spawn", "forkserver"],
        default=None,
        help="multiprocessing start method (default: fork on Linux)",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="push a mixed-tenant job stream and verify the service "
        "contract (bit-parity, epochs, endpoints, clean shutdown)",
    )
    parser.add_argument("--demo-jobs", type=int, default=64)
    parser.add_argument("--demo-tenants", type=int, default=4)
    parser.add_argument(
        "--stay-up",
        action="store_true",
        help="keep serving after the demo instead of exiting",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    def say(msg: str) -> None:
        if not args.quiet:
            print(msg, flush=True)

    daemon = ReductionDaemon(
        workers=args.workers,
        max_pending=args.max_pending,
        tenant_quota=args.tenant_quota,
        retries=args.retries,
        max_batch=args.max_batch,
        linger_s=args.linger,
        start_method=args.start_method,
    )
    server = MetricsServer(
        DaemonSource(daemon), host=args.host, port=args.port
    )
    server.start()
    say(f"reduction daemon serving at {server.url}")
    say("endpoints: /metrics /healthz /jobs")
    try:
        if args.demo:
            _run_demo(
                daemon,
                server.url,
                jobs=args.demo_jobs,
                tenants=args.demo_tenants,
                say=say,
            )
        if not args.demo or args.stay_up:
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                pass
    finally:
        server.close()
        daemon.close()
    if args.demo:
        _verify_clean_shutdown()
        say("shutdown: no leaked shm segments, no leaked workers")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
