"""The reduction daemon: admission, batching, sharding, epochs.

:class:`ReductionDaemon` is a long-lived in-process service. Tenants
submit independent reduction jobs; dispatcher threads gather compatible
queued jobs into groups (a short *linger* window lets concurrent
submissions coalesce), execute each group as one whole-array batched
program — in-process with ``workers=0``, or sharded across worker
subprocesses with the campaign runner's shared-memory transport — and
complete the jobs with per-node results, retrying groups whose worker
died and failing jobs past their retry budget or deadline.

Mechanism map (DESIGN.md §6 has the long form):

- *admission control*: a bounded pending queue (``QueueFullError`` is
  backpressure, not failure) and a per-tenant in-flight quota
  (``QuotaExceededError``) keep one chatty tenant from starving the rest;
- *batching*: jobs multiplex by ``(algorithm, n, d)`` onto
  :class:`~repro.vectorized.batched.BatchedEngine` — the daemon's
  throughput move, inheriting the engine's bit-parity guarantee;
- *epochs*: :meth:`resubmit` is the paper's restarting mechanism
  generalized — a tenant whose inputs changed pushes updated partials
  and the daemon re-reduces from the live epoch, superseding any result
  of the stale one;
- *observability*: every transition lands in a
  :class:`~repro.telemetry.registry.MetricsRegistry` served live by the
  PR 9 telemetry server through :class:`repro.service.http.DaemonSource`.
"""

from __future__ import annotations

import dataclasses
import pickle
import queue as queue_module
import threading
import time
import uuid
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    QueueFullError,
    QuotaExceededError,
    ServiceError,
)
from repro.linalg.reduction_service import normalize_partials
from repro.service.jobs import (
    ExecRequest,
    ExecResult,
    JobResult,
    JobSnapshot,
    JobSpec,
    JobState,
)
from repro.service.workers import (
    SHM_BYTES_PER_JOB,
    SHM_MIN_BYTES,
    group_worker_entry,
    shm_name,
)
from repro.telemetry.registry import MetricsRegistry

#: Bucket ladder for the group-size histogram (jobs per program).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclasses.dataclass
class DaemonStats:
    """Point-in-time daemon counters (the ``/healthz`` payload core)."""

    queue_depth: int
    inflight: int
    submitted: int
    completed: int
    failed: int
    rejected: int
    retries: int
    epoch_resubmissions: int
    workers: int
    closed: bool


class _Job:
    """Daemon-internal mutable job state; guarded by the daemon lock."""

    __slots__ = (
        "id",
        "spec",
        "state",
        "epoch",
        "running_epoch",
        "attempts",
        "deadline",
        "epoch_started",
        "result",
        "result_epoch",
        "error",
        "pending_data",
        "crash_attempts",
    )

    def __init__(
        self,
        job_id: str,
        spec: JobSpec,
        *,
        now: float,
        crash_attempts: int = 0,
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.state = JobState.QUEUED
        self.epoch = 0
        self.running_epoch = -1
        self.attempts = 0
        self.deadline = (
            now + spec.deadline_s if spec.deadline_s is not None else None
        )
        self.epoch_started = now
        self.result: Optional[JobResult] = None
        self.result_epoch = -1
        self.error: Optional[str] = None
        self.pending_data: Optional[Tuple[np.ndarray, bool]] = None
        self.crash_attempts = crash_attempts


class ReductionDaemon:
    """Persistent multi-tenant aggregation daemon (see module docstring).

    ``workers=0`` executes groups inline on the dispatcher thread
    (deterministic, no subprocesses — the test/default mode);
    ``workers=W >= 1`` runs W dispatcher threads, each owning at most one
    worker subprocess at a time, so up to W groups execute concurrently
    with results returned through parent-owned shared memory.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        max_pending: int = 256,
        tenant_quota: int = 64,
        retries: int = 1,
        max_batch: int = 64,
        linger_s: float = 0.01,
        start_method: Optional[str] = None,
        kernel_backend: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if tenant_quota < 1:
            raise ConfigurationError(
                f"tenant_quota must be >= 1, got {tenant_quota}"
            )
        if max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        self._workers = workers
        self._max_pending = max_pending
        self._tenant_quota = tenant_quota
        self._retries = retries
        self._max_batch = max_batch
        self._linger_s = max(0.0, float(linger_s))
        self._start_method = start_method
        self._kernel_backend = kernel_backend

        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._m_submitted = reg.counter(
            "daemon_jobs_submitted_total", "Jobs admitted, by tenant"
        )
        self._m_completed = reg.counter(
            "daemon_jobs_completed_total", "Jobs completed, by tenant"
        )
        self._m_failed = reg.counter(
            "daemon_jobs_failed_total", "Jobs terminally failed, by reason"
        )
        self._m_rejected = reg.counter(
            "daemon_jobs_rejected_total", "Submissions refused, by reason"
        )
        self._m_retries = reg.counter(
            "daemon_job_retries_total", "Job attempts requeued after a group failure"
        )
        self._m_epochs = reg.counter(
            "daemon_epoch_resubmissions_total",
            "Live-epoch restarts (tenant resubmitted updated partials)",
        )
        self._m_groups = reg.counter(
            "daemon_groups_total", "Executed job groups, by engine path"
        )
        self._m_latency = reg.histogram(
            "daemon_job_latency_seconds",
            "Submission-to-result latency per job epoch",
        )
        self._m_batch = reg.histogram(
            "daemon_batch_jobs",
            "Jobs multiplexed per executed group",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self._g_depth = reg.gauge(
            "daemon_queue_depth", "Jobs waiting for dispatch"
        )
        self._g_inflight = reg.gauge(
            "daemon_jobs_inflight", "Jobs queued or running"
        )
        self._g_depth.set(0.0)
        self._g_inflight.set(0.0)

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: Dict[str, _Job] = {}
        self._pending: List[str] = []
        self._inflight: Dict[str, int] = {}
        self._counts = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "rejected": 0,
            "retries": 0,
            "epochs": 0,
        }
        self._closed = False
        self._shm_seq = 0

        self._threads = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-svc-dispatch-{i}",
                daemon=True,
            )
            for i in range(max(1, workers))
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    # Tenant API
    # ------------------------------------------------------------------
    def submit(
        self,
        *,
        tenant: str,
        algorithm: str,
        topology,
        partials,
        epsilon: float = 1e-15,
        aggregate: str = "average",
        seed: int = 0,
        call_index: int = 0,
        max_rounds: Optional[int] = None,
        stall_rounds: Optional[int] = 60,
        backend: str = "auto",
        deadline_s: Optional[float] = None,
        crash_attempts: int = 0,
    ) -> str:
        """Admit one reduction job; returns its id (for :meth:`result`).

        Raises :class:`QueueFullError` (backpressure) when the pending
        queue is at capacity, :class:`QuotaExceededError` when the tenant
        is at its in-flight quota, and :class:`ConfigurationError` for a
        malformed job — all synchronously, before anything is enqueued.
        ``crash_attempts`` is the worker-death test seam (see
        :func:`repro.service.workers.group_worker_entry`).
        """
        try:
            spec = JobSpec.build(
                tenant=tenant,
                algorithm=algorithm,
                topology=topology,
                partials=partials,
                epsilon=epsilon,
                aggregate=aggregate,
                seed=seed,
                call_index=call_index,
                max_rounds=max_rounds,
                stall_rounds=stall_rounds,
                backend=backend,
                deadline_s=deadline_s,
            )
        except ConfigurationError:
            with self._cond:
                self._reject_locked("invalid")
            raise
        job_id = uuid.uuid4().hex[:12]
        with self._cond:
            if self._closed:
                self._reject_locked("closed")
                raise ServiceError("daemon is closed to new submissions")
            if len(self._pending) >= self._max_pending:
                self._reject_locked("queue_full")
                raise QueueFullError(
                    f"pending queue is full ({self._max_pending} jobs); "
                    "retry after draining in-flight work"
                )
            if self._inflight.get(spec.tenant, 0) >= self._tenant_quota:
                self._reject_locked("quota")
                raise QuotaExceededError(
                    f"tenant {spec.tenant!r} is at its in-flight quota "
                    f"({self._tenant_quota} jobs)"
                )
            job = _Job(
                job_id,
                spec,
                now=time.monotonic(),
                crash_attempts=crash_attempts,
            )
            self._jobs[job_id] = job
            self._pending.append(job_id)
            self._inflight[spec.tenant] = (
                self._inflight.get(spec.tenant, 0) + 1
            )
            self._counts["submitted"] += 1
            self._m_submitted.inc(tenant=spec.tenant)
            self._refresh_gauges_locked()
            self._cond.notify_all()
        return job_id

    def resubmit(self, job_id: str, partials) -> int:
        """Push updated partials for a job: the epoch-based restart.

        Returns the new epoch number. The daemon re-reduces from the live
        epoch: a queued job swaps its inputs in place, a running job's
        stale result is discarded on completion and the job re-queues
        with the new inputs, and a finished job is re-admitted (subject
        to the same queue/quota admission as a fresh submission).
        :meth:`result` only returns once the *latest* epoch has settled.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job {job_id!r}")
            data, scalar_input = normalize_partials(
                partials, job.spec.topology.n
            )
            if job.state in (JobState.DONE, JobState.FAILED):
                # Terminal jobs left the in-flight accounting; re-entry
                # goes back through admission control.
                if self._closed:
                    raise ServiceError("daemon is closed to new submissions")
                if len(self._pending) >= self._max_pending:
                    self._reject_locked("queue_full")
                    raise QueueFullError(
                        f"pending queue is full ({self._max_pending} jobs)"
                    )
                tenant = job.spec.tenant
                if self._inflight.get(tenant, 0) >= self._tenant_quota:
                    self._reject_locked("quota")
                    raise QuotaExceededError(
                        f"tenant {tenant!r} is at its in-flight quota"
                    )
                self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
            now = time.monotonic()
            job.epoch += 1
            job.epoch_started = now
            if job.spec.deadline_s is not None:
                job.deadline = now + job.spec.deadline_s
            if job.state == JobState.RUNNING:
                job.pending_data = (data, scalar_input)
            else:
                job.spec.data = data
                job.spec.scalar_input = scalar_input
                job.attempts = 0
                job.error = None
                if job.state in (JobState.DONE, JobState.FAILED):
                    job.state = JobState.QUEUED
                    self._pending.append(job_id)
            self._counts["epochs"] += 1
            self._m_epochs.inc()
            self._refresh_gauges_locked()
            self._cond.notify_all()
            return job.epoch

    def result(
        self, job_id: str, *, timeout: Optional[float] = None
    ) -> JobResult:
        """Block until the job's *latest* epoch settles; return its result.

        Raises :class:`~repro.exceptions.JobFailedError` if that epoch
        failed terminally, :class:`TimeoutError` past ``timeout``.
        """
        from repro.exceptions import JobFailedError

        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise ServiceError(f"unknown job {job_id!r}")
                if (
                    job.state in (JobState.DONE, JobState.FAILED)
                    and job.result_epoch == job.epoch
                ):
                    if job.state == JobState.DONE:
                        assert job.result is not None
                        return job.result
                    raise JobFailedError(
                        f"job {job_id} failed: {job.error}"
                    )
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"no result for job {job_id} within {timeout}s"
                        )
                    self._cond.wait(remaining)
                else:
                    self._cond.wait(0.5)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> DaemonStats:
        with self._lock:
            inflight = sum(self._inflight.values())
            return DaemonStats(
                queue_depth=len(self._pending),
                inflight=inflight,
                submitted=self._counts["submitted"],
                completed=self._counts["completed"],
                failed=self._counts["failed"],
                rejected=self._counts["rejected"],
                retries=self._counts["retries"],
                epoch_resubmissions=self._counts["epochs"],
                workers=self._workers,
                closed=self._closed,
            )

    def jobs(self) -> List[JobSnapshot]:
        with self._lock:
            return [
                JobSnapshot(
                    job_id=job.id,
                    tenant=job.spec.tenant,
                    algorithm=job.spec.algorithm,
                    state=job.state.value,
                    epoch=job.epoch,
                    attempts=job.attempts,
                    error=job.error,
                )
                for job in self._jobs.values()
            ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, *, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop accepting jobs and shut the dispatchers down.

        ``drain=True`` (default) finishes everything already admitted
        first; ``drain=False`` fails still-queued jobs immediately
        (running groups complete either way — workers are never orphaned).
        """
        with self._cond:
            if self._closed and not self._threads:
                return
            self._closed = True
            if not drain:
                for job_id in list(self._pending):
                    self._fail_locked(
                        self._jobs[job_id], "daemon shutting down"
                    )
                self._pending.clear()
            self._refresh_gauges_locked()
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout=timeout)
        self._threads = [t for t in self._threads if t.is_alive()]
        if self._threads:
            raise ServiceError(
                "dispatcher threads did not stop within the close timeout"
            )

    def __enter__(self) -> "ReductionDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _reject_locked(self, reason: str) -> None:
        self._counts["rejected"] += 1
        self._m_rejected.inc(reason=reason)

    def _refresh_gauges_locked(self) -> None:
        self._g_depth.set(float(len(self._pending)))
        self._g_inflight.set(float(sum(self._inflight.values())))

    def _fail_locked(self, job: _Job, error: str, reason: str = "error") -> None:
        job.state = JobState.FAILED
        job.error = error
        job.result_epoch = job.epoch
        tenant = job.spec.tenant
        self._inflight[tenant] = max(0, self._inflight.get(tenant, 0) - 1)
        self._counts["failed"] += 1
        self._m_failed.inc(reason=reason)

    def _expire_queued_locked(self) -> None:
        now = time.monotonic()
        expired = [
            jid
            for jid in self._pending
            if self._jobs[jid].deadline is not None
            and now > self._jobs[jid].deadline
        ]
        for jid in expired:
            self._pending.remove(jid)
            self._fail_locked(
                self._jobs[jid], "deadline exceeded in queue", "deadline"
            )
        if expired:
            self._refresh_gauges_locked()
            self._cond.notify_all()

    def _gather(self) -> Optional[List[_Job]]:
        """Pull the next job group off the queue (None = shut down).

        The oldest pending job leads; jobs sharing its group key join, up
        to ``max_batch``. A sub-full vector group lingers briefly so a
        burst of concurrent submissions coalesces into one program —
        that window is the difference between "a daemon that happens to
        use the batched engine" and one that actually multiplexes.
        """
        with self._cond:
            while True:
                self._expire_queued_locked()
                if not self._pending:
                    if self._closed:
                        return None
                    self._cond.wait(0.2)
                    continue
                lead_id = self._pending[0]
                key = self._jobs[lead_id].spec.group_key()
                linger_until = time.monotonic() + self._linger_s
                while True:
                    batch = [
                        jid
                        for jid in self._pending
                        if self._jobs[jid].spec.group_key() == key
                    ][: self._max_batch]
                    if (
                        not batch
                        or len(batch) >= self._max_batch
                        or key[0] == "obj"
                        or self._closed
                    ):
                        break
                    remaining = linger_until - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                    self._expire_queued_locked()
                if not batch:
                    continue  # the lead was taken or expired; reselect
                group: List[_Job] = []
                for jid in batch:
                    self._pending.remove(jid)
                    job = self._jobs[jid]
                    job.state = JobState.RUNNING
                    job.running_epoch = job.epoch
                    job.attempts += 1
                    group.append(job)
                self._refresh_gauges_locked()
                return group

    def _dispatch_loop(self) -> None:
        while True:
            group = self._gather()
            if group is None:
                return
            requests = [
                ExecRequest(
                    job_id=job.id,
                    algorithm=job.spec.algorithm,
                    topology=job.spec.topology,
                    data=job.spec.data,
                    scalar_input=job.spec.scalar_input,
                    aggregate=job.spec.aggregate,
                    epsilon=job.spec.epsilon,
                    schedule_seed=job.spec.schedule_seed,
                    max_rounds=job.spec.max_rounds,
                    stall_rounds=job.spec.stall_rounds,
                    backend=job.spec.backend,
                    attempt=job.attempts,
                    crash_attempts=job.crash_attempts,
                )
                for job in group
            ]
            self._m_batch.observe(float(len(group)))
            self._m_groups.inc(
                path="vector"
                if group[0].spec.uses_vector_engine
                else "object"
            )
            if self._workers == 0:
                try:
                    from repro.service.batch import execute_group

                    results = execute_group(
                        requests, kernel_backend=self._kernel_backend
                    )
                except Exception as exc:  # noqa: BLE001 - settles into retries
                    self._settle_failure(
                        group, f"{type(exc).__name__}: {exc}"
                    )
                    continue
                self._complete(group, results)
            else:
                outcome = self._run_in_worker(group, requests)
                if isinstance(outcome, str):
                    self._settle_failure(group, outcome)
                else:
                    self._complete(group, outcome)

    def _run_in_worker(
        self, group: List[_Job], requests: List[ExecRequest]
    ):
        """Execute one group in a subprocess; results via shared memory.

        Returns the result list on success, an error string otherwise.
        Mirrors the campaign runner's transport: parent-owned segment,
        one-slot queue for the outcome tag, unlink in every path.
        """
        from multiprocessing import shared_memory

        from repro.campaigns.runner import _mp_context

        ctx = _mp_context(self._start_method)
        with self._lock:
            self._shm_seq += 1
            seq = self._shm_seq
        shm = shared_memory.SharedMemory(
            name=shm_name(seq),
            create=True,
            size=max(SHM_MIN_BYTES, SHM_BYTES_PER_JOB * len(requests)),
        )
        result_queue = ctx.Queue(maxsize=1)
        proc = ctx.Process(
            target=group_worker_entry,
            args=(requests, shm.name, result_queue, self._kernel_backend),
            daemon=True,
        )
        deadlines = [j.deadline for j in group if j.deadline is not None]
        deadline = min(deadlines) if deadlines else None
        try:
            proc.start()
            while True:
                try:
                    msg = result_queue.get_nowait()
                except queue_module.Empty:
                    msg = None
                if msg is not None:
                    proc.join()
                    tag, payload = msg
                    if tag == "shm":
                        raw = bytes(shm.buf[: int(payload)])
                        return pickle.loads(raw)
                    if tag == "inline":
                        return payload
                    return str(payload)  # worker-side exception text
                if not proc.is_alive():
                    proc.join()
                    return f"worker crashed (exit code {proc.exitcode})"
                if deadline is not None and time.monotonic() > deadline:
                    proc.terminate()
                    proc.join()
                    return "deadline exceeded while running"
                time.sleep(0.02)
        finally:
            if proc.is_alive():  # pragma: no cover - close() interrupt path
                proc.terminate()
                proc.join()
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def _requeue_new_epoch_locked(self, job: _Job) -> None:
        """A mid-run resubmission superseded this attempt's inputs."""
        data, scalar_input = job.pending_data  # type: ignore[misc]
        job.pending_data = None
        job.spec.data = data
        job.spec.scalar_input = scalar_input
        job.attempts = 0
        job.error = None
        job.state = JobState.QUEUED
        self._pending.append(job.id)

    def _complete(
        self, group: List[_Job], results: Sequence[ExecResult]
    ) -> None:
        by_id = {res.job_id: res for res in results}
        now = time.monotonic()
        with self._cond:
            for job in group:
                if job.epoch != job.running_epoch:
                    self._requeue_new_epoch_locked(job)
                    continue
                res = by_id.get(job.id)
                if res is None:  # pragma: no cover - executor contract
                    self._fail_locked(job, "executor returned no result")
                    continue
                latency = now - job.epoch_started
                job.result = JobResult(
                    job_id=job.id,
                    tenant=job.spec.tenant,
                    epoch=job.epoch,
                    attempts=job.attempts,
                    estimates=res.estimates,
                    rounds=res.rounds,
                    messages_sent=res.messages_sent,
                    messages_delivered=res.messages_delivered,
                    converged=res.converged,
                    max_error=res.max_error,
                    engine=res.engine,
                    batched_with=res.batched_with,
                    latency_s=latency,
                )
                job.state = JobState.DONE
                job.result_epoch = job.epoch
                job.error = None
                tenant = job.spec.tenant
                self._inflight[tenant] = max(
                    0, self._inflight.get(tenant, 0) - 1
                )
                self._counts["completed"] += 1
                self._m_completed.inc(tenant=tenant)
                self._m_latency.observe(latency)
            self._refresh_gauges_locked()
            self._cond.notify_all()

    def _settle_failure(self, group: List[_Job], error: str) -> None:
        with self._cond:
            for job in group:
                if job.epoch != job.running_epoch:
                    self._requeue_new_epoch_locked(job)
                elif job.attempts <= self._retries:
                    self._counts["retries"] += 1
                    self._m_retries.inc()
                    job.state = JobState.QUEUED
                    # Front of the queue: a retried attempt keeps its
                    # place ahead of newer submissions.
                    self._pending.insert(0, job.id)
                else:
                    self._fail_locked(job, error)
            self._refresh_gauges_locked()
            self._cond.notify_all()
