"""Reduction-as-a-service: a persistent multi-tenant aggregation daemon.

The paper's Sec. IV treats the gossip reduction as a callable black box;
this package is the production-shaped version of that box (ROADMAP
item 1). :class:`ReductionDaemon` accepts independent reduction jobs —
the same ``(algorithm, topology, partials, epsilon, aggregate)``
contract as :meth:`repro.linalg.ReductionService.all_reduce_sum` — from
many tenants, multiplexes compatible jobs onto
:class:`repro.vectorized.batched.BatchedEngine` as one whole-array
program, shards batched groups across worker processes, and streams
per-node results back with job-level retries, deadlines and epoch-based
resubmission. :class:`DaemonClient` is the synchronous facade that lets
``dmgs``/``distributed_qr`` run unchanged against the daemon.

Every job's per-node estimates are bit-identical to a serial
:class:`~repro.linalg.ReductionService` call with the same master seed —
see :mod:`repro.service.batch` for why batching preserves that.
"""

from repro.service.batch import execute_group
from repro.service.client import DaemonClient
from repro.service.daemon import DaemonStats, ReductionDaemon
from repro.service.http import DaemonSource
from repro.service.jobs import (
    JobResult,
    JobSnapshot,
    JobSpec,
    JobState,
)

__all__ = [
    "DaemonClient",
    "DaemonSource",
    "DaemonStats",
    "JobResult",
    "JobSnapshot",
    "JobSpec",
    "JobState",
    "ReductionDaemon",
    "execute_group",
]
