"""HTTP source adapting a :class:`ReductionDaemon` to the PR 9 server.

:class:`DaemonSource` plugs into
:class:`repro.telemetry.server.MetricsServer` alongside the campaign
sources; it serves ``/metrics`` (the daemon's registry in Prometheus
text), ``/healthz`` (liveness extended with queue depth and in-flight
counts) and ``/jobs`` (a per-job state table). The campaign-only
endpoints (``/progress``, ``/alerts``, ``/dashboard``) simply don't
exist on this source, and the server 404s them — the handler dispatches
on what the source provides, not on a fixed endpoint list.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.service.daemon import ReductionDaemon


class DaemonSource:
    """Serves a live reduction daemon's observability plane."""

    def __init__(self, daemon: ReductionDaemon) -> None:
        self._daemon = daemon

    def metrics_text(self) -> str:
        return self._daemon.registry.to_prometheus()

    def health(self) -> Dict[str, object]:
        stats = self._daemon.stats()
        return {
            "status": "draining" if stats.closed else "ok",
            "service": "reduction-daemon",
            "queue_depth": stats.queue_depth,
            "inflight": stats.inflight,
            "workers": stats.workers,
            "jobs_submitted": stats.submitted,
            "jobs_completed": stats.completed,
            "jobs_failed": stats.failed,
            "jobs_rejected": stats.rejected,
            "retries": stats.retries,
            "epoch_resubmissions": stats.epoch_resubmissions,
        }

    def jobs(self) -> Dict[str, object]:
        return {
            "jobs": [
                dataclasses.asdict(snap) for snap in self._daemon.jobs()
            ]
        }
