"""Worker-process plumbing for the reduction daemon.

Mirrors the campaign runner's group machinery
(:mod:`repro.campaigns.runner`): the parent owns a shared-memory
segment per in-flight group (PID-prefixed ``repro-svc-*`` names, so
leaks are attributable and the smoke tests can scan for them), the
worker attaches without taking ownership, writes the pickled results
and signals the payload size on a one-slot queue. Oversized payloads
fall back to shipping inline through the queue. The parent unlinks the
segment in *every* outcome path — success, worker error, crash, timeout
and retry — so no segment outlives its attempt.

Results travel as pickle, not JSON: a job's estimates must survive the
hop bit-for-bit, and pickle round-trips float64 arrays exactly without
leaning on repr shortest-round-trip subtleties.
"""

from __future__ import annotations

import os
import pickle
from typing import List, Optional

from repro.service.jobs import ExecRequest

#: Per-job capacity estimate for a group's pickled results. A result is
#: dominated by its (n, d) float64 estimates; 64 KB per job covers
#: n*d up to ~8000 cells with headroom, and larger payloads fall back
#: to the queue.
SHM_BYTES_PER_JOB = 65536
SHM_MIN_BYTES = 65536


def shm_name(seq: int) -> str:
    return f"repro-svc-{os.getpid()}-{seq}"


def attach_shm(name: str):
    """Child-side attach to the parent-owned result segment.

    Ownership stays with the parent (see ``_attach_shm`` in the campaign
    runner for the full resource-tracker story): on Python 3.13+ the
    child attaches with ``track=False``; earlier versions register with
    the tracker, which the parent's unlink balances.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python <= 3.12: no track parameter
        return shared_memory.SharedMemory(name=name)


def group_worker_entry(
    requests: List[ExecRequest],
    shm_segment_name: str,
    result_queue,
    kernel_backend: Optional[str] = None,
) -> None:
    """Subprocess body for one job group.

    The ``crash_attempts`` test seam fires here and only here: an
    in-process daemon never hard-kills itself, but a subprocess dying
    mid-group is exactly the failure mode the retry path must absorb,
    so the lifecycle tests script it deterministically.
    """
    for req in requests:
        if req.crash_attempts and req.attempt <= req.crash_attempts:
            os._exit(42)
    try:
        from repro.service.batch import execute_group

        results = execute_group(requests, kernel_backend=kernel_backend)
        payload = pickle.dumps(results)
        shm = attach_shm(shm_segment_name)
        try:
            if len(payload) <= shm.size:
                shm.buf[: len(payload)] = payload
                result_queue.put(("shm", len(payload)))
            else:
                result_queue.put(("inline", results))
        finally:
            shm.close()
    except Exception as exc:  # noqa: BLE001 - forwarded to the parent
        result_queue.put(("error", f"{type(exc).__name__}: {exc}"))
