"""High-level distributed QR driver — the Sec. IV case study in one call.

:func:`distributed_qr` packages the full pipeline: distribute the matrix by
rows over a topology, build a reduction service with the chosen gossip
algorithm (``dmGS(PF)``, ``dmGS(PCF)``, ``dmGS(push-sum)``...), run dmGS,
and evaluate the paper's error metrics.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.exceptions import LinalgError
from repro.linalg.distributed import RowDistributedMatrix
from repro.linalg.errors import (
    factorization_error,
    orthogonality_error,
    r_consistency_error,
)
from repro.linalg.gram_schmidt import MODE_TWO_PHASE, DMGSResult, dmgs
from repro.linalg.reduction_service import ExactReductionService, ReductionService
from repro.topology.base import Topology


@dataclasses.dataclass
class DistributedQRResult:
    """Everything Fig. 8 needs, for one factorization run."""

    result: DMGSResult
    factorization_error: float  # ||V - QR||_inf / ||V||_inf
    orthogonality_error: float  # ||I - Q^T Q||_inf
    r_consistency: float  # spread across per-node R copies
    algorithm: str
    epsilon: float

    @property
    def q(self) -> RowDistributedMatrix:
        return self.result.q

    @property
    def r_blocks(self) -> List[np.ndarray]:
        return self.result.r_blocks


def distributed_qr(
    v: np.ndarray,
    topology: Topology,
    *,
    algorithm: str = "push_cancel_flow",
    epsilon: float = 1e-15,
    seed: int = 0,
    max_rounds: Optional[int] = None,
    mode: str = MODE_TWO_PHASE,
    backend: str = "auto",
    stall_rounds: Optional[int] = 60,
) -> DistributedQRResult:
    """Factorize ``v`` over ``topology`` with reduction algorithm ``algorithm``.

    ``algorithm="exact"`` uses the idealized exact reduction service (no
    gossip) — the validation baseline.
    """
    v = np.asarray(v, dtype=np.float64)
    if v.ndim != 2:
        raise LinalgError(f"expected a 2-D matrix, got shape {v.shape}")
    distributed = RowDistributedMatrix.from_matrix(v, topology.n)
    if algorithm == "exact":
        service: object = ExactReductionService(topology)
    else:
        service = ReductionService(
            topology,
            algorithm=algorithm,
            epsilon=epsilon,
            seed=seed,
            max_rounds=max_rounds,
            backend=backend,
            stall_rounds=stall_rounds,
        )
    result = dmgs(distributed, service, mode=mode)  # type: ignore[arg-type]
    return DistributedQRResult(
        result=result,
        factorization_error=factorization_error(v, result.q, result.r_blocks),
        orthogonality_error=orthogonality_error(result.q),
        r_consistency=r_consistency_error(result.r_blocks),
        algorithm=algorithm,
        epsilon=epsilon,
    )
