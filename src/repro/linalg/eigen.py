"""Distributed power-iteration eigensolver (extension feature).

The paper points at distributed eigensolvers built on gossip reductions as
the natural next layer (Straková & Gansterer [9]). This module implements
the simplest representative: power iteration for the dominant eigenpair of
a symmetric matrix whose *columns* are distributed over the nodes.

Each node ``p`` holds a column block ``A_p`` and the matching entries
``x_p`` of the iterate. One iteration:

1. matvec: ``y = sum_p A_p x_p`` — each node contributes its local partial
   (a full-length vector) and a single gossip vector reduction hands every
   node its own estimate of ``y``;
2. each node keeps its slice of ``y`` as the new local iterate and
   normalizes with a gossip norm reduction (sum of local squares);
3. the Rayleigh quotient ``x . A x`` comes out of the same machinery.

Like dmGS, the eigensolver inherits whatever accuracy and fault tolerance
the reduction algorithm underneath provides.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.exceptions import LinalgError
from repro.linalg.distributed import partition_rows
from repro.linalg.reduction_service import ReductionService


@dataclasses.dataclass
class PowerIterationResult:
    """Dominant eigenpair estimate, per the mean of the node-local views."""

    eigenvalue: float
    eigenvector: np.ndarray  # assembled from node-local slices, unit norm
    iterations: int
    residual: float  # ||A x - lambda x||_2 (oracle check)
    eigenvalue_spread: float  # disagreement across nodes' local estimates


def distributed_power_iteration(
    a: np.ndarray,
    service: ReductionService,
    *,
    iterations: int = 50,
    tolerance: float = 1e-12,
    seed: int = 0,
) -> PowerIterationResult:
    """Dominant eigenpair of symmetric ``a`` via gossip-reduction matvecs."""
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise LinalgError(f"expected a square matrix, got shape {a.shape}")
    if not np.allclose(a, a.T, atol=1e-12):
        raise LinalgError("power iteration here requires a symmetric matrix")
    dim = a.shape[0]
    nodes = service.topology.n
    ranges = partition_rows(dim, nodes)
    col_blocks = [a[:, r.start : r.stop] for r in ranges]

    rng = np.random.default_rng(seed)
    x = rng.standard_normal(dim)
    x /= np.linalg.norm(x)
    x_slices: List[np.ndarray] = [x[r.start : r.stop].copy() for r in ranges]

    eigenvalue = 0.0
    eigenvalue_per_node = np.zeros(nodes)
    performed = 0
    for it in range(iterations):
        # Distributed matvec: every node gets its own estimate of y = A x.
        partials = [col_blocks[p] @ x_slices[p] for p in range(nodes)]
        y_estimates = service.all_reduce_sum(partials)  # (nodes, dim)

        # Each node keeps its slice of its own y estimate.
        new_slices = [
            y_estimates[p, ranges[p].start : ranges[p].stop].copy()
            for p in range(nodes)
        ]

        # Distributed normalization + Rayleigh quotient, batched into one
        # two-component reduction: [||y_loc||^2, x_loc . y_loc].
        stat_partials = [
            np.array(
                [
                    float(new_slices[p] @ new_slices[p]),
                    float(x_slices[p] @ new_slices[p]),
                ]
            )
            for p in range(nodes)
        ]
        stats = service.all_reduce_sum(stat_partials)  # (nodes, 2)
        norms = np.sqrt(np.maximum(stats[:, 0], 0.0))
        if np.any(norms == 0.0):
            raise LinalgError("iterate collapsed to zero; is A nilpotent?")
        eigenvalue_per_node = stats[:, 1]
        new_eigenvalue = float(np.mean(eigenvalue_per_node))

        for p in range(nodes):
            x_slices[p] = new_slices[p] / norms[p]

        performed = it + 1
        if it > 0 and abs(new_eigenvalue - eigenvalue) <= tolerance * max(
            1.0, abs(new_eigenvalue)
        ):
            eigenvalue = new_eigenvalue
            break
        eigenvalue = new_eigenvalue
        x = np.concatenate(x_slices)

    vector = np.concatenate(x_slices)
    norm = np.linalg.norm(vector)
    if norm == 0.0:
        raise LinalgError("assembled eigenvector has zero norm")
    vector = vector / norm
    residual = float(np.linalg.norm(a @ vector - eigenvalue * vector))
    spread = float(np.max(eigenvalue_per_node) - np.min(eigenvalue_per_node))
    return PowerIterationResult(
        eigenvalue=eigenvalue,
        eigenvector=vector,
        iterations=performed,
        residual=residual,
        eigenvalue_spread=spread,
    )
