"""Reduction service: distributed sums/dot-products as a building block.

The paper's Sec. IV premise: higher-level distributed matrix algorithms
(dmGS and friends) call an all-to-all reduction wherever a classical code
would compute a sum or dot product, treating the reduction algorithm as a
black box. This service is that black box: given one scalar or vector of
local partial values per node, it runs a gossip SUM reduction over the
topology and hands every node *its own* estimate of the global sum — the
per-node estimates differ slightly (that inconsistency is part of the
distributed algorithm's error behaviour and exactly what Fig. 8 measures).

Each call uses a fresh protocol state but a continuing schedule seed, so a
sequence of reductions (one per Gram-Schmidt step) sees independent random
schedules, reproducibly derived from one master seed.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.algorithms.aggregates import AggregateKind
from repro.exceptions import ConfigurationError
from repro.reduction import ReductionResult, default_round_cap, run_reduction
from repro.topology.base import Topology


@dataclasses.dataclass
class ReductionStats:
    """Bookkeeping across the service's lifetime."""

    calls: int = 0
    total_rounds: int = 0
    total_messages: int = 0
    failed_to_converge: int = 0
    worst_error: float = 0.0


class ReductionService:
    """Runs successive SUM reductions over one fixed topology."""

    def __init__(
        self,
        topology: Topology,
        *,
        algorithm: str = "push_cancel_flow",
        epsilon: float = 1e-15,
        max_rounds: Optional[int] = None,
        seed: int = 0,
        backend: str = "auto",
        stall_rounds: Optional[int] = 60,
        aggregate: str = "average",
    ) -> None:
        """``aggregate`` picks how the sum is realized on the wire:

        - ``"average"`` (default): run an AVERAGE reduction (all weights 1)
          and scale by ``n`` locally. Much better conditioned — every local
          weight stays O(1) instead of O(1/n), so the flow algorithms reach
          the 1e-15 target that Sec. IV reports for dmGS(PCF).
        - ``"sum"``: root-weighted SUM reduction (weight 1 at node 0). The
          textbook encoding; its tiny local weights cost the flow
          algorithms about a digit of accuracy (the SUM curves of
          Figs. 3/6) and are provided for exactly that ablation.
        """
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if aggregate not in ("average", "sum"):
            raise ConfigurationError(
                f"aggregate must be 'average' or 'sum', got {aggregate!r}"
            )
        self._topology = topology
        self._algorithm = algorithm
        self._epsilon = epsilon
        self._max_rounds = (
            max_rounds
            if max_rounds is not None
            else default_round_cap(topology.n, epsilon)
        )
        self._seed = seed
        self._backend = backend
        self._stall_rounds = stall_rounds
        self._aggregate = aggregate
        self._call_index = 0
        self.stats = ReductionStats()

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def algorithm(self) -> str:
        return self._algorithm

    @property
    def epsilon(self) -> float:
        return self._epsilon

    def all_reduce_sum(self, partials: Sequence[np.ndarray]) -> np.ndarray:
        """Gossip all-to-all sum of per-node partial values.

        ``partials[i]`` is node ``i``'s scalar or 1-D vector contribution.
        Returns the (n, d) matrix of per-node sum estimates (d = 1 for
        scalar inputs, returned as shape (n,)).
        """
        if len(partials) != self._topology.n:
            raise ConfigurationError(
                f"expected {self._topology.n} partials, got {len(partials)}"
            )
        data = [np.atleast_1d(np.asarray(p, dtype=np.float64)) for p in partials]
        dims = {len(p) for p in data}
        if len(dims) != 1:
            raise ConfigurationError(f"inconsistent partial dimensions: {dims}")
        dim = dims.pop()
        scalar_input = all(np.ndim(p) == 0 for p in partials)

        payload = [p if dim > 1 else float(p[0]) for p in data]
        n = self._topology.n
        # Accuracy is judged relative to the partials' scale: the true sum
        # may be arbitrarily tiny (near-orthogonal dot products), in which
        # case "epsilon relative to the result" is unattainable in floating
        # point and not what a caller needs anyway.
        data_scale = max(float(np.max(np.abs(np.stack(data)))), 1e-300)
        if self._aggregate == "average":
            kind = AggregateKind.AVERAGE
            error_scale = data_scale
        else:
            kind = AggregateKind.SUM
            error_scale = data_scale * n
        result = run_reduction(
            self._topology,
            payload,
            kind=kind,
            algorithm=self._algorithm,
            epsilon=self._epsilon,
            max_rounds=self._max_rounds,
            schedule_seed=self._derive_seed(),
            backend=self._backend,
            stall_rounds=self._stall_rounds,
            error_scale=error_scale,
        )
        self._record(result)
        estimates = np.asarray(result.estimates)
        if self._aggregate == "average":
            estimates = estimates * float(n)
        if scalar_input and estimates.ndim == 1:
            return estimates
        if estimates.ndim == 1:
            estimates = estimates[:, None]
        return estimates

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _derive_seed(self) -> int:
        # Derive a fresh, reproducible schedule seed per call: two services
        # with the same master seed issue identical schedule sequences
        # (the dmGS(PF) vs dmGS(PCF) comparison relies on this).
        seed = int(
            np.random.SeedSequence([self._seed, self._call_index]).generate_state(1)[0]
        )
        self._call_index += 1
        return seed

    def _record(self, result: ReductionResult) -> None:
        self.stats.calls += 1
        self.stats.total_rounds += result.rounds
        self.stats.total_messages += result.messages_sent
        if not result.converged:
            self.stats.failed_to_converge += 1
        self.stats.worst_error = max(self.stats.worst_error, result.max_error)


class ExactReductionService:
    """A drop-in service computing exact sums (no gossip, no error).

    The idealized limit of the gossip services: dmGS on top of it must match
    the textbook local modified Gram-Schmidt to rounding, which the test
    suite uses to validate the distributed plumbing independently of
    reduction accuracy.
    """

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self.stats = ReductionStats()
        self.algorithm = "exact"
        self.epsilon = 0.0

    @property
    def topology(self) -> Topology:
        return self._topology

    def all_reduce_sum(self, partials: Sequence[np.ndarray]) -> np.ndarray:
        if len(partials) != self._topology.n:
            raise ConfigurationError(
                f"expected {self._topology.n} partials, got {len(partials)}"
            )
        data = np.stack(
            [np.atleast_1d(np.asarray(p, dtype=np.float64)) for p in partials]
        )
        total = data.sum(axis=0)
        self.stats.calls += 1
        scalar_input = all(np.ndim(p) == 0 for p in partials)
        result = np.tile(total, (self._topology.n, 1))
        if scalar_input and result.shape[1] == 1:
            return result[:, 0]
        return result
