"""Reduction service: distributed sums/dot-products as a building block.

The paper's Sec. IV premise: higher-level distributed matrix algorithms
(dmGS and friends) call an all-to-all reduction wherever a classical code
would compute a sum or dot product, treating the reduction algorithm as a
black box. This service is that black box: given one scalar or vector of
local partial values per node, it runs a gossip SUM reduction over the
topology and hands every node *its own* estimate of the global sum — the
per-node estimates differ slightly (that inconsistency is part of the
distributed algorithm's error behaviour and exactly what Fig. 8 measures).

Each call uses a fresh protocol state but a continuing schedule seed, so a
sequence of reductions (one per Gram-Schmidt step) sees independent random
schedules, reproducibly derived from one master seed.

The module-level helpers (:func:`normalize_partials`,
:func:`plan_sum_reduction`, :func:`finalize_sum_estimates`,
:func:`derive_schedule_seed`) are the single source of truth for the
service's input/output contract; :class:`ReductionService`,
:class:`ExactReductionService` and the :mod:`repro.service` daemon all go
through them, which is what makes a daemon job bit-identical to a direct
service call.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.aggregates import AggregateKind
from repro.exceptions import ConfigurationError
from repro.reduction import ReductionResult, default_round_cap, run_reduction
from repro.topology.base import Topology

AGGREGATE_MODES = ("average", "sum")


def normalize_partials(
    partials: Sequence[np.ndarray], n: int
) -> Tuple[np.ndarray, bool]:
    """Validate per-node partials and normalize them to an ``(n, d)`` matrix.

    Returns ``(data, scalar_input)`` where ``scalar_input`` decides the
    result shape of a sum reduction: ``(n,)`` for scalar calls, ``(n, d)``
    for vector calls. The call is *scalar* when ``d == 1`` and at least one
    partial was written as a bare scalar — so a call mixing ``0.0`` and
    ``[0.0]`` is normalized to a scalar reduction instead of letting the
    result shape flip on how any one caller happened to spell zero. A call
    where every partial is a length-1 vector stays a vector call.

    Raises :class:`ConfigurationError` on a wrong partial count, on
    partials of inconsistent dimension, and on partials that are not
    scalars or 1-D vectors.
    """
    if len(partials) != n:
        raise ConfigurationError(
            f"expected {n} partials, got {len(partials)}"
        )
    data: List[np.ndarray] = []
    any_scalar = False
    for i, p in enumerate(partials):
        arr = np.asarray(p, dtype=np.float64)
        if arr.ndim == 0:
            any_scalar = True
        elif arr.ndim != 1:
            raise ConfigurationError(
                f"partial {i} must be a scalar or 1-D vector, "
                f"got shape {arr.shape}"
            )
        data.append(np.atleast_1d(arr))
    dims = {len(p) for p in data}
    if len(dims) != 1:
        raise ConfigurationError(f"inconsistent partial dimensions: {dims}")
    dim = dims.pop()
    scalar_input = dim == 1 and any_scalar
    return np.stack(data), scalar_input


def plan_sum_reduction(
    data: np.ndarray, aggregate: str
) -> Tuple[List[object], AggregateKind, float]:
    """Map normalized ``(n, d)`` partials onto a wire-level reduction.

    Returns ``(payload, kind, error_scale)``: the per-node payload values
    handed to :func:`repro.reduction.run_reduction`, the aggregate kind
    realizing the sum (see :class:`ReductionService` for the two modes),
    and the accuracy-oracle normalization. Accuracy is judged relative to
    the partials' scale: the true sum may be arbitrarily tiny
    (near-orthogonal dot products), in which case "epsilon relative to the
    result" is unattainable in floating point and not what a caller needs
    anyway.
    """
    if aggregate not in AGGREGATE_MODES:
        raise ConfigurationError(
            f"aggregate must be 'average' or 'sum', got {aggregate!r}"
        )
    n, dim = data.shape
    payload = [p if dim > 1 else float(p[0]) for p in data]
    data_scale = max(float(np.max(np.abs(data))), 1e-300)
    if aggregate == "average":
        return payload, AggregateKind.AVERAGE, data_scale
    return payload, AggregateKind.SUM, data_scale * n


def finalize_sum_estimates(
    estimates: np.ndarray, *, n: int, aggregate: str, scalar_input: bool
) -> np.ndarray:
    """Shape a reduction's raw per-node estimates into the service result.

    ``"average"``-mode estimates are scaled by ``n`` locally (the sum is
    realized as an average of unit-weight nodes); scalar calls return
    shape ``(n,)``, vector calls ``(n, d)``.
    """
    estimates = np.asarray(estimates)
    if aggregate == "average":
        estimates = estimates * float(n)
    if scalar_input and estimates.ndim == 1:
        return estimates
    if estimates.ndim == 1:
        estimates = estimates[:, None]
    return estimates


def derive_schedule_seed(master_seed: int, call_index: int) -> int:
    """The schedule seed of call ``call_index`` in a service's sequence.

    Two services (or a service and a daemon client) sharing a master seed
    issue identical schedule-seed sequences — the dmGS(PF) vs dmGS(PCF)
    comparison relies on this pairing.
    """
    return int(
        np.random.SeedSequence([master_seed, call_index]).generate_state(1)[0]
    )


@dataclasses.dataclass
class ReductionStats:
    """Bookkeeping across the service's lifetime."""

    calls: int = 0
    total_rounds: int = 0
    total_messages: int = 0
    failed_to_converge: int = 0
    worst_error: float = 0.0
    #: Calls that raised instead of returning a result. Failed calls do
    #: NOT advance the schedule-seed stream, so a caller that catches the
    #: exception and retries stays seed-aligned with a peer service that
    #: never failed.
    failed_calls: int = 0


class ReductionService:
    """Runs successive SUM reductions over one fixed topology."""

    def __init__(
        self,
        topology: Topology,
        *,
        algorithm: str = "push_cancel_flow",
        epsilon: float = 1e-15,
        max_rounds: Optional[int] = None,
        seed: int = 0,
        backend: str = "auto",
        stall_rounds: Optional[int] = 60,
        aggregate: str = "average",
    ) -> None:
        """``aggregate`` picks how the sum is realized on the wire:

        - ``"average"`` (default): run an AVERAGE reduction (all weights 1)
          and scale by ``n`` locally. Much better conditioned — every local
          weight stays O(1) instead of O(1/n), so the flow algorithms reach
          the 1e-15 target that Sec. IV reports for dmGS(PCF).
        - ``"sum"``: root-weighted SUM reduction (weight 1 at node 0). The
          textbook encoding; its tiny local weights cost the flow
          algorithms about a digit of accuracy (the SUM curves of
          Figs. 3/6) and are provided for exactly that ablation.
        """
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        if aggregate not in AGGREGATE_MODES:
            raise ConfigurationError(
                f"aggregate must be 'average' or 'sum', got {aggregate!r}"
            )
        self._topology = topology
        self._algorithm = algorithm
        self._epsilon = epsilon
        self._max_rounds = (
            max_rounds
            if max_rounds is not None
            else default_round_cap(topology.n, epsilon)
        )
        self._seed = seed
        self._backend = backend
        self._stall_rounds = stall_rounds
        self._aggregate = aggregate
        self._call_index = 0
        self.stats = ReductionStats()

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def algorithm(self) -> str:
        return self._algorithm

    @property
    def epsilon(self) -> float:
        return self._epsilon

    def all_reduce_sum(self, partials: Sequence[np.ndarray]) -> np.ndarray:
        """Gossip all-to-all sum of per-node partial values.

        ``partials[i]`` is node ``i``'s scalar or 1-D vector contribution.
        Returns the (n, d) matrix of per-node sum estimates (d = 1 for
        scalar inputs, returned as shape (n,); a call mixing bare scalars
        and length-1 vectors is normalized to a scalar call).
        """
        n = self._topology.n
        data, scalar_input = normalize_partials(partials, n)
        payload, kind, error_scale = plan_sum_reduction(data, self._aggregate)
        # Derive the schedule seed for this call position but advance the
        # stream only after the reduction completes: a call that raises
        # consumes no seed, so a caught-and-retried failure cannot desync
        # the schedule streams of two services sharing a master seed.
        try:
            result = run_reduction(
                self._topology,
                payload,
                kind=kind,
                algorithm=self._algorithm,
                epsilon=self._epsilon,
                max_rounds=self._max_rounds,
                schedule_seed=derive_schedule_seed(self._seed, self._call_index),
                backend=self._backend,
                stall_rounds=self._stall_rounds,
                error_scale=error_scale,
            )
        except Exception:
            self.stats.failed_calls += 1
            raise
        self._call_index += 1
        self._record(result)
        return finalize_sum_estimates(
            result.estimates,
            n=n,
            aggregate=self._aggregate,
            scalar_input=scalar_input,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _record(self, result: ReductionResult) -> None:
        self.stats.calls += 1
        self.stats.total_rounds += result.rounds
        self.stats.total_messages += result.messages_sent
        if not result.converged:
            self.stats.failed_to_converge += 1
        self.stats.worst_error = max(self.stats.worst_error, result.max_error)


class ExactReductionService:
    """A drop-in service computing exact sums (no gossip, no error).

    The idealized limit of the gossip services: dmGS on top of it must match
    the textbook local modified Gram-Schmidt to rounding, which the test
    suite uses to validate the distributed plumbing independently of
    reduction accuracy.
    """

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self.stats = ReductionStats()
        self.algorithm = "exact"
        self.epsilon = 0.0

    @property
    def topology(self) -> Topology:
        return self._topology

    def all_reduce_sum(self, partials: Sequence[np.ndarray]) -> np.ndarray:
        # Same validation/normalization contract as the gossip service:
        # mixed-dimension partials are a ConfigurationError here too (not
        # a raw np.stack ValueError), and scalar-vs-vector result shaping
        # follows the one shared rule.
        data, scalar_input = normalize_partials(partials, self._topology.n)
        total = data.sum(axis=0)
        self.stats.calls += 1
        result = np.tile(total, (self._topology.n, 1))
        if scalar_input and result.shape[1] == 1:
            return result[:, 0]
        return result
