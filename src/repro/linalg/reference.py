"""Reference (non-distributed) QR implementations for validation.

``local_mgs`` is the textbook modified Gram-Schmidt dmGS derives from
(Golub & Van Loan); tests compare dmGS with an exact reduction service
against it, and compare both against NumPy's Householder QR up to column
sign conventions.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import LinalgError


def local_mgs(v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Modified Gram-Schmidt QR: ``V = Q R`` with R upper triangular."""
    v = np.array(v, dtype=np.float64, copy=True)
    if v.ndim != 2:
        raise LinalgError(f"expected a 2-D matrix, got shape {v.shape}")
    rows, m = v.shape
    if rows < m:
        raise LinalgError(f"QR of a wide matrix is not supported: {v.shape}")
    q = v
    r = np.zeros((m, m))
    for k in range(m):
        r[k, k] = np.linalg.norm(q[:, k])
        if r[k, k] == 0.0:
            raise LinalgError(f"rank deficient at column {k}")
        q[:, k] /= r[k, k]
        if k + 1 < m:
            r[k, k + 1 :] = q[:, k + 1 :].T @ q[:, k]
            q[:, k + 1 :] -= np.outer(q[:, k], r[k, k + 1 :])
    return q, r


def align_signs(q: np.ndarray, r: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Flip column/row signs so R has a nonnegative diagonal.

    QR is unique up to diagonal sign for full-rank input; canonicalizing
    makes factorizations from different algorithms directly comparable.
    """
    signs = np.sign(np.diag(r))
    signs[signs == 0] = 1.0
    return q * signs[None, :], r * signs[:, None]
