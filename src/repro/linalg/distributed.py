"""Row-distributed matrices.

dmGS distributes the input matrix ``V (rows x m)`` across the ``N`` nodes by
rows (one or more contiguous rows per node; the paper's Fig. 8 experiments
use exactly one row per node, ``rows = N``, but dmGS "works for all
rows >= N"). Each node only ever touches its own row block; everything
global goes through the reduction service.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import LinalgError


def partition_rows(rows: int, nodes: int) -> List[range]:
    """Contiguous near-even row ranges, one per node (every node nonempty)."""
    if nodes < 1:
        raise LinalgError(f"node count must be >= 1, got {nodes}")
    if rows < nodes:
        raise LinalgError(
            f"need at least one row per node: rows={rows} < nodes={nodes}"
        )
    base = rows // nodes
    extra = rows % nodes
    ranges: List[range] = []
    start = 0
    for p in range(nodes):
        size = base + (1 if p < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


class RowDistributedMatrix:
    """A dense matrix split into per-node row blocks.

    The blocks are genuinely separate arrays — mutating one node's block
    cannot touch another's, preserving the distributed-memory discipline in
    simulation.
    """

    def __init__(self, blocks: Sequence[np.ndarray]) -> None:
        if not blocks:
            raise LinalgError("at least one block required")
        cols = {b.shape[1] for b in blocks if b.ndim == 2}
        if len(cols) != 1 or any(b.ndim != 2 for b in blocks):
            raise LinalgError("all blocks must be 2-D with equal column count")
        self._blocks = [np.array(b, dtype=np.float64, copy=True) for b in blocks]
        self._m = cols.pop()

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, nodes: int) -> "RowDistributedMatrix":
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise LinalgError(f"expected a 2-D matrix, got shape {matrix.shape}")
        ranges = partition_rows(matrix.shape[0], nodes)
        return cls([matrix[r.start : r.stop] for r in ranges])

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> int:
        return len(self._blocks)

    @property
    def rows(self) -> int:
        return sum(b.shape[0] for b in self._blocks)

    @property
    def cols(self) -> int:
        return self._m

    def block(self, node: int) -> np.ndarray:
        """Node ``node``'s row block (the live array — node-local state)."""
        return self._blocks[node]

    def row_owner(self) -> np.ndarray:
        """Map global row index -> owning node."""
        owner = np.empty(self.rows, dtype=np.int64)
        start = 0
        for p, b in enumerate(self._blocks):
            owner[start : start + b.shape[0]] = p
            start += b.shape[0]
        return owner

    def gather(self) -> np.ndarray:
        """Assemble the full matrix (an *oracle* view, for validation only)."""
        return np.vstack(self._blocks)

    def copy(self) -> "RowDistributedMatrix":
        return RowDistributedMatrix(self._blocks)

    def local_gram_partial(self, node: int, col_a: int, cols_b: Sequence[int]) -> np.ndarray:
        """Node-local partial dot products ``V_loc[:, a]^T V_loc[:, b]``."""
        block = self._blocks[node]
        if not cols_b:
            return np.zeros(0)
        return block[:, list(cols_b)].T @ block[:, col_a]
