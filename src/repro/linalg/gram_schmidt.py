"""dmGS — fully distributed modified Gram-Schmidt QR (Straková et al. [11]).

The input matrix ``V (rows x m)`` is row-distributed; the algorithm is plain
modified Gram-Schmidt except that *every* norm and dot product is computed
by a gossip all-to-all reduction (the service from
:mod:`repro.linalg.reduction_service`):

    for k = 1..m:
        r_kk ~ ||v_k||_2           -> one reduction (sum of local squares)
        q_k  = v_k / r_kk          -> local
        r_kj ~ q_k . v_j, j > k    -> ONE batched vector reduction
        v_j -= r_kj q_k            -> local

Every node ends up with its own row block of ``Q`` and its own full copy of
``R`` built from its *local* reduction estimates — per-node copies of R
differ within the reduction accuracy, which is precisely how reduction-level
error propagates into the factorization error that Fig. 8 measures.

Two communication modes:

- ``two_phase`` (default, faithful to dmGS): separate norm and dot-product
  reductions per step (two reductions per column).
- ``fused``: a single batched reduction per step carrying
  ``[v_k.v_k, v_k.v_j ...]``; ``r_kj = (v_k.v_j)/r_kk`` is formed locally.
  Mathematically identical in exact arithmetic, halves the communication —
  an ablation on the paper's "iterative nature ... for saving communication
  costs" remark.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List

import numpy as np

from repro.exceptions import LinalgError
from repro.linalg.distributed import RowDistributedMatrix
from repro.linalg.reduction_service import ReductionService

MODE_TWO_PHASE = "two_phase"
MODE_FUSED = "fused"
_MODES = (MODE_TWO_PHASE, MODE_FUSED)


@dataclasses.dataclass
class DMGSResult:
    """Distributed QR factorization output."""

    q: RowDistributedMatrix  # row-distributed Q (rows x m)
    r_blocks: List[np.ndarray]  # per-node (m x m) local copies of R
    reductions: int  # reductions performed
    total_rounds: int  # gossip rounds summed over all reductions
    failed_reductions: int  # reductions that hit their cap before epsilon

    def r_of(self, node: int) -> np.ndarray:
        return self.r_blocks[node]

    def mean_r(self) -> np.ndarray:
        """Average of the per-node R copies (diagnostic only)."""
        return np.mean(np.stack(self.r_blocks), axis=0)


def dmgs(
    v: RowDistributedMatrix,
    service: ReductionService,
    *,
    mode: str = MODE_TWO_PHASE,
) -> DMGSResult:
    """Factorize a row-distributed matrix: ``V = Q R``.

    ``v`` is not modified; the returned ``q`` holds the orthonormalized
    blocks. ``service.topology.n`` must equal ``v.nodes``.
    """
    if mode not in _MODES:
        raise LinalgError(f"unknown dmGS mode {mode!r}; expected one of {_MODES}")
    if service.topology.n != v.nodes:
        raise LinalgError(
            f"topology has {service.topology.n} nodes but matrix is "
            f"distributed over {v.nodes}"
        )
    n_nodes = v.nodes
    m = v.cols
    if v.rows < m:
        raise LinalgError(
            f"QR of a wide matrix is not supported: rows={v.rows} < cols={m}"
        )

    work = v.copy()
    r_blocks = [np.zeros((m, m)) for _ in range(n_nodes)]
    calls_before = service.stats.calls
    rounds_before = service.stats.total_rounds
    failed_before = service.stats.failed_to_converge

    for k in range(m):
        if mode == MODE_TWO_PHASE:
            _step_two_phase(work, r_blocks, service, k, m)
        else:
            _step_fused(work, r_blocks, service, k, m)

    return DMGSResult(
        q=work,
        r_blocks=r_blocks,
        reductions=service.stats.calls - calls_before,
        total_rounds=service.stats.total_rounds - rounds_before,
        failed_reductions=service.stats.failed_to_converge - failed_before,
    )


# ----------------------------------------------------------------------
# Step implementations
# ----------------------------------------------------------------------
def _local_diag(block: np.ndarray, k: int) -> float:
    return float(block[:, k] @ block[:, k])


def _normalize_column(
    work: RowDistributedMatrix,
    r_blocks: List[np.ndarray],
    k: int,
    norm_sq_estimates: np.ndarray,
) -> None:
    """Each node normalizes column k with ITS OWN norm estimate."""
    for p in range(work.nodes):
        s = float(norm_sq_estimates[p])
        if not math.isfinite(s):
            raise LinalgError(
                f"norm reduction for column {k} returned non-finite value at "
                f"node {p}: {s!r}"
            )
        if s <= 0.0:
            raise LinalgError(
                f"matrix is numerically rank deficient at column {k} "
                f"(node {p} estimated ||v_k||^2 = {s})"
            )
        r_kk = math.sqrt(s)
        r_blocks[p][k, k] = r_kk
        work.block(p)[:, k] /= r_kk


def _apply_projections(
    work: RowDistributedMatrix,
    r_blocks: List[np.ndarray],
    k: int,
    m: int,
    dot_estimates: np.ndarray,
) -> None:
    """Each node subtracts projections using ITS OWN dot estimates."""
    cols = list(range(k + 1, m))
    for p in range(work.nodes):
        block = work.block(p)
        r_row = np.atleast_1d(dot_estimates[p])
        r_blocks[p][k, cols] = r_row
        block[:, cols] -= np.outer(block[:, k], r_row)


def _step_two_phase(
    work: RowDistributedMatrix,
    r_blocks: List[np.ndarray],
    service: ReductionService,
    k: int,
    m: int,
) -> None:
    norm_partials = [
        np.array([_local_diag(work.block(p), k)]) for p in range(work.nodes)
    ]
    norm_estimates = service.all_reduce_sum(norm_partials)[:, 0]
    _normalize_column(work, r_blocks, k, norm_estimates)

    if k + 1 >= m:
        return
    cols = list(range(k + 1, m))
    dot_partials = [
        work.block(p)[:, cols].T @ work.block(p)[:, k] for p in range(work.nodes)
    ]
    dot_estimates = service.all_reduce_sum(dot_partials)
    _apply_projections(work, r_blocks, k, m, dot_estimates)


def _step_fused(
    work: RowDistributedMatrix,
    r_blocks: List[np.ndarray],
    service: ReductionService,
    k: int,
    m: int,
) -> None:
    cols = list(range(k + 1, m))
    partials = []
    for p in range(work.nodes):
        block = work.block(p)
        head = np.array([_local_diag(block, k)])
        tail = block[:, cols].T @ block[:, k] if cols else np.zeros(0)
        partials.append(np.concatenate([head, tail]))
    estimates = service.all_reduce_sum(partials)
    _normalize_column(work, r_blocks, k, estimates[:, 0])
    if not cols:
        return
    # r_kj = (v_k . v_j) / r_kk, formed from each node's own estimates.
    dot_estimates = np.stack(
        [estimates[p, 1:] / r_blocks[p][k, k] for p in range(work.nodes)]
    )
    _apply_projections(work, r_blocks, k, m, dot_estimates)
