"""Factorization and orthogonality error metrics for distributed QR.

The paper's Fig. 8 metric is the relative factorization error
``||V - QR||_inf / ||V||_inf`` with the matrix infinity norm (max absolute
row sum). In the distributed setting every node holds its own copy of R, so
``QR`` is reconstructed row-wise: the rows owned by node ``p`` are rebuilt
with *node p's* R — per-node reduction inconsistencies therefore show up in
the error exactly as they would for a downstream consumer of the local
results.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import LinalgError
from repro.linalg.distributed import RowDistributedMatrix


def reconstruct(
    q: RowDistributedMatrix,
    r_blocks: Sequence[np.ndarray],
    *,
    reference_node: Optional[int] = 0,
) -> np.ndarray:
    """The product ``Q R`` as a downstream consumer would form it.

    ``reference_node=p`` (default node 0) multiplies every Q row block with
    *node p's* R copy — the natural model for "the factorization result" a
    consumer reads off one node, and the metric under which per-node
    reduction inconsistency becomes visible (Fig. 8). ``reference_node=None``
    instead uses each row's owner-local R, which measures only each node's
    internal consistency (tiny by construction, a plumbing sanity check).
    """
    if len(r_blocks) != q.nodes:
        raise LinalgError(
            f"expected {q.nodes} R blocks, got {len(r_blocks)}"
        )
    parts: List[np.ndarray] = []
    for p in range(q.nodes):
        r = r_blocks[p if reference_node is None else reference_node]
        parts.append(q.block(p) @ r)
    return np.vstack(parts)


def factorization_error(
    v: np.ndarray,
    q: RowDistributedMatrix,
    r_blocks: Sequence[np.ndarray],
    *,
    reference_node: Optional[int] = 0,
) -> float:
    """``||V - QR||_inf / ||V||_inf`` (Fig. 8's y-axis)."""
    v = np.asarray(v, dtype=np.float64)
    if v.shape != (q.rows, q.cols):
        raise LinalgError(
            f"V shape {v.shape} does not match Q shape {(q.rows, q.cols)}"
        )
    vhat = reconstruct(q, r_blocks, reference_node=reference_node)
    denominator = np.linalg.norm(v, ord=np.inf)
    if denominator == 0.0:
        raise LinalgError("||V||_inf is zero; relative error undefined")
    return float(np.linalg.norm(v - vhat, ord=np.inf) / denominator)


def orthogonality_error(q: RowDistributedMatrix) -> float:
    """``||I - Q^T Q||_inf`` over the gathered Q (oracle validation view)."""
    full = q.gather()
    m = full.shape[1]
    gram = full.T @ full
    return float(np.linalg.norm(np.eye(m) - gram, ord=np.inf))


def r_consistency_error(r_blocks: Sequence[np.ndarray]) -> float:
    """Max entrywise spread (max - min) across the per-node R copies.

    Quantifies how much the per-node local reduction results disagree —
    exactly zero for an exact reduction, growing with the reduction
    algorithm's achievable accuracy.
    """
    if not r_blocks:
        raise LinalgError("no R blocks given")
    stack = np.stack(r_blocks)
    return float(np.max(stack.max(axis=0) - stack.min(axis=0)))
