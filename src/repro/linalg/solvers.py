"""Distributed linear solvers on gossip reductions (extension).

The paper's closing argument is that fault-tolerant reductions make
naturally fault-tolerant distributed *matrix computations*: "all commonly
required functionality in numerical linear algebra is based on the
computation of sums and dot products". dmGS (Sec. IV) is the paper's
example; this module adds the next classic layer — iterative linear
solvers:

- **Jacobi iteration** — one distributed matvec per sweep;
- **conjugate gradients (CG)** — one matvec plus two dot products per
  iteration, all through the reduction service.

The matrix is column-distributed (node ``p`` holds the column block
``A[:, cols(p)]`` and the matching entries of ``x`` and ``b``); a matvec is
one batched vector reduction of the per-node partials ``A_p x_p``, after
which every node keeps its slice of *its own* estimate of the product.
Like dmGS, the solvers treat the reduction algorithm as a plug-in and
inherit its accuracy and fault tolerance.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.exceptions import LinalgError
from repro.linalg.distributed import partition_rows
from repro.linalg.reduction_service import ReductionService


@dataclasses.dataclass
class SolveResult:
    """Outcome of a distributed linear solve."""

    x: np.ndarray  # assembled solution (oracle view)
    iterations: int
    residual: float  # ||A x - b|| / ||b|| (oracle check)
    converged: bool
    solution_spread: float  # max disagreement between node-local slices'
    # duplicated scalar quantities (CG: the final residual-norm estimates)


class _ColumnDistributedOperator:
    """Column blocks of A plus the reduction-backed matvec."""

    def __init__(self, a: np.ndarray, service: ReductionService) -> None:
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise LinalgError(f"expected a square matrix, got shape {a.shape}")
        self.dim = a.shape[0]
        self.service = service
        self.nodes = service.topology.n
        self.ranges = partition_rows(self.dim, self.nodes)
        self.blocks = [a[:, r.start : r.stop] for r in self.ranges]

    def matvec_slices(self, x_slices: List[np.ndarray]) -> List[np.ndarray]:
        """Distributed ``y = A x``: every node returns its slice of its own
        estimate of the product."""
        partials = [self.blocks[p] @ x_slices[p] for p in range(self.nodes)]
        estimates = self.service.all_reduce_sum(partials)  # (nodes, dim)
        return [
            estimates[p, self.ranges[p].start : self.ranges[p].stop].copy()
            for p in range(self.nodes)
        ]

    def dot(self, a_slices: List[np.ndarray], b_slices: List[np.ndarray]) -> np.ndarray:
        """Distributed dot product: per-node estimates of ``a . b``."""
        partials = [
            np.array([float(a_slices[p] @ b_slices[p])])
            for p in range(self.nodes)
        ]
        return self.service.all_reduce_sum(partials)[:, 0]

    def assemble(self, slices: List[np.ndarray]) -> np.ndarray:
        return np.concatenate(slices)

    def scatter(self, vector: np.ndarray) -> List[np.ndarray]:
        return [vector[r.start : r.stop].copy() for r in self.ranges]


def _finish(
    op: _ColumnDistributedOperator,
    a: np.ndarray,
    b: np.ndarray,
    x_slices: List[np.ndarray],
    iterations: int,
    tolerance: float,
    spread: float,
) -> SolveResult:
    x = op.assemble(x_slices)
    norm_b = float(np.linalg.norm(b))
    if norm_b == 0.0:
        norm_b = 1.0
    residual = float(np.linalg.norm(a @ x - b) / norm_b)
    return SolveResult(
        x=x,
        iterations=iterations,
        residual=residual,
        converged=residual <= tolerance,
        solution_spread=spread,
    )


def distributed_jacobi(
    a: np.ndarray,
    b: np.ndarray,
    service: ReductionService,
    *,
    iterations: int = 200,
    tolerance: float = 1e-10,
) -> SolveResult:
    """Jacobi iteration with reduction-backed matvecs.

    Requires strict diagonal dominance for guaranteed convergence (checked).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    op = _ColumnDistributedOperator(a, service)
    if b.shape != (op.dim,):
        raise LinalgError(f"b must have shape ({op.dim},), got {b.shape}")
    diag = np.diag(a)
    if np.any(diag == 0.0):
        raise LinalgError("Jacobi requires a nonzero diagonal")
    off_diag_sums = np.sum(np.abs(a), axis=1) - np.abs(diag)
    if np.any(np.abs(diag) <= off_diag_sums):
        raise LinalgError(
            "Jacobi requires strict diagonal dominance; use distributed_cg "
            "for general SPD systems"
        )

    b_slices = op.scatter(b)
    d_slices = op.scatter(diag)
    x_slices = [np.zeros(len(r)) for r in op.ranges]

    performed = 0
    for it in range(iterations):
        y_slices = op.matvec_slices(x_slices)  # A x
        new_slices = [
            x_slices[p]
            + (b_slices[p] - y_slices[p]) / d_slices[p]
            for p in range(op.nodes)
        ]
        # Local convergence heuristic: largest update step.
        step = max(
            float(np.max(np.abs(new_slices[p] - x_slices[p])))
            if len(new_slices[p])
            else 0.0
            for p in range(op.nodes)
        )
        x_slices = new_slices
        performed = it + 1
        if step <= tolerance:
            break
    return _finish(op, a, b, x_slices, performed, tolerance, spread=0.0)


def distributed_cg(
    a: np.ndarray,
    b: np.ndarray,
    service: ReductionService,
    *,
    iterations: Optional[int] = None,
    tolerance: float = 1e-10,
) -> SolveResult:
    """Conjugate gradients with reduction-backed matvecs and dot products.

    ``a`` must be symmetric positive definite. Every node runs CG on its
    slice using its *own* estimates of the global scalars (alpha, beta,
    residual norms) — the per-node estimates differ within the reduction
    accuracy, exactly as dmGS's per-node R copies do.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise LinalgError(f"expected a square matrix, got shape {a.shape}")
    if not np.allclose(a, a.T, atol=1e-12):
        raise LinalgError("CG requires a symmetric matrix")
    op = _ColumnDistributedOperator(a, service)
    if b.shape != (op.dim,):
        raise LinalgError(f"b must have shape ({op.dim},), got {b.shape}")
    max_iterations = iterations if iterations is not None else 2 * op.dim

    x_slices = [np.zeros(len(r)) for r in op.ranges]
    r_slices = op.scatter(b)  # r = b - A*0
    p_slices = [r.copy() for r in r_slices]
    # Per-node estimates of r . r (each node uses its own).
    rr = op.dot(r_slices, r_slices)
    norm_b_sq = float(b @ b) if float(b @ b) > 0 else 1.0

    performed = 0
    for it in range(max_iterations):
        ap_slices = op.matvec_slices(p_slices)
        p_ap = op.dot(p_slices, ap_slices)
        if np.any(p_ap == 0.0):
            break
        alpha = rr / p_ap  # per-node alphas
        for p in range(op.nodes):
            x_slices[p] = x_slices[p] + alpha[p] * p_slices[p]
            r_slices[p] = r_slices[p] - alpha[p] * ap_slices[p]
        rr_new = op.dot(r_slices, r_slices)
        performed = it + 1
        if np.all(rr_new <= (tolerance ** 2) * norm_b_sq):
            rr = rr_new
            break
        beta = rr_new / rr
        for p in range(op.nodes):
            p_slices[p] = r_slices[p] + beta[p] * p_slices[p]
        rr = rr_new

    spread = float(np.max(rr) - np.min(rr)) if len(rr) else 0.0
    return _finish(op, a, b, x_slices, performed, tolerance, spread=spread)
