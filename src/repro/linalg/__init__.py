"""Distributed linear algebra on gossip reductions (paper Sec. IV).

dmGS — the fully distributed modified Gram-Schmidt QR — plus a distributed
power-iteration eigensolver, both treating the reduction algorithm as a
pluggable black box so its accuracy and fault tolerance carry upward.
"""

from repro.linalg.distributed import RowDistributedMatrix, partition_rows
from repro.linalg.eigen import PowerIterationResult, distributed_power_iteration
from repro.linalg.errors import (
    factorization_error,
    orthogonality_error,
    r_consistency_error,
    reconstruct,
)
from repro.linalg.gram_schmidt import (
    MODE_FUSED,
    MODE_TWO_PHASE,
    DMGSResult,
    dmgs,
)
from repro.linalg.qr import DistributedQRResult, distributed_qr
from repro.linalg.reduction_service import (
    ExactReductionService,
    ReductionService,
    ReductionStats,
)
from repro.linalg.reference import align_signs, local_mgs
from repro.linalg.solvers import SolveResult, distributed_cg, distributed_jacobi

__all__ = [
    "RowDistributedMatrix",
    "partition_rows",
    "ReductionService",
    "ExactReductionService",
    "ReductionStats",
    "dmgs",
    "DMGSResult",
    "MODE_TWO_PHASE",
    "MODE_FUSED",
    "distributed_qr",
    "DistributedQRResult",
    "factorization_error",
    "orthogonality_error",
    "r_consistency_error",
    "reconstruct",
    "local_mgs",
    "align_signs",
    "distributed_power_iteration",
    "distributed_cg",
    "distributed_jacobi",
    "SolveResult",
    "PowerIterationResult",
]
