"""Hardened push-cancel-flow (PCF-H) — this reproduction's extension.

Node-level wrapper around :class:`~repro.algorithms.flow_edge_hardened.
HardenedEdgeState`; see that module for what is hardened and why. The
initiator of each edge is the endpoint with the smaller node id.

Relative to Fig. 5 PCF, the hardened variant:

- cannot deadlock under message latency (no role-adoption race — roles are
  derived from the era counter);
- conserves mass *exactly* through every cancellation under arbitrary
  message loss, latency, and cross-traffic (frozen-value-verified
  catch-up), eliminating the frozen-corruption hazard for all fault types
  that do not alter payload bits;
- retains PCF's accuracy and failure-handling behaviour: flows are still
  periodically cancelled, so they stay estimate-sized and link exclusion
  causes no convergence fallback.

The wire format carries one extra mass pair (the frozen value) per
message — a constant-factor overhead, in exchange for operation outside
the synchronous execution model the paper's formulation assumes.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.algorithms.base import GossipAlgorithm
from repro.algorithms.flow_edge_hardened import HardenedEdgeState, PCFHPayload
from repro.algorithms.state import MassPair
from repro.exceptions import ConfigurationError

VARIANT_EFFICIENT = "efficient"
VARIANT_ROBUST = "robust"
_VARIANTS = (VARIANT_EFFICIENT, VARIANT_ROBUST)


class PushCancelFlowHardened(GossipAlgorithm):
    """Per-node hardened PCF state machine."""

    def __init__(
        self,
        node_id: int,
        neighbors: Sequence[int],
        initial: MassPair,
        *,
        variant: str = VARIANT_EFFICIENT,
    ) -> None:
        super().__init__(node_id, neighbors, initial)
        if variant not in _VARIANTS:
            raise ConfigurationError(
                f"unknown PCF-H variant {variant!r}; expected one of {_VARIANTS}"
            )
        self._variant = variant
        zero = initial.zero_like()
        self._edges: Dict[int, HardenedEdgeState] = {
            j: HardenedEdgeState(zero, initiator=node_id < j) for j in neighbors
        }
        self._phi: MassPair = zero.copy()
        self._cancellations = 0
        self._catch_ups = 0

    @property
    def variant(self) -> str:
        return self._variant

    @property
    def cancellations(self) -> int:
        return self._cancellations

    @property
    def catch_ups(self) -> int:
        return self._catch_ups

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def make_message(self, neighbor: int) -> PCFHPayload:
        self._require_neighbor(neighbor)
        half = self.estimate_pair().half()
        edge = self._edges[neighbor]
        edge.add_to_active(half)
        if self._variant == VARIANT_EFFICIENT:
            self._phi = self._phi + half
        return edge.payload()

    def on_receive(self, sender: int, payload: PCFHPayload) -> None:
        self._require_neighbor(sender)
        effect = self._edges[sender].receive(payload)
        if self._variant == VARIANT_EFFICIENT:
            self._phi = self._phi + effect.phi_delta_efficient
        else:
            self._phi = self._phi + effect.phi_delta_robust
        if effect.cancelled:
            self._cancellations += 1
        if effect.swapped:
            self._catch_ups += 1

    def estimate_pair(self) -> MassPair:
        if self._variant == VARIANT_EFFICIENT:
            return self._initial - self._phi
        total = self._phi.copy()
        for edge in self._edges.values():
            total = total + edge.total_flow()
        return self._initial - total

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def on_link_failed(self, neighbor: int) -> None:
        """Exclude a permanently failed link (same semantics as PCF)."""
        self._require_neighbor(neighbor)
        edge = self._edges.pop(neighbor)
        if self._variant == VARIANT_EFFICIENT:
            self._phi = self._phi - edge.total_flow()
        self._remove_neighbor(neighbor)

    def on_link_restored(self, neighbor: int) -> None:
        """Re-add a restored link with fresh edge state (same as PCF).

        The initiator role is re-derived from the node ids, so both
        endpoints restart the handshake from a consistent era 0.
        """
        self._insert_neighbor(neighbor)
        self._edges[neighbor] = HardenedEdgeState(
            self._initial.zero_like(), initiator=self._node_id < neighbor
        )
        self._edges = {j: self._edges[j] for j in self._neighbors}

    def _reset_join_state(self) -> None:
        zero = self._initial.zero_like()
        self._edges = {
            j: HardenedEdgeState(zero, initiator=self._node_id < j)
            for j in self._neighbors
        }
        self._phi = zero.copy()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def local_flows(self) -> Dict[int, MassPair]:
        return {j: e.total_flow() for j, e in self._edges.items()}

    def conserved_mass(self) -> MassPair:
        return self._initial.copy()

    def max_flow_magnitude(self) -> float:
        if not self._edges:
            return 0.0
        return max(e.max_magnitude() for e in self._edges.values())

    def edge_state(self, neighbor: int) -> HardenedEdgeState:
        """Direct access for white-box tests of the handshake."""
        return self._edges[neighbor]

    def inject_flow_bit_flip(
        self, neighbor: int, bit: int, *, slot: int = 0, flip_weight: bool = False
    ) -> None:
        """Flip one bit of a stored flow variable (memory soft error)."""
        self._require_neighbor(neighbor)
        self._edges[neighbor].inject_flow_bit_flip(
            slot, bit, flip_weight=flip_weight
        )
