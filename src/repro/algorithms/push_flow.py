"""The push-flow algorithm (PF) — Fig. 1 of the paper.

PF replaces push-sum's mass transfers by *flows*: for every neighbor ``j``
node ``i`` keeps a flow variable ``f_{i,j}`` recording the net mass it has
pushed toward ``j``. The local data is never mutated; the current estimate is

    e_i = v_i(0) - sum_{j in N_i} f_{i,j}.

A send first performs the "virtual send" ``f_{i,k} += e_i / 2`` and then
physically transmits the *entire* flow variable ``f_{i,k}``; the receiver
overwrites ``f_{k,i} = -f_{i,k}``. Flow conservation (``f_{i,j} = -f_{j,i}``)
is thus a purely local, continuously re-established property, and it implies
global mass conservation — the source of PF's fault tolerance: lost or
corrupted messages are healed by the next successful exchange, and a
permanently failed link is excluded by zeroing its flow variables.

Two estimate-bookkeeping variants are provided (Sec. II-B discusses both):

- ``recompute`` (default): ``e_i`` is recomputed from all flow variables at
  every use — the faithful Fig. 1 formulation.
- ``incremental``: the sum of flows is maintained in a single running
  variable ``phi_i`` "for efficiency reasons"; the paper notes this variant
  suffers the same accuracy problem since the updates themselves involve the
  linearly growing flows.

Both share PF's fundamental flaw: at convergence the flows take arbitrary,
execution-dependent values (growing with ``n`` on e.g. the bus network), so
the estimate subtraction cancels catastrophically (Fig. 3) and zeroing flows
on failure throws the computation back to the start (Fig. 4).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

from repro.algorithms.base import GossipAlgorithm
from repro.algorithms.state import MassPair
from repro.exceptions import ConfigurationError

VARIANT_RECOMPUTE = "recompute"
VARIANT_INCREMENTAL = "incremental"
_VARIANTS = (VARIANT_RECOMPUTE, VARIANT_INCREMENTAL)


@dataclasses.dataclass(frozen=True)
class FlowPayload:
    """The sender's entire flow variable toward the receiver."""

    flow: MassPair


class PushFlow(GossipAlgorithm):
    """Per-node push-flow state machine (Fig. 1)."""

    def __init__(
        self,
        node_id: int,
        neighbors: Sequence[int],
        initial: MassPair,
        *,
        variant: str = VARIANT_RECOMPUTE,
    ) -> None:
        super().__init__(node_id, neighbors, initial)
        if variant not in _VARIANTS:
            raise ConfigurationError(
                f"unknown PF variant {variant!r}; expected one of {_VARIANTS}"
            )
        self._variant = variant
        zero = initial.zero_like()
        self._flows: Dict[int, MassPair] = {j: zero.copy() for j in neighbors}
        # Running sum of flows, only consulted by the incremental variant.
        self._phi: MassPair = zero.copy()

    @property
    def variant(self) -> str:
        return self._variant

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def make_message(self, neighbor: int) -> FlowPayload:
        self._require_neighbor(neighbor)
        half = self.estimate_pair().half()
        self._flows[neighbor] = self._flows[neighbor] + half
        if self._variant == VARIANT_INCREMENTAL:
            self._phi = self._phi + half
        return FlowPayload(flow=self._flows[neighbor].copy())

    def on_receive(self, sender: int, payload: FlowPayload) -> None:
        self._require_neighbor(sender)
        new_flow = -payload.flow
        if self._variant == VARIANT_INCREMENTAL:
            # phi <- phi - old + new; this very update mixes the potentially
            # huge old/new flow values into phi, which is why the single-
            # variable trick does not rescue PF's accuracy (Sec. II-B).
            self._phi = self._phi - self._flows[sender] + new_flow
        self._flows[sender] = new_flow

    def estimate_pair(self) -> MassPair:
        if self._variant == VARIANT_INCREMENTAL:
            return self._initial - self._phi
        total = self._initial.zero_like()
        for flow in self._flows.values():
            total = total + flow
        return self._initial - total

    # ------------------------------------------------------------------
    # Failure handling (Sec. II-C)
    # ------------------------------------------------------------------
    def on_link_failed(self, neighbor: int) -> None:
        """Exclude a permanently failed link by zeroing its flow.

        The local estimate jumps by the flow's (arbitrary!) value — the
        restart behaviour demonstrated in Fig. 4.
        """
        self._require_neighbor(neighbor)
        if self._variant == VARIANT_INCREMENTAL:
            self._phi = self._phi - self._flows[neighbor]
        del self._flows[neighbor]
        self._remove_neighbor(neighbor)

    def on_link_restored(self, neighbor: int) -> None:
        """Re-add a restored link with an exact-zero flow.

        The flow dict is rebuilt in sorted-neighbor order so the estimate's
        summation order stays identical to the vectorized engines' slot
        order (dict insertion order is summation order in ``recompute``).
        """
        self._insert_neighbor(neighbor)
        self._flows[neighbor] = self._initial.zero_like()
        self._flows = {j: self._flows[j] for j in self._neighbors}

    def _reset_join_state(self) -> None:
        zero = self._initial.zero_like()
        self._flows = {j: zero.copy() for j in self._neighbors}
        self._phi = zero.copy()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def local_flows(self) -> Dict[int, MassPair]:
        return {j: f.copy() for j, f in self._flows.items()}

    def conserved_mass(self) -> MassPair:
        # Flows cancel pairwise across intact edges, so the initial data is
        # each node's share of the conserved global mass.
        return self._initial.copy()

    def max_flow_magnitude(self) -> float:
        """Largest flow magnitude — the quantity that grows with n in PF."""
        if not self._flows:
            return 0.0
        return max(f.magnitude() for f in self._flows.values())

    # ------------------------------------------------------------------
    # Fault-injection hook (memory soft errors)
    # ------------------------------------------------------------------
    def inject_flow_bit_flip(
        self, neighbor: int, bit: int, *, flip_weight: bool = False
    ) -> None:
        """Flip one bit of the *stored* flow variable toward ``neighbor``.

        Models a soft error in node memory (as opposed to in-flight message
        corruption, handled by :mod:`repro.faults.bit_flip`). In the
        ``recompute`` variant the corruption heals at the next exchange on
        the edge; in the ``incremental`` variant the running flow-sum was
        built from the *pre-flip* value, so the next repair bakes the
        discrepancy into ``phi`` permanently — the same weakness the
        efficient PCF variant has (Sec. III-A).
        """
        from repro.util.float_bits import flip_bit

        self._require_neighbor(neighbor)
        flow = self._flows[neighbor]
        if flip_weight:
            corrupted = MassPair(flow.value, flip_bit(flow.weight, bit))
        elif flow.is_vector:
            values = flow.value
            values[0] = flip_bit(float(values[0]), bit)
            corrupted = MassPair(values, flow.weight)
        else:
            corrupted = MassPair(flip_bit(float(flow.value), bit), flow.weight)
        self._flows[neighbor] = corrupted
