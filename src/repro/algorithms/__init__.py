"""Gossip reduction algorithms: push-sum, push-flow, push-cancel-flow.

This package is the paper's subject matter. :class:`PushSum` is the fragile
baseline; :class:`PushFlow` (PF, Fig. 1) adds flow-based fault tolerance but
suffers scale-dependent inaccuracy and restart-like failure handling;
:class:`PushCancelFlow` (PCF, Fig. 5) — the paper's contribution — fixes
both while preserving PF's fault tolerance.
"""

from repro.algorithms.aggregates import (
    AggregateKind,
    initial_mass_pairs,
    initial_values,
    initial_weights,
    relative_error,
    true_aggregate,
)
from repro.algorithms.base import GossipAlgorithm, payload_mass_pairs
from repro.algorithms.flow_edge import PCFEdgeState, PCFPayload, ReceiveEffect
from repro.algorithms.push_cancel_flow import PushCancelFlow
from repro.algorithms.push_cancel_flow_hardened import PushCancelFlowHardened
from repro.algorithms.flow_edge_hardened import HardenedEdgeState, PCFHPayload
from repro.algorithms.push_flow import FlowPayload, PushFlow
from repro.algorithms.push_sum import PushSum, PushSumPayload
from repro.algorithms.registry import ALGORITHMS, factory, instantiate
from repro.algorithms.state import MassPair, total_mass, zero_pair

__all__ = [
    "AggregateKind",
    "GossipAlgorithm",
    "MassPair",
    "PushSum",
    "PushSumPayload",
    "PushFlow",
    "FlowPayload",
    "PushCancelFlow",
    "PushCancelFlowHardened",
    "HardenedEdgeState",
    "PCFHPayload",
    "PCFEdgeState",
    "PCFPayload",
    "ReceiveEffect",
    "ALGORITHMS",
    "factory",
    "instantiate",
    "initial_mass_pairs",
    "initial_values",
    "initial_weights",
    "relative_error",
    "true_aggregate",
    "total_mass",
    "zero_pair",
    "payload_mass_pairs",
]
