"""The gossip-reduction algorithm interface.

An algorithm instance is the *local* protocol state of one node. It is a pure
message-driven state machine, fully decoupled from transport: the engines
(:mod:`repro.simulation`) and the linalg reduction service drive it through
exactly four entry points:

- :meth:`GossipAlgorithm.make_message` — the node was scheduled to gossip;
  perform the local "virtual send" bookkeeping and return the payload for
  the chosen neighbor.
- :meth:`GossipAlgorithm.on_receive` — a (possibly corrupted) payload arrived.
- :meth:`GossipAlgorithm.estimate` / :meth:`estimate_pair` — the node's
  current approximation of the global aggregate.
- :meth:`GossipAlgorithm.on_link_failed` — the failure detector reported a
  permanently broken link; exclude it algorithmically (Sec. II-C).

Payloads are algorithm-specific frozen dataclasses; fault injectors treat
them as opaque float containers via :func:`payload_mass_pairs`.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple

from repro.algorithms.state import MassPair, Value
from repro.exceptions import ProtocolError


class GossipAlgorithm(abc.ABC):
    """Local protocol state of a single node.

    Parameters
    ----------
    node_id:
        This node's identifier.
    neighbors:
        The initial neighborhood ``N_i`` (nonempty for ``n > 1``).
    initial:
        The node's initial mass ``(x_i, w_i)``.
    """

    def __init__(
        self, node_id: int, neighbors: Sequence[int], initial: MassPair
    ) -> None:
        if len(set(neighbors)) != len(neighbors):
            raise ProtocolError(f"duplicate neighbors for node {node_id}")
        if node_id in neighbors:
            raise ProtocolError(f"node {node_id} cannot neighbor itself")
        self._node_id = int(node_id)
        self._neighbors: List[int] = [int(j) for j in neighbors]
        self._initial = initial.copy()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_id(self) -> int:
        return self._node_id

    @property
    def neighbors(self) -> Tuple[int, ...]:
        """Currently live neighbors (shrinks as links fail)."""
        return tuple(self._neighbors)

    @property
    def initial_mass(self) -> MassPair:
        return self._initial.copy()

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def make_message(self, neighbor: int) -> object:
        """Perform local send bookkeeping and return the payload for ``neighbor``.

        Engines guarantee ``neighbor in self.neighbors``. Mutates local state
        (the "virtual send" of the flow algorithms) *before* the physical
        message is handed to the transport — this ordering is what makes the
        flow algorithms tolerate the loss of that very message.
        """

    @abc.abstractmethod
    def on_receive(self, sender: int, payload: object) -> None:
        """Fold a received payload into local state.

        ``payload`` may be corrupted by fault injection; implementations must
        not crash on any float content (inf/NaN included) — recovery happens
        through subsequent exchanges, not through validation here.
        """

    @abc.abstractmethod
    def estimate_pair(self) -> MassPair:
        """The local estimate as an un-divided ``(value, weight)`` pair."""

    def estimate(self) -> Value:
        """The local estimate of the global aggregate (``value / weight``)."""
        return self.estimate_pair().ratio()

    def on_link_failed(self, neighbor: int) -> None:
        """Handle a permanent failure of the link to ``neighbor``.

        Default: remove the neighbor from the live set. Flow-based algorithms
        additionally zero/absorb the per-edge flow state (the paper's
        "setting the corresponding flow variables to zero").
        """
        self._remove_neighbor(neighbor)

    def on_link_restored(self, neighbor: int) -> None:
        """Handle restoration of a previously excluded link to ``neighbor``.

        Dynamic-topology runs call this when a downed edge comes back up or
        a departed neighbor rejoins. Default: re-insert the neighbor into
        the live set (in sorted position, so neighbor iteration order keeps
        matching the vectorized engines' slot order). Flow-based algorithms
        additionally create a fresh exact-zero flow toward the neighbor.
        """
        self._insert_neighbor(neighbor)

    def reset_for_join(self, neighbors: Sequence[int]) -> None:
        """Rejoin the network with a fresh protocol state.

        A joining node enters like a brand-new participant: its mass is the
        initial pair again and every flow starts at exact zero (the join
        semantics of the dynamic-aggregation literature). ``neighbors`` is
        the set of *currently live* links the engine grants the node.
        """
        if len(set(neighbors)) != len(neighbors):
            raise ProtocolError(f"duplicate neighbors for node {self._node_id}")
        if self._node_id in neighbors:
            raise ProtocolError(
                f"node {self._node_id} cannot neighbor itself"
            )
        self._neighbors = sorted(int(j) for j in neighbors)
        self._reset_join_state()

    def _reset_join_state(self) -> None:
        """Protocol-specific state reset on rejoin (default: nothing)."""

    # ------------------------------------------------------------------
    # Conservation diagnostics (used by invariants/tests, not the protocol)
    # ------------------------------------------------------------------
    def local_flows(self) -> Dict[int, MassPair]:
        """Per-neighbor total outgoing flow; empty for flow-less protocols."""
        return {}

    def conserved_mass(self) -> MassPair:
        """The node's share of the globally conserved mass.

        For push-sum this is the current local pair; for flow algorithms it
        is the initial pair (flows cancel pairwise across edges). Tests sum
        this over all nodes and compare against the initial total.
        """
        return self.estimate_pair()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _require_neighbor(self, neighbor: int) -> None:
        if neighbor not in self._neighbors:
            raise ProtocolError(
                f"node {self._node_id}: {neighbor} is not a live neighbor "
                f"(live set: {self._neighbors})"
            )

    def _remove_neighbor(self, neighbor: int) -> None:
        self._require_neighbor(neighbor)
        self._neighbors.remove(neighbor)

    def _insert_neighbor(self, neighbor: int) -> None:
        neighbor = int(neighbor)
        if neighbor == self._node_id:
            raise ProtocolError(
                f"node {self._node_id} cannot neighbor itself"
            )
        if neighbor in self._neighbors:
            raise ProtocolError(
                f"node {self._node_id}: {neighbor} is already a live neighbor"
            )
        # Keep the live set sorted (Topology hands out sorted neighbor
        # tuples, and the vectorized engines' slot order depends on it).
        self._neighbors.append(neighbor)
        self._neighbors.sort()

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(node={self._node_id}, "
            f"neighbors={len(self._neighbors)})"
        )


def payload_mass_pairs(payload: object) -> List[str]:
    """Names of the MassPair-typed fields of a payload dataclass.

    Fault injectors use this to corrupt payload floats generically without
    knowing each protocol's message layout.
    """
    import dataclasses

    if not dataclasses.is_dataclass(payload):
        raise ProtocolError(
            f"payloads must be dataclasses, got {type(payload).__name__}"
        )
    return [
        f.name
        for f in dataclasses.fields(payload)
        if isinstance(getattr(payload, f.name), MassPair)
    ]
