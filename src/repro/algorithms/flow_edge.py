"""The push-cancel-flow per-edge state machine (Fig. 5, lines 6–29).

For every live neighbor, a PCF node keeps *two* flow variables instead of
PF's one. At any time one of them is **active** — it runs plain push-flow —
and the other is **passive** — the two endpoints cooperatively drive it to
exactly zero ("cancellation") and then swap the roles. Two control variables
coordinate this per ordered edge: ``c`` (which slot is active) and ``r``
(how many times the roles have swapped, an era counter).

The cancellation handshake proceeds in three steps, each keyed off the
*exact* float content of the received flows (see
:meth:`~repro.algorithms.state.MassPair.exactly_equals` for why exactness is
sound here):

1. **cancel** — I observe the passive pair is conserved (``g_p = -f_p``)
   while our era counters agree: I zero my passive copy and advance my era.
   The zeroed value stays absorbed in my flow-sum ``phi`` so my estimate does
   not move; my peer holds the exactly opposite value, so globally nothing
   changes either.
2. **swap** — I observe my peer's passive is already zero and its era is one
   ahead of mine: I zero my own passive copy, catch up the era, and make the
   (now all-zero) pair the new active slot. My old active — holding the
   accumulated flow values — becomes passive and will be cancelled in the
   next era.
3. **adopt** — my peer swapped before me (its ``c`` differs while eras
   agree): I adopt its role assignment.

If the passive pair is *not* conserved (message loss, bit flip, or we are
mid-handshake) and I am not ahead in eras, the passive flow is repaired
exactly like an active one — this is what restores conservation after soft
errors, inherited unchanged from PF.

Because cancellation zeroes each flow once per era, flow magnitudes stay of
the order of the recent estimates (whose value/weight ratio converges to the
target aggregate) instead of growing without bound like PF's — the single
property from which both PCF headline results (machine-precision accuracy at
scale, and failure handling without fallback) follow.

The state machine is deliberately its own class so its invariants (era skew
bounded by one, conservation restoration, estimate-neutrality of
cancellation) can be unit- and property-tested without any networking.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.algorithms.state import MassPair


@dataclasses.dataclass(frozen=True)
class PCFPayload:
    """Both flow copies plus the control variables for one ordered edge."""

    flow_a: MassPair
    flow_b: MassPair
    active: int  # which slot (0/1) the sender considers active
    era: int  # the sender's role-swap counter


@dataclasses.dataclass(frozen=True)
class ReceiveEffect:
    """Estimate-bookkeeping deltas produced by processing one message.

    The node applies exactly one of these to its ``phi`` depending on its
    variant:

    - ``phi_delta_efficient``: the incremental flow-sum correction
      (Fig. 5 lines 11/23) used when ``phi`` tracks the sum of all flows.
    - ``phi_delta_robust``: the values absorbed at cancellation instants,
      used when the estimate is recomputed from the flows and ``phi`` only
      accumulates cancelled mass (the bit-flip-tolerant variant).
    """

    phi_delta_efficient: MassPair
    phi_delta_robust: MassPair
    cancelled: bool
    swapped: bool
    adopted: bool


class PCFEdgeState:
    """State of one ordered edge ``(i -> j)`` at node ``i``."""

    __slots__ = ("_flows", "_active", "_era")

    def __init__(self, zero: MassPair) -> None:
        self._flows: List[MassPair] = [zero.copy(), zero.copy()]
        self._active = 0
        self._era = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        return self._active

    @property
    def era(self) -> int:
        return self._era

    def flow(self, slot: int) -> MassPair:
        return self._flows[slot].copy()

    def active_flow(self) -> MassPair:
        return self._flows[self._active].copy()

    def passive_flow(self) -> MassPair:
        return self._flows[1 - self._active].copy()

    def total_flow(self) -> MassPair:
        """Sum of both slots — the edge's contribution to the flow sum."""
        return self._flows[0] + self._flows[1]

    def max_magnitude(self) -> float:
        return max(self._flows[0].magnitude(), self._flows[1].magnitude())

    # ------------------------------------------------------------------
    # Send path (Fig. 5 lines 30–32)
    # ------------------------------------------------------------------
    def add_to_active(self, half: MassPair) -> None:
        """The virtual send: fold ``e_i / 2`` into the active flow."""
        self._flows[self._active] = self._flows[self._active] + half

    def payload(self) -> PCFPayload:
        return PCFPayload(
            flow_a=self._flows[0].copy(),
            flow_b=self._flows[1].copy(),
            active=self._active,
            era=self._era,
        )

    # ------------------------------------------------------------------
    # Receive path (Fig. 5 lines 6–29)
    # ------------------------------------------------------------------
    def receive(self, payload: PCFPayload) -> ReceiveEffect:
        """Process the peer's edge state; returns estimate bookkeeping deltas."""
        received = (payload.flow_a, payload.flow_b)
        peer_active = payload.active
        peer_era = payload.era

        zero = self._flows[0].zero_like()

        # Defensive validation: a corrupted control field (bit-flipped in
        # flight) can carry a slot index outside {0, 1} or a negative era.
        # Such a message is syntactically invalid and is dropped whole —
        # equivalent to message loss, which the protocol tolerates anyway.
        if peer_active not in (0, 1) or not isinstance(peer_era, int) or peer_era < 0:
            return ReceiveEffect(
                phi_delta_efficient=zero.copy(),
                phi_delta_robust=zero.copy(),
                cancelled=False,
                swapped=False,
                adopted=False,
            )
        eff = zero.copy()
        rob = zero.copy()
        cancelled = False
        swapped = False
        adopted = False

        # (adopt) the peer swapped roles before us.
        if self._active != peer_active and self._era == peer_era:
            self._active = peer_active
            adopted = True

        if self._active == peer_active:
            act = self._active
            pas = 1 - act

            # Active slot: plain push-flow repair. phi gets the exact
            # -(old + received) correction so that, for the efficient
            # variant, phi keeps tracking the sum of flows bit-for-bit with
            # the update applied to the flow itself.
            eff = eff - (self._flows[act] + received[act])
            self._flows[act] = -received[act]

            passive_conserved = received[pas].exactly_equals(-self._flows[pas])
            if passive_conserved and self._era == peer_era:
                # (cancel) — start retiring this pair.
                rob = rob + self._flows[pas]
                self._flows[pas] = zero.copy()
                self._era += 1
                cancelled = True
            elif received[pas].is_zero() and self._era + 1 == peer_era:
                # (swap) — peer already cancelled; catch up and swap roles.
                rob = rob + self._flows[pas]
                self._flows[pas] = zero.copy()
                self._era += 1
                self._active = pas
                swapped = True
            elif self._era <= peer_era:
                # (repair) — conservation violated (fault or mid-handshake):
                # treat the passive flow exactly like an active one.
                eff = eff - (self._flows[pas] + received[pas])
                self._flows[pas] = -received[pas]

        return ReceiveEffect(
            phi_delta_efficient=eff,
            phi_delta_robust=rob,
            cancelled=cancelled,
            swapped=swapped,
            adopted=adopted,
        )

    # ------------------------------------------------------------------
    # Fault-injection hook (memory soft errors)
    # ------------------------------------------------------------------
    def inject_flow_bit_flip(
        self, slot: int, bit: int, *, flip_weight: bool = False
    ) -> None:
        """Flip one bit of the stored flow in ``slot`` (memory soft error)."""
        from repro.util.float_bits import flip_bit

        flow = self._flows[slot]
        if flip_weight:
            corrupted = MassPair(flow.value, flip_bit(flow.weight, bit))
        elif flow.is_vector:
            values = flow.value
            values[0] = flip_bit(float(values[0]), bit)
            corrupted = MassPair(values, flow.weight)
        else:
            corrupted = MassPair(flip_bit(float(flow.value), bit), flow.weight)
        self._flows[slot] = corrupted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PCFEdgeState(active={self._active}, era={self._era}, "
            f"f0={self._flows[0]!r}, f1={self._flows[1]!r})"
        )
