"""Mass pairs — the ``(value, weight)`` state unit of push-sum-style protocols.

Every quantity exchanged by push-sum, push-flow and push-cancel-flow is a
pair ``(value, weight)``: the value part carries (a share of) the data being
aggregated, the scalar weight part carries (a share of) the normalization.
The local estimate of the global aggregate is always ``value / weight``
(Figs. 1 and 5 of the paper: ``e_i(1) / e_i(2)``).

Values may be scalars or 1-D ndarrays: a vector-valued reduction computes
many aggregates at once under a single weight, which the distributed QR
(dmGS) uses to batch all dot products of one Gram-Schmidt step into one
reduction.

MassPair instances are treated as immutable; all arithmetic returns new
pairs. The vector case copies the underlying array on construction so
aliasing bugs cannot couple two nodes' states through a shared buffer —
exactly the kind of accidental "shared memory" a distributed-system
simulation must never have.
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

Value = Union[float, np.ndarray]


class MassPair:
    """An immutable ``(value, weight)`` pair with exact-arithmetic helpers."""

    __slots__ = ("_value", "_weight", "_vector")

    def __init__(self, value: Value, weight: float) -> None:
        if isinstance(value, np.ndarray):
            if value.ndim != 1:
                raise ValueError(
                    f"vector values must be 1-D, got shape {value.shape}"
                )
            self._value: Value = value.astype(np.float64, copy=True)
            self._vector = True
        else:
            self._value = float(value)
            self._vector = False
        self._weight = float(weight)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def value(self) -> Value:
        if self._vector:
            # Return a copy: callers must not be able to mutate our state.
            return np.array(self._value, copy=True)
        return self._value

    @property
    def weight(self) -> float:
        return self._weight

    @property
    def is_vector(self) -> bool:
        return self._vector

    @property
    def dimension(self) -> int:
        """Length of the value part (1 for scalars)."""
        return len(self._value) if self._vector else 1

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "MassPair") -> "MassPair":
        self._check_compatible(other)
        return MassPair(self._value + other._value, self._weight + other._weight)

    def __sub__(self, other: "MassPair") -> "MassPair":
        self._check_compatible(other)
        return MassPair(self._value - other._value, self._weight - other._weight)

    def __neg__(self) -> "MassPair":
        return MassPair(-self._value, -self._weight)

    def half(self) -> "MassPair":
        """Halving by a power of two — lossless in IEEE-754 for all normal
        values (subnormals can lose their lowest mantissa bit; protocol
        quantities live many orders of magnitude above that range)."""
        return MassPair(self._value * 0.5, self._weight * 0.5)

    def scaled(self, factor: float) -> "MassPair":
        return MassPair(self._value * factor, self._weight * factor)

    def zero_like(self) -> "MassPair":
        """A zero pair of the same shape."""
        if self._vector:
            return MassPair(np.zeros_like(self._value), 0.0)
        return MassPair(0.0, 0.0)

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def exactly_equals(self, other: "MassPair") -> bool:
        """Bitwise float equality — the PCF cancellation predicate.

        The PCF handshake cancels a passive flow only when the two endpoint
        copies are *exactly* opposite (``f_{j,i} = -f_{i,j}``, Fig. 5 line
        13). Exact equality is achievable because a repair assigns the exact
        negation of the received copy and passive flows are never augmented
        in between; approximate comparison here would silently change the
        protocol.
        """
        if self._vector != other._vector:
            return False
        if self._weight != other._weight:
            return False
        if self._vector:
            return bool(np.array_equal(self._value, other._value))
        return self._value == other._value

    def is_zero(self) -> bool:
        if self._vector:
            return bool(np.all(self._value == 0.0)) and self._weight == 0.0
        return self._value == 0.0 and self._weight == 0.0

    def is_finite(self) -> bool:
        """False when a soft error (bit flip) injected inf/NaN."""
        if self._vector:
            return bool(np.all(np.isfinite(self._value))) and np.isfinite(
                self._weight
            )
        return bool(np.isfinite(self._value) and np.isfinite(self._weight))

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def ratio(self) -> Value:
        """The aggregate estimate ``value / weight``.

        A zero (or negative-after-fault) weight yields ``inf``/``nan`` rather
        than raising: nodes with no normalization mass yet simply have an
        undefined estimate, which error metrics treat as maximal error.
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            if self._vector:
                return np.asarray(self._value) / self._weight
            if self._weight == 0.0:
                if self._value == 0.0:
                    return float("nan")
                return float("inf") if self._value > 0 else float("-inf")
            return self._value / self._weight

    def magnitude(self) -> float:
        """Max-norm of the pair — used to track flow-variable growth."""
        if self._vector:
            value_mag = float(np.max(np.abs(self._value))) if self.dimension else 0.0
        else:
            value_mag = abs(self._value)
        return max(value_mag, abs(self._weight))

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def as_tuple(self) -> Tuple[Value, float]:
        return (self.value, self._weight)

    def copy(self) -> "MassPair":
        return MassPair(self._value, self._weight)

    def _check_compatible(self, other: "MassPair") -> None:
        if not isinstance(other, MassPair):
            raise TypeError(f"expected MassPair, got {type(other).__name__}")
        if self._vector != other._vector:
            raise ValueError("cannot combine scalar and vector mass pairs")
        if self._vector and len(self._value) != len(other._value):
            raise ValueError(
                f"dimension mismatch: {len(self._value)} vs {len(other._value)}"
            )

    def __repr__(self) -> str:
        return f"MassPair(value={self._value!r}, weight={self._weight!r})"


def zero_pair(dimension: int = 1) -> MassPair:
    """A zero mass pair: scalar for ``dimension == 1``, vector otherwise."""
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    if dimension == 1:
        return MassPair(0.0, 0.0)
    return MassPair(np.zeros(dimension), 0.0)


def total_mass(pairs) -> MassPair:
    """Sum of an iterable of mass pairs (the conserved global quantity)."""
    iterator = iter(pairs)
    try:
        total = next(iterator).copy()
    except StopIteration:
        raise ValueError("total_mass of an empty iterable is undefined") from None
    for pair in iterator:
        total = total + pair
    return total
