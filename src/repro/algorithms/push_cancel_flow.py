"""The push-cancel-flow algorithm (PCF) — the paper's main contribution (Fig. 5).

PCF operates exactly like push-flow on its *active* flows (so it inherits
PF's convergence, complexity and fault-tolerance properties) while a second,
*passive* flow per edge is cooperatively cancelled to zero and the roles are
swapped — see :mod:`repro.algorithms.flow_edge` for the handshake. The net
effect is that every flow variable is periodically reset, so flow magnitudes
track the (converging) estimates instead of growing with the system size.
That single property yields both headline improvements:

- **accuracy**: the estimate no longer subtracts huge, mutually cancelling
  flow values, so the target accuracy (1e-15 in the paper's Fig. 6) is
  reached at every scale;
- **cheap permanent-failure handling**: zeroing a failed link's flows
  perturbs the local estimate by a quantity whose value/weight ratio is
  already close to the target aggregate, so convergence continues with no
  fall-back (Fig. 7 vs Fig. 4).

Two variants (Sec. III-A, last paragraph):

- ``efficient`` (default, the Fig. 5 listing): the flow sum ``phi_i`` is
  maintained incrementally and the estimate is ``v_i - phi_i``. Cheapest,
  but a bit flip in a stored flow variable corrupts ``phi``'s bookkeeping
  permanently.
- ``robust``: flows are never folded into ``phi`` incrementally; ``phi``
  only absorbs a flow's value at its cancellation instant and the estimate
  is ``v_i - phi_i - sum_j (f_{i,j,1} + f_{i,j,2})``. This re-reads the
  flows at every estimate, so a flipped flow is healed by the next exchange
  exactly as in PF — "much more robust ... due to the different behavior of
  the flow variables" (the flows stay small, so this outer summation does
  not reintroduce PF's cancellation problem).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.algorithms.base import GossipAlgorithm
from repro.algorithms.flow_edge import PCFEdgeState, PCFPayload
from repro.algorithms.state import MassPair
from repro.exceptions import ConfigurationError

VARIANT_EFFICIENT = "efficient"
VARIANT_ROBUST = "robust"
_VARIANTS = (VARIANT_EFFICIENT, VARIANT_ROBUST)


class PushCancelFlow(GossipAlgorithm):
    """Per-node push-cancel-flow state machine (Fig. 5)."""

    def __init__(
        self,
        node_id: int,
        neighbors: Sequence[int],
        initial: MassPair,
        *,
        variant: str = VARIANT_EFFICIENT,
    ) -> None:
        super().__init__(node_id, neighbors, initial)
        if variant not in _VARIANTS:
            raise ConfigurationError(
                f"unknown PCF variant {variant!r}; expected one of {_VARIANTS}"
            )
        self._variant = variant
        zero = initial.zero_like()
        self._edges: Dict[int, PCFEdgeState] = {
            j: PCFEdgeState(zero) for j in neighbors
        }
        self._phi: MassPair = zero.copy()
        # Handshake statistics, useful for experiments/diagnostics.
        self._cancellations = 0
        self._swaps = 0

    @property
    def variant(self) -> str:
        return self._variant

    @property
    def cancellations(self) -> int:
        """How many cancel events this node performed (diagnostics)."""
        return self._cancellations

    @property
    def swaps(self) -> int:
        """How many role swaps this node performed (diagnostics)."""
        return self._swaps

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def make_message(self, neighbor: int) -> PCFPayload:
        self._require_neighbor(neighbor)
        half = self.estimate_pair().half()
        edge = self._edges[neighbor]
        edge.add_to_active(half)
        if self._variant == VARIANT_EFFICIENT:
            self._phi = self._phi + half
        return edge.payload()

    def on_receive(self, sender: int, payload: PCFPayload) -> None:
        self._require_neighbor(sender)
        effect = self._edges[sender].receive(payload)
        if self._variant == VARIANT_EFFICIENT:
            self._phi = self._phi + effect.phi_delta_efficient
        else:
            self._phi = self._phi + effect.phi_delta_robust
        if effect.cancelled:
            self._cancellations += 1
        if effect.swapped:
            self._swaps += 1

    def estimate_pair(self) -> MassPair:
        if self._variant == VARIANT_EFFICIENT:
            return self._initial - self._phi
        total = self._phi.copy()
        for edge in self._edges.values():
            total = total + edge.total_flow()
        return self._initial - total

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def on_link_failed(self, neighbor: int) -> None:
        """Exclude a permanently failed link by dropping its flow state.

        The local estimate changes by the edge's current total flow — in PCF
        a quantity whose value/weight ratio tracks the (converged) estimates,
        so unlike PF this causes no fall-back (Fig. 7).
        """
        self._require_neighbor(neighbor)
        edge = self._edges.pop(neighbor)
        if self._variant == VARIANT_EFFICIENT:
            # Remove the edge's live flows from the incrementally tracked
            # sum; previously cancelled mass stays in phi (it cancels with
            # the peer's phi globally).
            self._phi = self._phi - edge.total_flow()
        self._remove_neighbor(neighbor)

    def on_link_restored(self, neighbor: int) -> None:
        """Re-add a restored link with fresh (all-zero) edge state.

        The edge dict is rebuilt in sorted-neighbor order so the robust
        variant's estimate summation keeps matching the vectorized slot
        order.
        """
        self._insert_neighbor(neighbor)
        self._edges[neighbor] = PCFEdgeState(self._initial.zero_like())
        self._edges = {j: self._edges[j] for j in self._neighbors}

    def _reset_join_state(self) -> None:
        zero = self._initial.zero_like()
        self._edges = {j: PCFEdgeState(zero) for j in self._neighbors}
        self._phi = zero.copy()

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def local_flows(self) -> Dict[int, MassPair]:
        return {j: e.total_flow() for j, e in self._edges.items()}

    def conserved_mass(self) -> MassPair:
        return self._initial.copy()

    def max_flow_magnitude(self) -> float:
        """Largest stored flow magnitude — stays O(estimate) in PCF."""
        if not self._edges:
            return 0.0
        return max(e.max_magnitude() for e in self._edges.values())

    def edge_state(self, neighbor: int) -> PCFEdgeState:
        """Direct access for white-box tests of the handshake."""
        return self._edges[neighbor]

    # ------------------------------------------------------------------
    # Fault-injection hook (memory soft errors)
    # ------------------------------------------------------------------
    def inject_flow_bit_flip(
        self, neighbor: int, bit: int, *, slot: int = 0, flip_weight: bool = False
    ) -> None:
        """Flip one bit of a *stored* flow variable (memory soft error).

        The ``robust`` variant recomputes its estimate from the flows and
        heals such corruption at the next exchange on the edge; the
        ``efficient`` variant's incremental ``phi`` bookkeeping was built
        from the pre-flip value, so the discrepancy becomes a permanent
        estimate offset — the trade-off Sec. III-A spells out.
        """
        self._require_neighbor(neighbor)
        self._edges[neighbor].inject_flow_bit_flip(
            slot, bit, flip_weight=flip_weight
        )
