"""The push-sum algorithm (Kempe, Dobra & Gehrke, FOCS 2003).

The non-fault-tolerant baseline: each gossip step the node keeps half of its
``(value, weight)`` mass and ships the other half to a uniformly random
neighbor; receivers fold incoming mass into their own. Correctness rests on
*mass conservation* — ``sum_i v_i(t) = sum_i v_i(0)`` — a global property
destroyed by any message loss, duplication or corruption (Sec. II-A), which
is precisely why the paper's flow algorithms exist.

Push-sum is numerically benign (no growing intermediate quantities), so it
serves as the accuracy gold standard among the gossip protocols
(Sec. II-B: "basic algorithms like the push-sum algorithm ... meet the
accuracy requirement").
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.algorithms.base import GossipAlgorithm
from repro.algorithms.state import MassPair


@dataclasses.dataclass(frozen=True)
class PushSumPayload:
    """Half of the sender's current mass."""

    mass: MassPair


class PushSum(GossipAlgorithm):
    """Per-node push-sum state machine."""

    def __init__(
        self, node_id: int, neighbors: Sequence[int], initial: MassPair
    ) -> None:
        super().__init__(node_id, neighbors, initial)
        self._mass = initial.copy()

    def make_message(self, neighbor: int) -> PushSumPayload:
        self._require_neighbor(neighbor)
        half = self._mass.half()
        # Keep one half locally, send the other. If the transport drops the
        # message this half of the mass is gone forever — the protocol has
        # no mechanism to notice, which the fault-injection tests exercise.
        self._mass = half
        return PushSumPayload(mass=half)

    def on_receive(self, sender: int, payload: PushSumPayload) -> None:
        self._require_neighbor(sender)
        self._mass = self._mass + payload.mass

    def estimate_pair(self) -> MassPair:
        return self._mass.copy()

    def _reset_join_state(self) -> None:
        # A rejoining node enters as a fresh participant with its initial
        # mass; the mass it carried away at departure is simply gone —
        # push-sum has no mechanism to reconcile membership changes, which
        # is exactly the fragility the churn experiments demonstrate.
        self._mass = self._initial.copy()

    def conserved_mass(self) -> MassPair:
        # For push-sum the conserved quantity IS the current local mass
        # (plus anything in flight, which synchronous engines deliver within
        # the round).
        return self._mass.copy()
