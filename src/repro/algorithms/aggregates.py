"""Aggregate kinds and their initial weight assignment.

Push-sum-style protocols compute ``(sum_k x_k) / (sum_k w_k)``; the *kind* of
aggregate is selected purely through the initial weights (Sec. II-A):

- AVERAGE: ``w_i = 1`` everywhere → the ratio is the mean of the data.
- SUM: ``w_i = 1`` at one designated root, ``0`` elsewhere → the ratio is the
  plain sum (the paper's "SUM" curves in Figs. 3/6).
- COUNT: data ``x_i = 1`` everywhere with a SUM weighting → network size.
- WEIGHTED_AVERAGE: arbitrary nonnegative ``w_i`` with positive total.

This module also computes the exact ground-truth aggregate (in extended
precision via ``math.fsum``/compensated summation) so experiments can report
true relative errors rather than self-referential residuals.
"""

from __future__ import annotations

import enum
import math
from typing import List, Optional, Sequence

import numpy as np

from repro.algorithms.state import MassPair, Value
from repro.exceptions import ConfigurationError


class AggregateKind(enum.Enum):
    """Which global aggregate a reduction computes."""

    AVERAGE = "average"
    SUM = "sum"
    COUNT = "count"
    WEIGHTED_AVERAGE = "weighted_average"


def initial_weights(
    kind: AggregateKind,
    n: int,
    *,
    root: int = 0,
    custom: Optional[Sequence[float]] = None,
) -> List[float]:
    """Per-node initial weights realizing ``kind`` on ``n`` nodes."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if kind in (AggregateKind.SUM, AggregateKind.COUNT):
        if not 0 <= root < n:
            raise ConfigurationError(f"root {root} out of range for n={n}")
        weights = [0.0] * n
        weights[root] = 1.0
        return weights
    if kind is AggregateKind.AVERAGE:
        return [1.0] * n
    if kind is AggregateKind.WEIGHTED_AVERAGE:
        if custom is None:
            raise ConfigurationError("WEIGHTED_AVERAGE requires custom weights")
        if len(custom) != n:
            raise ConfigurationError(
                f"expected {n} custom weights, got {len(custom)}"
            )
        weights = [float(w) for w in custom]
        if any(w < 0 for w in weights):
            raise ConfigurationError("custom weights must be nonnegative")
        if sum(weights) <= 0:
            raise ConfigurationError("custom weights must have positive total")
        return weights
    raise ConfigurationError(f"unknown aggregate kind {kind!r}")


def initial_values(
    kind: AggregateKind, data: Sequence[Value]
) -> List[Value]:
    """Per-node initial values; COUNT replaces the data by all-ones."""
    if kind is AggregateKind.COUNT:
        first = data[0]
        if isinstance(first, np.ndarray):
            return [np.ones_like(np.asarray(d, dtype=np.float64)) for d in data]
        return [1.0 for _ in data]
    return [
        np.asarray(d, dtype=np.float64) if isinstance(d, np.ndarray) else float(d)
        for d in data
    ]


def initial_mass_pairs(
    kind: AggregateKind,
    data: Sequence[Value],
    *,
    root: int = 0,
    custom_weights: Optional[Sequence[float]] = None,
) -> List[MassPair]:
    """The ``(x_i, w_i)`` initial state of every node for this aggregate."""
    values = initial_values(kind, data)
    weights = initial_weights(kind, len(data), root=root, custom=custom_weights)
    return [MassPair(v, w) for v, w in zip(values, weights)]


def true_aggregate(
    kind: AggregateKind,
    data: Sequence[Value],
    *,
    custom_weights: Optional[Sequence[float]] = None,
) -> Value:
    """Exact target aggregate computed with compensated summation.

    This is the oracle ``r`` in the paper's accuracy requirement
    ``max_i |(r~_i - r) / r| <= c(n) * eps_mach``; computing it carelessly
    (plain left-to-right float sum) would contaminate the very errors the
    experiments measure, so scalars use ``math.fsum`` and vectors use a
    Kahan–Babuška compensated loop.
    """
    if len(data) == 0:
        raise ConfigurationError("true_aggregate of empty data is undefined")
    vector = isinstance(data[0], np.ndarray)
    values = initial_values(kind, data)
    weights = initial_weights(
        kind, len(data), custom=custom_weights
    )
    weight_total = math.fsum(weights)

    if not vector:
        # The protocol's ratio is always sum(x_i) / sum(w_i); a weighted
        # average is realized by the caller pre-scaling its data, not here.
        numerator = math.fsum(values)
        return numerator / weight_total

    dimension = len(values[0])
    numerator_vec = _compensated_vector_sum(values, dimension)
    return numerator_vec / weight_total


def _compensated_vector_sum(values: Sequence[np.ndarray], dimension: int) -> np.ndarray:
    total = np.zeros(dimension, dtype=np.float64)
    compensation = np.zeros(dimension, dtype=np.float64)
    for v in values:
        v = np.asarray(v, dtype=np.float64)
        if v.shape != (dimension,):
            raise ConfigurationError(
                f"inconsistent vector shapes: {v.shape} vs ({dimension},)"
            )
        y = v - compensation
        t = total + y
        compensation = (t - total) - y
        total = t
    return total


def relative_error(estimate: Value, truth: Value) -> float:
    """Max-norm relative error ``max_k |est_k - true_k| / max_k |true_k|``.

    For scalars this is the paper's ``|(r~ - r) / r|``. For vector payloads
    (batched reductions, e.g. all dot products of one Gram-Schmidt step) the
    error is normalized by the *largest* true component: a componentwise
    relative error would make the target unreachable whenever some true
    component is accidentally tiny (e.g. a near-orthogonal dot product),
    even though the reduction is as accurate as the data scale permits.
    Returns ``inf`` for non-finite estimates (e.g. a zero-weight node) and
    falls back to absolute error when the truth is exactly zero.
    """
    est = np.atleast_1d(np.asarray(estimate, dtype=np.float64))
    tru = np.atleast_1d(np.asarray(truth, dtype=np.float64))
    if est.shape != tru.shape:
        raise ValueError(f"shape mismatch: {est.shape} vs {tru.shape}")
    if not np.all(np.isfinite(est)):
        return float("inf")
    scale = float(np.max(np.abs(tru)))
    if scale == 0.0:
        scale = 1.0
    return float(np.max(np.abs(est - tru)) / scale)
