"""Latency-hardened PCF edge state machine (this reproduction's extension).

Stress-testing the paper's Fig. 5 handshake beyond its (synchronous)
execution model exposed two failure modes, both pinned by tests in this
repository:

1. **Role-adoption race → edge deadlock.** Under message latency a stale
   in-flight message can carry an outdated role assignment with a current
   era; the adopt rule then flips the receiver's role, after which the two
   endpoints can end up with mismatched roles *and* mismatched eras — a
   state in which each side ignores everything the other sends, forever.
2. **Unverified zeroing → frozen mass errors.** The swap branch zeroes a
   node's passive-flow copy purely on the peer's say-so. If the local copy
   drifted after the peer's conservation check (a corrupted repair, or a
   repair against an older in-flight snapshot), the two endpoints freeze
   values that do not sum to zero — a permanent aggregate error.

This module fixes both with three changes, while keeping PCF's defining
behaviour (active slot runs plain PF; the passive slot is periodically
cancelled so flows stay small):

- **Era-derived roles.** The active slot *is* ``era mod 2``. There is no
  role field to communicate, adopt, or race on; stale messages are
  recognized purely by their era and ignored.
- **Initiator-only cancellation.** Exactly one endpoint of each edge (the
  *initiator*, chosen by node id) may start a cancellation; its passive
  copy is immutable within an era (the reference value), the follower's
  copy repairs toward it. This gives the handshake a two-phase-commit
  structure with a single coordinator.
- **Frozen-value-verified catch-up.** The initiator transmits the exact
  value it froze. The follower first *repairs* its own copy to the
  negation of that frozen value (an ordinary, delta-accounted PF repair —
  any drift flows back into its estimate) and only then zeroes it. The two
  frozen values therefore sum to zero *exactly, by construction*, under
  arbitrary loss, latency and FIFO reordering of other traffic.

Failure-free, the hardened variant converges to the same aggregate with
the same accuracy and round count as PF/PCF. Unlike Fig. 5 PCF it is not
trajectory-identical to PF: at era boundaries the initiator's reference
refresh adopts the peer's crossed updates where PF would keep exchanging
them, so the transient estimates differ at the in-flight-mass scale while
the fixed point (and exact mass conservation) is unchanged.
"""

from __future__ import annotations

import dataclasses

from repro.algorithms.flow_edge import ReceiveEffect
from repro.algorithms.state import MassPair


@dataclasses.dataclass(frozen=True)
class PCFHPayload:
    """Hardened-PCF edge message.

    ``frozen`` is the exact value the sender zeroed at its most recent
    cancellation (meaningful when the receiver is one era behind); the
    follower uses it to close its side of the cancellation exactly.
    """

    flow_a: MassPair
    flow_b: MassPair
    era: int
    frozen: MassPair


class HardenedEdgeState:
    """State of one ordered edge at one node, hardened handshake."""

    __slots__ = ("_flows", "_era", "_initiator", "_frozen")

    def __init__(self, zero: MassPair, *, initiator: bool) -> None:
        self._flows = [zero.copy(), zero.copy()]
        self._era = 0
        self._initiator = bool(initiator)
        self._frozen = zero.copy()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def era(self) -> int:
        return self._era

    @property
    def initiator(self) -> bool:
        return self._initiator

    @property
    def active(self) -> int:
        """The active slot is a pure function of the era."""
        return self._era % 2

    def flow(self, slot: int) -> MassPair:
        return self._flows[slot].copy()

    def active_flow(self) -> MassPair:
        return self._flows[self.active].copy()

    def passive_flow(self) -> MassPair:
        return self._flows[1 - self.active].copy()

    def total_flow(self) -> MassPair:
        return self._flows[0] + self._flows[1]

    def max_magnitude(self) -> float:
        return max(self._flows[0].magnitude(), self._flows[1].magnitude())

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def add_to_active(self, half: MassPair) -> None:
        slot = self.active
        self._flows[slot] = self._flows[slot] + half

    def payload(self) -> PCFHPayload:
        return PCFHPayload(
            flow_a=self._flows[0].copy(),
            flow_b=self._flows[1].copy(),
            era=self._era,
            frozen=self._frozen.copy(),
        )

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def receive(self, payload: PCFHPayload) -> ReceiveEffect:
        zero = self._flows[0].zero_like()
        eff = zero.copy()
        rob = zero.copy()
        cancelled = False
        swapped = False

        peer_era = payload.era
        # Defensive validation (corrupted control field) + staleness: a
        # message from an older era — or an era the protocol cannot have
        # reached (the follower can only ever be the initiator's era minus
        # one, so a two-ahead era implies corruption) — is dropped, except
        # for the boundary case handled below.
        if not isinstance(peer_era, int) or not (
            self._era - 1 <= peer_era <= self._era + 1
        ):
            return ReceiveEffect(eff, rob, False, False, False)
        received = (payload.flow_a, payload.flow_b)

        if peer_era == self._era - 1:
            # Era-boundary crossing: the peer has not yet caught up to our
            # cancellation. Its (still-active) slot for the old era is our
            # current passive — the era's reference value. The initiator
            # refreshes the reference from it (a normal delta-accounted
            # repair), picking up the halves the peer pushed while the
            # cancel was in flight instead of bouncing them back later.
            # The follower can never legitimately see a one-behind message
            # (the initiator is never behind), so it drops it.
            if self._initiator:
                passive = 1 - self.active
                stale_active_slot = peer_era % 2
                eff = eff - (self._flows[passive] + received[stale_active_slot])
                self._flows[passive] = -received[stale_active_slot]
            return ReceiveEffect(eff, rob, False, False, False)

        if peer_era == self._era + 1:
            if self._initiator:
                # The follower can never be ahead of the initiator; this
                # message is corrupt. Drop it.
                return ReceiveEffect(eff, rob, False, False, False)
            # Frozen-value-verified catch-up: close the cancellation with
            # the exact value the initiator froze. Step 1 — repair our
            # passive copy to the negation of the frozen value (ordinary
            # delta-accounted repair: any drift returns to our estimate).
            passive = 1 - self.active
            frozen_peer = payload.frozen
            eff = eff - (self._flows[passive] + frozen_peer)
            self._flows[passive] = -frozen_peer
            # Step 2 — freeze it: zero the copy, keep the value in phi.
            rob = rob + self._flows[passive]
            self._frozen = self._flows[passive].copy()
            self._flows[passive] = zero.copy()
            self._era += 1
            swapped = True
            # Fall through: the message is now era-equal; process slots.

        # Era-equal processing.
        active = self.active
        passive = 1 - active

        # Active slot: plain PF repair.
        eff = eff - (self._flows[active] + received[active])
        self._flows[active] = -received[active]

        if self._initiator:
            # Our passive copy is the era's reference value: never repaired.
            # Cancel once the follower's copy mirrors it exactly.
            if received[passive].exactly_equals(-self._flows[passive]):
                rob = rob + self._flows[passive]
                self._frozen = self._flows[passive].copy()
                self._flows[passive] = zero.copy()
                self._era += 1
                cancelled = True
        else:
            # Follower: track the initiator's reference copy.
            eff = eff - (self._flows[passive] + received[passive])
            self._flows[passive] = -received[passive]

        return ReceiveEffect(
            phi_delta_efficient=eff,
            phi_delta_robust=rob,
            cancelled=cancelled,
            swapped=swapped,
            adopted=False,
        )

    # ------------------------------------------------------------------
    # Fault-injection hook (memory soft errors)
    # ------------------------------------------------------------------
    def inject_flow_bit_flip(
        self, slot: int, bit: int, *, flip_weight: bool = False
    ) -> None:
        """Flip one bit of the stored flow in ``slot`` (memory soft error)."""
        from repro.util.float_bits import flip_bit

        flow = self._flows[slot]
        if flip_weight:
            corrupted = MassPair(flow.value, flip_bit(flow.weight, bit))
        elif flow.is_vector:
            values = flow.value
            values[0] = flip_bit(float(values[0]), bit)
            corrupted = MassPair(values, flow.weight)
        else:
            corrupted = MassPair(flip_bit(float(flow.value), bit), flow.weight)
        self._flows[slot] = corrupted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HardenedEdgeState(era={self._era}, initiator={self._initiator}, "
            f"f0={self._flows[0]!r}, f1={self._flows[1]!r})"
        )
