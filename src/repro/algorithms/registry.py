"""Name-based algorithm factory used by the harness, examples and CLI.

Algorithms are referenced by short names so experiment specs remain plain
serializable data:

- ``push_sum`` — the fragile baseline.
- ``push_flow`` / ``push_flow_incremental`` — PF (Fig. 1) with the two
  estimate-bookkeeping variants.
- ``push_cancel_flow`` / ``push_cancel_flow_robust`` — PCF (Fig. 5) in the
  efficient and bit-flip-tolerant variants.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.algorithms.base import GossipAlgorithm
from repro.algorithms.push_cancel_flow import (
    VARIANT_EFFICIENT,
    VARIANT_ROBUST,
    PushCancelFlow,
)
from repro.algorithms.push_cancel_flow_hardened import PushCancelFlowHardened
from repro.algorithms.push_flow import (
    VARIANT_INCREMENTAL,
    VARIANT_RECOMPUTE,
    PushFlow,
)
from repro.algorithms.push_sum import PushSum
from repro.algorithms.state import MassPair
from repro.exceptions import ConfigurationError
from repro.topology.base import Topology

AlgorithmFactory = Callable[[int, Sequence[int], MassPair], GossipAlgorithm]

_FACTORIES: Dict[str, AlgorithmFactory] = {
    "push_sum": lambda i, nbrs, init: PushSum(i, nbrs, init),
    "push_flow": lambda i, nbrs, init: PushFlow(
        i, nbrs, init, variant=VARIANT_RECOMPUTE
    ),
    "push_flow_incremental": lambda i, nbrs, init: PushFlow(
        i, nbrs, init, variant=VARIANT_INCREMENTAL
    ),
    "push_cancel_flow": lambda i, nbrs, init: PushCancelFlow(
        i, nbrs, init, variant=VARIANT_EFFICIENT
    ),
    "push_cancel_flow_robust": lambda i, nbrs, init: PushCancelFlow(
        i, nbrs, init, variant=VARIANT_ROBUST
    ),
    "push_cancel_flow_hardened": lambda i, nbrs, init: PushCancelFlowHardened(
        i, nbrs, init, variant="efficient"
    ),
    "push_cancel_flow_hardened_robust": lambda i, nbrs, init: PushCancelFlowHardened(
        i, nbrs, init, variant="robust"
    ),
}

ALGORITHMS = tuple(sorted(_FACTORIES))


def factory(name: str) -> AlgorithmFactory:
    """Return the node-state factory for algorithm ``name``."""
    try:
        return _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; expected one of {ALGORITHMS}"
        ) from None


def instantiate(
    name: str, topology: Topology, initial: Sequence[MassPair]
) -> List[GossipAlgorithm]:
    """Build one algorithm instance per node of ``topology``."""
    if len(initial) != topology.n:
        raise ConfigurationError(
            f"expected {topology.n} initial mass pairs, got {len(initial)}"
        )
    make = factory(name)
    return [
        make(i, topology.neighbors(i), initial[i]) for i in topology.nodes()
    ]
