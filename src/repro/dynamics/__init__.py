"""Time-varying topology support: schedules, scenario builders, traces.

This package converts the simulator from a static-world to a
dynamic-world model: a :class:`TopologySchedule` describes when edges and
nodes come and go, the scenario builders generate the schedules the
related dynamic-aggregation papers study (churn, partitions, correlated
outages), and the trace module records and replays concrete per-round
fault schedules. The engines apply schedules via their
``topology_schedule`` hook; the campaign layer exposes them as the
declarative fault kinds ``churn``, ``partition``, ``regional_outage``
and ``trace``.
"""

from repro.dynamics.builders import (
    partition_and_heal,
    poisson_churn,
    random_edge_flaps,
    regional_outage,
    scripted_churn,
)
from repro.dynamics.schedule import DELTA_KINDS, TopologyDelta, TopologySchedule
from repro.dynamics.trace import (
    TraceRecorder,
    TraceReplay,
    TraceReplayFault,
    load_trace,
    replay_from_trace,
)

__all__ = [
    "DELTA_KINDS",
    "TopologyDelta",
    "TopologySchedule",
    "TraceRecorder",
    "TraceReplay",
    "TraceReplayFault",
    "load_trace",
    "partition_and_heal",
    "poisson_churn",
    "random_edge_flaps",
    "regional_outage",
    "replay_from_trace",
    "scripted_churn",
]
