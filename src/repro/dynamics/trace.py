"""Record fault/topology schedules from live runs and replay them.

:class:`TraceRecorder` is an engine observer that captures, per round:

- transport drops caused by message-fault injectors (reason ``injector``);
- permanent-failure injections (``link_failure`` / ``node_failure``) and
  their handling rounds;
- topology deltas applied by a dynamic schedule.

The captured schedule round-trips through JSONL or CSV
(:meth:`TraceRecorder.save` / :func:`load_trace`) and
:func:`replay_from_trace` turns it back into the engine-facing triple
(message fault, fault plan, topology schedule). Replay is exact and
deterministic: the drop schedule is keyed on ``(round, sender,
receiver)``, so two replays of the same trace against the same run
configuration produce bit-identical executions — the campaign CI gates on
this.

Corruption faults (bit flips) mutate payloads rather than dropping
messages; a trace records that they happened but cannot replay the
mutated bits, so they are intentionally excluded from replay.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import re
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple, Union

from repro.dynamics.schedule import TopologySchedule
from repro.exceptions import ConfigurationError
from repro.faults.base import MessageFault
from repro.faults.events import FaultPlan, LinkFailure, NodeFailure
from repro.simulation.observers import Observer

#: Column order of the CSV trace form (blank cells mean "not applicable").
CSV_FIELDS = ("type", "round", "kind", "u", "v", "node", "reason", "label")

_LINK_DETAIL = re.compile(r"link\((\d+),(\d+)\)")
_NODE_DETAIL = re.compile(r"node\((\d+)\)")


class TraceRecorder(Observer):
    """Capture a replayable per-round loss/failure schedule from a run."""

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []

    def wants_detail(self, round_index: int) -> bool:
        # Drops, faults, handlings and topology events fire on every round
        # regardless of sampling, so the recorder never needs detail hooks.
        return False

    def on_message_dropped(self, engine, message, reason: str) -> None:
        # dead_edge / dead_node drops are consequences of the recorded
        # fault/topology events and would double-apply on replay.
        if reason != "injector":
            return
        self.events.append(
            {
                "type": "drop",
                "round": message.round,
                "u": message.sender,
                "v": message.receiver,
                "reason": reason,
            }
        )

    def on_fault_injected(self, engine, round_index, kind, detail) -> None:
        if kind == "link_failure":
            match = _LINK_DETAIL.fullmatch(detail)
            if match:
                self.events.append(
                    {
                        "type": "fault",
                        "round": round_index,
                        "kind": kind,
                        "u": int(match.group(1)),
                        "v": int(match.group(2)),
                    }
                )
        elif kind == "node_failure":
            match = _NODE_DETAIL.fullmatch(detail)
            if match:
                self.events.append(
                    {
                        "type": "fault",
                        "round": round_index,
                        "kind": kind,
                        "node": int(match.group(1)),
                    }
                )
        # message_corruption is observable but not replayable (see module
        # docstring) — skip it.

    def on_link_handled(self, engine, round_index, u, v) -> None:
        self.events.append(
            {"type": "handled", "round": round_index, "u": u, "v": v}
        )

    def on_topology_event(self, engine, round_index, kind, detail) -> None:
        event: Dict[str, object] = {
            "type": "topology",
            "round": round_index,
            "kind": kind,
        }
        edge = detail.get("edge")
        if edge is not None:
            event["u"], event["v"] = int(edge[0]), int(edge[1])
        if detail.get("node") is not None:
            event["node"] = int(detail["node"])
        if detail.get("label"):
            event["label"] = str(detail["label"])
        self.events.append(event)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the trace as JSONL, or CSV when ``path`` ends in .csv."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix.lower() == ".csv":
            with path.open("w", newline="") as fh:
                writer = csv.DictWriter(fh, fieldnames=CSV_FIELDS)
                writer.writeheader()
                for event in self.events:
                    writer.writerow({k: event.get(k, "") for k in CSV_FIELDS})
        else:
            with path.open("w") as fh:
                for event in self.events:
                    fh.write(json.dumps(event) + "\n")
        return path


def load_trace(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Load a trace saved by :meth:`TraceRecorder.save` (JSONL or CSV)."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"trace file {path} does not exist")
    events: List[Dict[str, object]] = []
    if path.suffix.lower() == ".csv":
        with path.open(newline="") as fh:
            for row in csv.DictReader(fh):
                event: Dict[str, object] = {}
                for key, value in row.items():
                    if value is None or value == "":
                        continue
                    if key in ("round", "u", "v", "node"):
                        event[key] = int(value)
                    else:
                        event[key] = value
                events.append(event)
    else:
        with path.open() as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    return events


class TraceReplayFault(MessageFault):
    """Replay a recorded drop schedule, keyed on (round, sender, receiver).

    Stateless and deterministic: the same trace applied to the same run
    configuration reproduces the recorded loss pattern exactly.
    """

    def __init__(self, drops: Iterable[Tuple[int, int, int]]) -> None:
        self._drops: FrozenSet[Tuple[int, int, int]] = frozenset(
            (int(r), int(u), int(v)) for r, u, v in drops
        )

    @property
    def drops(self) -> FrozenSet[Tuple[int, int, int]]:
        return self._drops

    def apply(self, message):
        key = (message.round, message.sender, message.receiver)
        return None if key in self._drops else message

    def reset(self) -> None:
        pass


@dataclasses.dataclass
class TraceReplay:
    """Engine-facing reconstruction of a recorded trace."""

    message_fault: Optional[TraceReplayFault]
    fault_plan: FaultPlan
    topology_schedule: TopologySchedule
    event_round: Optional[int]


def replay_from_trace(
    events: Iterable[Mapping[str, object]],
) -> TraceReplay:
    """Rebuild the (message fault, fault plan, topology schedule) triple."""
    drops: List[Tuple[int, int, int]] = []
    handled: List[Tuple[int, int, int]] = []  # (round, u, v) canonical
    link_events: List[Tuple[int, int, int]] = []  # (round, u, v)
    node_events: List[Tuple[int, int]] = []  # (round, node)
    topology_events: List[Mapping[str, object]] = []
    for event in events:
        etype = event.get("type")
        if etype == "drop":
            drops.append(
                (int(event["round"]), int(event["u"]), int(event["v"]))
            )
        elif etype == "handled":
            u, v = int(event["u"]), int(event["v"])
            edge = (u, v) if u < v else (v, u)
            handled.append((int(event["round"]), edge[0], edge[1]))
        elif etype == "fault":
            if event.get("kind") == "link_failure":
                link_events.append(
                    (int(event["round"]), int(event["u"]), int(event["v"]))
                )
            elif event.get("kind") == "node_failure":
                node_events.append((int(event["round"]), int(event["node"])))
        elif etype == "topology":
            topology_events.append(event)

    def _handle_round_for_edge(fail_round: int, u: int, v: int) -> int:
        edge = (u, v) if u < v else (v, u)
        candidates = [
            r for r, hu, hv in handled if (hu, hv) == edge and r >= fail_round
        ]
        return min(candidates) if candidates else fail_round

    def _handle_round_for_node(fail_round: int, node: int) -> int:
        candidates = [
            r
            for r, hu, hv in handled
            if node in (hu, hv) and r >= fail_round
        ]
        return min(candidates) if candidates else fail_round

    link_failures = [
        LinkFailure(
            round=r, u=u, v=v, detection_delay=_handle_round_for_edge(r, u, v) - r
        )
        for r, u, v in link_events
    ]
    node_failures = [
        NodeFailure(
            round=r,
            node=node,
            detection_delay=_handle_round_for_node(r, node) - r,
        )
        for r, node in node_events
    ]
    plan = FaultPlan(link_failures=link_failures, node_failures=node_failures)
    handle_rounds = [lf.handle_round for lf in link_failures]
    handle_rounds += [nf.handle_round for nf in node_failures]
    return TraceReplay(
        message_fault=TraceReplayFault(drops) if drops else None,
        fault_plan=plan,
        topology_schedule=TopologySchedule.from_events(topology_events),
        event_round=min(handle_rounds) if handle_rounds else None,
    )
