"""Time-varying topology: declarative round → adjacency-delta schedules.

The paper evaluates its algorithms on static topologies; the related
dynamic-aggregation literature (Jesus/Baquero/Almeida, "Flow-Updating Meets
Mass-Distribution" and "Dependability in Aggregation by Averaging") studies
the regime a real deployment faces: node churn, correlated regional
outages, and network partitions that later heal. A
:class:`TopologySchedule` expresses such a regime as a sorted list of
:class:`TopologyDelta` events that the engines apply at the *start* of the
named round, before any send of that round.

Semantics at the transition instant (see DESIGN.md for the full note):

- the synchronous engines deliver every message within its round, so there
  are never in-flight messages across a delta;
- ``edge_down`` / ``node_leave`` run the same algorithmic exclusion path as
  a handled ``link_failure`` (``on_link_failed`` — flows zeroed/absorbed);
- ``edge_up`` re-adds the neighbor with an exact-zero flow on both sides;
- ``node_join`` resets the joining node to its initial mass with zero
  flows (``reset_for_join``) and re-adds it to each live neighbor.

Deltas describe changes relative to the *universe* graph — the static
:class:`~repro.topology.base.Topology` the run was built on. Edges taken
up must exist in the universe; nodes are identified by universe ids.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.topology.base import Topology

#: The delta kinds engines understand.
DELTA_KINDS = ("edge_down", "edge_up", "node_leave", "node_join")

Edge = Tuple[int, int]


@dataclasses.dataclass(frozen=True)
class TopologyDelta:
    """One adjacency change, applied at the start of ``round``.

    ``label`` groups deltas into named episodes ("partition", "heal",
    "churn", "outage", ...) for telemetry and the
    :class:`~repro.tracing.anomaly.PartitionHealDetector`.
    """

    round: int
    kind: str
    edge: Optional[Edge] = None
    node: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ConfigurationError(
                f"topology delta round must be >= 0, got {self.round}"
            )
        if self.kind not in DELTA_KINDS:
            raise ConfigurationError(
                f"unknown topology delta kind {self.kind!r}; "
                f"expected one of {DELTA_KINDS}"
            )
        if self.kind in ("edge_down", "edge_up"):
            edge = self.edge
            if (
                edge is None
                or len(edge) != 2
                or not all(isinstance(e, int) for e in edge)
            ):
                raise ConfigurationError(
                    f"{self.kind} delta needs an (u, v) edge, got {edge!r}"
                )
            u, v = int(edge[0]), int(edge[1])
            if u == v:
                raise ConfigurationError(f"self-edge ({u}, {v}) in topology delta")
            if u < 0 or v < 0:
                raise ConfigurationError(
                    f"negative node id in topology delta edge ({u}, {v})"
                )
            object.__setattr__(self, "edge", (u, v) if u < v else (v, u))
            if self.node is not None:
                raise ConfigurationError(f"{self.kind} delta must not carry a node")
        else:
            if self.node is None or not isinstance(self.node, int):
                raise ConfigurationError(
                    f"{self.kind} delta needs a node id, got {self.node!r}"
                )
            if self.node < 0:
                raise ConfigurationError(
                    f"negative node id {self.node} in topology delta"
                )
            if self.edge is not None:
                raise ConfigurationError(f"{self.kind} delta must not carry an edge")

    def to_event(self) -> Dict[str, object]:
        """JSON-safe dict form (used by trace recording)."""
        out: Dict[str, object] = {"round": self.round, "kind": self.kind}
        if self.edge is not None:
            out["u"], out["v"] = self.edge
        if self.node is not None:
            out["node"] = self.node
        if self.label:
            out["label"] = self.label
        return out

    @classmethod
    def from_event(cls, event: Mapping[str, object]) -> "TopologyDelta":
        kind = str(event["kind"])
        edge = None
        if "u" in event and event.get("u") is not None and event.get("u") != "":
            edge = (int(event["u"]), int(event["v"]))  # type: ignore[arg-type]
        node = event.get("node")
        node = int(node) if node not in (None, "") else None
        return cls(
            round=int(event["round"]),  # type: ignore[arg-type]
            kind=kind,
            edge=edge,
            node=node,
            label=str(event.get("label") or ""),
        )


class TopologySchedule:
    """Immutable, round-sorted collection of :class:`TopologyDelta` events.

    Within one round, deltas apply in insertion order (the sort is stable),
    so builders control e.g. leave-before-join toggles deterministically.
    """

    def __init__(self, deltas: Iterable[TopologyDelta] = ()) -> None:
        ordered = sorted(deltas, key=lambda d: d.round)
        self._deltas: Tuple[TopologyDelta, ...] = tuple(ordered)
        self._by_round: Dict[int, List[TopologyDelta]] = {}
        for delta in self._deltas:
            self._by_round.setdefault(delta.round, []).append(delta)

    @property
    def deltas(self) -> Tuple[TopologyDelta, ...]:
        return self._deltas

    def __len__(self) -> int:
        return len(self._deltas)

    def is_empty(self) -> bool:
        return not self._deltas

    @property
    def last_round(self) -> int:
        """Latest delta round (-1 when empty)."""
        return self._deltas[-1].round if self._deltas else -1

    def deltas_at(self, round_index: int) -> Tuple[TopologyDelta, ...]:
        return tuple(self._by_round.get(round_index, ()))

    def validate_against(self, topology: Topology) -> None:
        """Check every delta names nodes/edges of the universe graph."""
        n = topology.n
        for delta in self._deltas:
            if delta.edge is not None:
                u, v = delta.edge
                if not (0 <= u < n and 0 <= v < n) or not topology.has_edge(u, v):
                    raise ConfigurationError(
                        f"topology delta {delta.kind} names edge ({u}, {v}) "
                        f"which is not an edge of topology {topology.name!r}"
                    )
            if delta.node is not None and not 0 <= delta.node < n:
                raise ConfigurationError(
                    f"topology delta {delta.kind} names node {delta.node} "
                    f"outside topology (n={n})"
                )

    def meta(self) -> Dict[str, object]:
        """JSON-safe summary for results.jsonl records."""
        kinds: Dict[str, int] = {}
        labels: Dict[str, int] = {}
        for delta in self._deltas:
            kinds[delta.kind] = kinds.get(delta.kind, 0) + 1
            if delta.label:
                labels[delta.label] = labels.get(delta.label, 0) + 1
        return {
            "deltas": len(self._deltas),
            "kinds": kinds,
            "labels": labels,
            "first_round": self._deltas[0].round if self._deltas else None,
            "last_round": self._deltas[-1].round if self._deltas else None,
        }

    def to_events(self) -> List[Dict[str, object]]:
        return [delta.to_event() for delta in self._deltas]

    @classmethod
    def from_events(
        cls, events: Iterable[Mapping[str, object]]
    ) -> "TopologySchedule":
        return cls(TopologyDelta.from_event(e) for e in events)
