"""Builders for the common dynamic-network scenarios.

Each builder turns a scenario description into a plain
:class:`~repro.dynamics.schedule.TopologySchedule`:

- :func:`scripted_churn` — an explicit (round, action, node) event list;
- :func:`poisson_churn` — memoryless join/leave churn (the model of the
  "Dependability in Aggregation by Averaging" survey's churn experiments);
- :func:`partition_and_heal` — cut the network into two components at one
  round, optionally restore every cut edge later;
- :func:`regional_outage` — a correlated outage taking down a contiguous
  id-block of nodes for a fixed duration (rack/region failure);
- :func:`random_edge_flaps` — transient edge rewiring: random links go
  down for a fixed number of rounds, then come back.

All randomized builders draw from ``np.random.default_rng(seed)`` only, so
a (builder, parameters, seed) triple is a reproducible scenario — the
campaign layer derives the seed from the cell's fault stream, preserving
the paired-comparison methodology (same seed → same dynamics for every
algorithm).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dynamics.schedule import TopologyDelta, TopologySchedule
from repro.exceptions import ConfigurationError
from repro.topology.base import Topology

ChurnEvent = Tuple[int, str, int]  # (round, "leave"|"join", node)


def scripted_churn(events: Iterable[ChurnEvent]) -> TopologySchedule:
    """Churn from an explicit event list of ``(round, action, node)``."""
    deltas: List[TopologyDelta] = []
    for event in events:
        if len(event) != 3:
            raise ConfigurationError(
                f"churn event must be (round, action, node), got {event!r}"
            )
        round_index, action, node = event
        if action not in ("leave", "join"):
            raise ConfigurationError(
                f"churn action must be 'leave' or 'join', got {action!r}"
            )
        kind = "node_leave" if action == "leave" else "node_join"
        deltas.append(
            TopologyDelta(
                round=int(round_index), kind=kind, node=int(node), label="churn"
            )
        )
    return TopologySchedule(deltas)


def poisson_churn(
    topology: Topology,
    *,
    rate: float,
    start: int = 0,
    end: int,
    seed: int = 0,
    min_live_fraction: float = 0.5,
) -> TopologySchedule:
    """Memoryless churn: ``Poisson(rate)`` membership toggles per round.

    Each toggle picks a uniform node: a live node leaves (unless that
    would push the live population below ``min_live_fraction * n``), a
    departed node rejoins. At ``end`` every still-departed node rejoins
    (label ``churn-heal``), so runs past the churn window measure
    reconvergence of the full population.
    """
    if rate <= 0.0:
        raise ConfigurationError(f"churn rate must be > 0, got {rate}")
    if not 0 <= start < end:
        raise ConfigurationError(
            f"churn window must satisfy 0 <= start < end, got [{start}, {end})"
        )
    if not 0.0 < min_live_fraction <= 1.0:
        raise ConfigurationError(
            f"min_live_fraction must be in (0, 1], got {min_live_fraction}"
        )
    n = topology.n
    min_live = max(1, int(math.ceil(min_live_fraction * n)))
    rng = np.random.default_rng(seed)
    departed: List[int] = []  # insertion-ordered for determinism
    deltas: List[TopologyDelta] = []
    for round_index in range(start, end):
        for _ in range(int(rng.poisson(rate))):
            node = int(rng.integers(n))
            if node in departed:
                departed.remove(node)
                deltas.append(
                    TopologyDelta(
                        round=round_index,
                        kind="node_join",
                        node=node,
                        label="churn",
                    )
                )
            elif n - len(departed) - 1 >= min_live:
                departed.append(node)
                deltas.append(
                    TopologyDelta(
                        round=round_index,
                        kind="node_leave",
                        node=node,
                        label="churn",
                    )
                )
    for node in departed:
        deltas.append(
            TopologyDelta(
                round=end, kind="node_join", node=node, label="churn-heal"
            )
        )
    return TopologySchedule(deltas)


def partition_and_heal(
    topology: Topology,
    *,
    round: int,
    heal_round: Optional[int] = None,
    fraction: float = 0.5,
    seed: int = 0,
) -> TopologySchedule:
    """Cut the graph into two node sets at ``round``; heal at ``heal_round``.

    A seeded permutation assigns ``fraction`` of the nodes to one side;
    every edge crossing the cut goes down (label ``partition``). When
    ``heal_round`` is given, every cut edge comes back up there (label
    ``heal``); ``None`` models a partition that never heals.
    """
    if round < 0:
        raise ConfigurationError(f"partition round must be >= 0, got {round}")
    if heal_round is not None and heal_round <= round:
        raise ConfigurationError(
            f"heal_round {heal_round} must be after the partition round {round}"
        )
    if not 0.0 < fraction < 1.0:
        raise ConfigurationError(
            f"partition fraction must be in (0, 1), got {fraction}"
        )
    n = topology.n
    side_size = min(max(int(fraction * n + 0.5), 1), n - 1)
    rng = np.random.default_rng(seed)
    side = set(int(i) for i in rng.permutation(n)[:side_size])
    cut = [
        (u, v)
        for u, v in topology.edges
        if (u in side) != (v in side)
    ]
    deltas = [
        TopologyDelta(round=round, kind="edge_down", edge=edge, label="partition")
        for edge in cut
    ]
    if heal_round is not None:
        deltas.extend(
            TopologyDelta(
                round=heal_round, kind="edge_up", edge=edge, label="heal"
            )
            for edge in cut
        )
    return TopologySchedule(deltas)


def regional_outage(
    topology: Topology,
    *,
    round: int,
    duration: int,
    region_count: int = 4,
    region: Optional[int] = None,
    seed: int = 0,
) -> TopologySchedule:
    """A correlated outage: one contiguous id-block of nodes fails together.

    Nodes are partitioned into ``region_count`` contiguous id blocks (the
    node-partition map — racks/regions). At ``round`` every node of the
    chosen ``region`` (seeded-uniform when None) leaves (label
    ``outage``); ``duration`` rounds later they all rejoin (label
    ``restore``).
    """
    if round < 0:
        raise ConfigurationError(f"outage round must be >= 0, got {round}")
    if duration < 1:
        raise ConfigurationError(f"outage duration must be >= 1, got {duration}")
    n = topology.n
    if not 2 <= region_count <= n:
        raise ConfigurationError(
            f"region_count must be in [2, {n}], got {region_count}"
        )
    if region is None:
        region = int(np.random.default_rng(seed).integers(region_count))
    if not 0 <= region < region_count:
        raise ConfigurationError(
            f"region must be in [0, {region_count}), got {region}"
        )
    lo = region * n // region_count
    hi = (region + 1) * n // region_count
    nodes = range(lo, hi)
    deltas = [
        TopologyDelta(round=round, kind="node_leave", node=i, label="outage")
        for i in nodes
    ]
    deltas.extend(
        TopologyDelta(
            round=round + duration, kind="node_join", node=i, label="restore"
        )
        for i in nodes
    )
    return TopologySchedule(deltas)


def random_edge_flaps(
    topology: Topology,
    *,
    rate: float,
    duration: int,
    start: int = 0,
    end: int,
    seed: int = 0,
) -> TopologySchedule:
    """Transient rewiring: random edges go down for ``duration`` rounds.

    Each round in ``[start, end)`` takes ``Poisson(rate)`` currently-up
    edges down (label ``flap``); each comes back exactly ``duration``
    rounds later.
    """
    if rate <= 0.0:
        raise ConfigurationError(f"flap rate must be > 0, got {rate}")
    if duration < 1:
        raise ConfigurationError(f"flap duration must be >= 1, got {duration}")
    if not 0 <= start < end:
        raise ConfigurationError(
            f"flap window must satisfy 0 <= start < end, got [{start}, {end})"
        )
    edges: Sequence[Tuple[int, int]] = topology.edges
    rng = np.random.default_rng(seed)
    down_until: dict = {}
    deltas: List[TopologyDelta] = []
    for round_index in range(start, end):
        for edge, up_round in list(down_until.items()):
            if up_round == round_index:
                del down_until[edge]
        for _ in range(int(rng.poisson(rate))):
            edge = edges[int(rng.integers(len(edges)))]
            if edge in down_until:
                continue
            down_until[edge] = round_index + duration
            deltas.append(
                TopologyDelta(
                    round=round_index, kind="edge_down", edge=edge, label="flap"
                )
            )
            deltas.append(
                TopologyDelta(
                    round=round_index + duration,
                    kind="edge_up",
                    edge=edge,
                    label="flap",
                )
            )
    return TopologySchedule(deltas)
