"""Plain-text rendering of experiment results (tables and series).

The harness reports everything as ASCII tables so benchmark logs double as
the reproduction record (EXPERIMENTS.md is generated from these).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]]) -> str:
    """Monospace table with a header rule, right-padded columns."""
    string_rows: List[List[str]] = [
        [format_cell(c) for c in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in string_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def render_series(
    label: str, values: Sequence[float], *, every: int = 10
) -> str:
    """Compact one-line-per-sample rendering of an error series."""
    lines = [label]
    for t in range(0, len(values), max(every, 1)):
        lines.append(f"  round {t:4d}: {format_cell(values[t])}")
    if values and (len(values) - 1) % max(every, 1) != 0:
        lines.append(f"  round {len(values) - 1:4d}: {format_cell(values[-1])}")
    return "\n".join(lines)
