"""Terminal plots for experiment series (no plotting dependencies).

Renders log-scale error curves — the Figs. 4/7 style series — as ASCII
line charts so the CLI and benchmark logs can show the *shape* of a run,
not just summary numbers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

_GLYPHS = "1234567890abcdefghijklmnopqrstuvwxyz"


def _log10_floor(value: float, floor: float) -> float:
    return math.log10(max(value, floor))


def ascii_log_plot(
    series: Dict[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 18,
    floor: float = 1e-16,
    ceiling: Optional[float] = None,
    markers: Sequence[int] = (),
    title: str = "",
) -> str:
    """Plot one or more nonnegative series on a shared log-y axis.

    Each series gets one glyph ('1', '2', ...); collisions show the later
    series. ``markers`` are x-positions (e.g. failure rounds) drawn as
    ``^`` on the x-axis.
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 8 or height < 3:
        raise ValueError("plot must be at least 8x3")
    length = max(len(s) for s in series.values())
    if length < 2:
        raise ValueError("series must have at least 2 samples")

    lo = math.log10(floor)
    if ceiling is None:
        observed = [
            v
            for s in series.values()
            for v in s
            if math.isfinite(v) and v > 0
        ]
        hi = max(_log10_floor(max(observed), floor), lo + 1.0) if observed else lo + 1.0
    else:
        hi = math.log10(ceiling)
    hi = max(hi, lo + 1e-9)

    grid = [[" "] * width for _ in range(height)]

    def x_of(index: int) -> int:
        return min(width - 1, int(index * (width - 1) / max(length - 1, 1)))

    def y_of(value: float) -> int:
        level = (_log10_floor(value, floor) - lo) / (hi - lo)
        level = min(max(level, 0.0), 1.0)
        return (height - 1) - int(round(level * (height - 1)))

    for rank, (label, values) in enumerate(series.items()):
        glyph = _GLYPHS[rank % len(_GLYPHS)]
        for index, value in enumerate(values):
            if not math.isfinite(value) or value < 0:
                continue
            grid[y_of(value)][x_of(index)] = glyph

    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        # Left axis: log10 level of this row.
        level = hi - (hi - lo) * row_index / (height - 1)
        lines.append(f"1e{level:+06.1f} |" + "".join(row))
    axis = ["-"] * width
    for marker in markers:
        position = x_of(int(marker))
        axis[position] = "^"
    lines.append(" " * 8 + "+" + "".join(axis))
    lines.append(
        " " * 9
        + f"0 .. {length - 1} rounds"
        + ("   markers: " + ", ".join(str(m) for m in markers) if markers else "")
    )
    for rank, label in enumerate(series):
        lines.append(f"  [{_GLYPHS[rank % len(_GLYPHS)]}] {label}")
    return "\n".join(lines)
