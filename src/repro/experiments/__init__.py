"""Experiment harness: every paper figure as a runnable, tabulated experiment."""

from repro.experiments.figures import (
    FigureResult,
    ablation_data_distribution,
    ablation_message_loss,
    ablation_pf_variants,
    ablation_state_bit_flips,
    accuracy_sweep,
    equivalence_experiment,
    failure_experiment,
    fig2_bus_flows,
    finding_crossing_deadlock,
    fig3_pf_accuracy,
    fig4_pf_failure,
    fig6_pcf_accuracy,
    fig7_pcf_failure,
    fig8_qr,
    scaling_rounds,
)
from repro.experiments.io import load_result, save_result
from repro.experiments.plotting import ascii_log_plot
from repro.experiments.tables import render_series, render_table
from repro.experiments.workloads import (
    bus_case_study_data,
    bus_equilibrium_flows,
    random_matrix,
    uniform_data,
)

__all__ = [
    "FigureResult",
    "accuracy_sweep",
    "failure_experiment",
    "fig2_bus_flows",
    "finding_crossing_deadlock",
    "fig3_pf_accuracy",
    "fig4_pf_failure",
    "fig6_pcf_accuracy",
    "fig7_pcf_failure",
    "fig8_qr",
    "equivalence_experiment",
    "ablation_pf_variants",
    "ablation_state_bit_flips",
    "ablation_data_distribution",
    "ablation_message_loss",
    "scaling_rounds",
    "save_result",
    "load_result",
    "ascii_log_plot",
    "render_table",
    "render_series",
    "uniform_data",
    "bus_case_study_data",
    "bus_equilibrium_flows",
    "random_matrix",
]
