"""Experiment definitions regenerating every figure of the paper's evaluation.

Each ``figN_*`` function runs the corresponding experiment and returns a
:class:`FigureResult` whose rows are the paper's plotted series in tabular
form. The benchmarks call these with moderate default scales; set
``scale="paper"`` (or the ``REPRO_BENCH_SCALE=paper`` environment variable
for the benchmark suite) to run the full published parameter ranges.

Index (see DESIGN.md for the full mapping):

- :func:`fig2_bus_flows`       — bus-network flow growth (Sec. II-B, Fig. 2)
- :func:`fig3_pf_accuracy`     — PF achievable accuracy vs scale (Fig. 3)
- :func:`fig4_pf_failure`      — PF link-failure fallback (Fig. 4)
- :func:`fig6_pcf_accuracy`    — PCF accuracy vs scale (Fig. 6)
- :func:`fig7_pcf_failure`     — PCF link-failure resilience (Fig. 7)
- :func:`fig8_qr`              — dmGS(PF) vs dmGS(PCF) factorization error (Fig. 8)
- :func:`equivalence_experiment` — PF = PCF failure-free (Sec. III-B claim)
- ablations: PF variants, PCF robust vs efficient under memory soft errors,
  loss-rate sweep, convergence-round scaling.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.aggregates import (
    AggregateKind,
    initial_mass_pairs,
    true_aggregate,
)
from repro.algorithms.registry import instantiate
from repro.exceptions import ExperimentError
from repro.experiments.workloads import (
    bus_case_study_data,
    random_matrix,
    uniform_data,
)
from repro.experiments.tables import render_series, render_table
from repro.faults.events import single_link_failure
from repro.faults.state_flip import StateBitFlipInjector
from repro.faults.message_loss import IidMessageLoss
from repro.linalg.qr import distributed_qr
from repro.metrics.convergence import FallbackReport, fallback_report
from repro.metrics.history import ErrorHistory
from repro.reduction import default_round_cap, run_reduction
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import UniformGossipSchedule
from repro.topology import hypercube, standard
from repro.topology.base import Topology
from repro.vectorized.parity import vector_engine_for


@dataclasses.dataclass
class FigureResult:
    """Tabular outcome of one experiment."""

    figure: str
    headers: List[str]
    rows: List[List[object]]
    notes: str = ""
    series: Optional[Dict[str, List[float]]] = None

    def render(self) -> str:
        parts = [f"== {self.figure} =="]
        if self.notes:
            parts.append(self.notes)
        parts.append(render_table(self.headers, self.rows))
        if self.series:
            for label, values in self.series.items():
                parts.append(render_series(label, values, every=25))
        return "\n".join(parts)


# ----------------------------------------------------------------------
# Scales
# ----------------------------------------------------------------------
def _hypercube_dims(scale: str) -> List[int]:
    return {"small": [3, 6, 9], "medium": [3, 6, 9, 12], "paper": [3, 6, 9, 12, 15]}[
        scale
    ]


def _torus_sides(scale: str) -> List[int]:
    return {"small": [2, 4, 8], "medium": [2, 4, 8, 16], "paper": [2, 4, 8, 16, 32]}[
        scale
    ]


def _qr_dims(scale: str) -> List[int]:
    return {"small": [5, 6, 7], "medium": [5, 6, 7, 8], "paper": [5, 6, 7, 8, 9, 10]}[
        scale
    ]


def _check_scale(scale: str) -> str:
    if scale not in ("small", "medium", "paper"):
        raise ExperimentError(
            f"scale must be 'small', 'medium' or 'paper', got {scale!r}"
        )
    return scale


# ----------------------------------------------------------------------
# Fig. 2 — bus-network flow growth
# ----------------------------------------------------------------------
def fig2_bus_flows(
    *,
    sizes: Sequence[int] = (8, 16, 32, 64),
    epsilon: float = 1e-13,
    seed: int = 7,
) -> FigureResult:
    """Flow magnitudes on the bus case study: PF grows ~linearly, PCF stays O(1).

    Reproduces the mechanism behind Fig. 2: the average is 2 for every n,
    but PF's equilibrium flows reach ``n - 1`` (the unique tree flow), so
    its estimate subtraction cancels catastrophically as n grows. The
    cancellation handshake keeps flows at the scale of the estimates.

    The PCF side runs the *hardened* handshake: on a bus (degree <= 2) the
    two endpoints of an edge constantly gossip with each other in the same
    round, and such message crossings deterministically trigger the Fig. 5
    role-adoption race until some edge deadlocks and the computation's
    mass drains away — see :func:`finding_crossing_deadlock`, which
    demonstrates exactly that.
    """
    rows: List[List[object]] = []
    for n in sizes:
        topo = standard.bus(n)
        data = bus_case_study_data(n)
        cap = 200 * n * n  # diffusive mixing on a path is Theta(n^2)
        for alg in ("push_flow", "push_cancel_flow_hardened"):
            cls = vector_engine_for(alg)
            weights = np.ones(n)
            engine = cls(topo, data, weights, seed=seed)
            truth = float(true_aggregate(AggregateKind.AVERAGE, list(data)))

            def stop(eng, _r, truth=truth, eps=epsilon):
                est = eng.estimates()[:, 0]
                if not np.all(np.isfinite(est)):
                    return False
                return float(np.max(np.abs(est - truth) / abs(truth))) <= eps

            engine.run(cap, stop_when=stop, check_every=16)
            est = engine.estimates()[:, 0]
            err = float(np.max(np.abs(est - truth) / abs(truth)))
            rows.append(
                [alg, n, engine.round, err, engine.max_flow_magnitude()]
            )
    return FigureResult(
        figure="Fig. 2 (bus-network case study)",
        headers=["algorithm", "n", "rounds", "max_rel_error", "max_flow_magnitude"],
        rows=rows,
        notes=(
            "Target aggregate is 2 for every n; PF flow magnitudes grow ~n "
            "while (hardened) PCF flows stay O(1). Fig-5 PCF deadlocks on "
            "a bus (message-crossing race) — see finding_crossing_deadlock."
        ),
    )


# ----------------------------------------------------------------------
# Reproduction finding: Fig. 5 PCF deadlocks under message crossing
# ----------------------------------------------------------------------
def finding_crossing_deadlock(
    *,
    n: int = 64,
    rounds: int = 20000,
    seed: int = 7,
) -> FigureResult:
    """Demonstrates the Fig. 5 handshake's message-crossing deadlock.

    When both endpoints of an edge gossip with each other in the same
    synchronous round, each processes the other's *pre-round* state — a
    crossed exchange. Crossings can fire the role-adoption rule against an
    outdated role, leaving the edge in a state (role mismatch + era
    mismatch) in which both sides ignore each other forever; the deadlocked
    node keeps "sending" halves of its estimate into the dead flow, so the
    system's weight mass drains toward zero and the estimates become
    meaningless. On a bus, whose end nodes have a single neighbor,
    crossings happen every round and the drain is fast and certain; on
    high-degree topologies it is rare enough that the paper's 200-round
    experiments never trip it. The hardened handshake (era-derived roles,
    initiator-only cancellation) is immune by construction.
    """
    topo = standard.bus(n)
    data = bus_case_study_data(n)
    rows: List[List[object]] = []
    for alg in ("push_cancel_flow", "push_cancel_flow_hardened"):
        cls = vector_engine_for(alg)
        engine = cls(topo, data, np.ones(n), seed=seed)
        engine.run(rounds)
        values, weights = engine.estimate_pairs()
        est = engine.estimates()[:, 0]
        finite = bool(np.all(np.isfinite(est)))
        err = float(np.max(np.abs(est - 2.0) / 2.0)) if finite else float("inf")
        rows.append(
            [alg, n, rounds, float(weights.sum()), finite, err]
        )
    return FigureResult(
        figure="Finding F1 (Fig. 5 PCF message-crossing deadlock)",
        headers=[
            "algorithm",
            "n",
            "rounds",
            "total_weight_mass",
            "estimates_finite",
            "max_rel_error",
        ],
        rows=rows,
        notes=(
            f"bus({n}): healthy total weight mass is ~{n}. Fig-5 PCF "
            "drains toward 0 (deadlocked edges swallow mass); the hardened "
            "variant retains its mass and converges."
        ),
    )


# ----------------------------------------------------------------------
# Figs. 3 & 6 — achievable accuracy vs scale
# ----------------------------------------------------------------------
def accuracy_sweep(
    algorithm: str,
    *,
    scale: str = "small",
    kinds: Sequence[AggregateKind] = (AggregateKind.AVERAGE, AggregateKind.SUM),
    epsilon: float = 1e-15,
    seeds: Sequence[int] = (0, 1, 2),
    stall_rounds: int = 150,
) -> FigureResult:
    """Max local relative accuracy reached by ``algorithm`` vs system size.

    The Figs. 3/6 experiment: 3-D torus and hypercube topologies, SUM and
    AVERAGE aggregates, target accuracy 1e-15, iteration cap; the recorded
    quantity is the best accuracy actually achieved (runs stop early at the
    target or on an error plateau).
    """
    _check_scale(scale)
    configs: List[Tuple[str, Topology]] = []
    for dim in _hypercube_dims(scale):
        configs.append(("hypercube", standard.hypercube(dim)))
    for side in _torus_sides(scale):
        configs.append(("torus3d", standard.torus3d(side)))

    rows: List[List[object]] = []
    for family, topo in configs:
        for kind in kinds:
            errors, rounds_used = [], []
            for seed in seeds:
                data = uniform_data(topo.n, seed=seed)
                result = run_reduction(
                    topo,
                    data,
                    kind=kind,
                    algorithm=algorithm,
                    epsilon=epsilon,
                    backend="vector",
                    schedule_seed=seed + 1000,
                    stall_rounds=stall_rounds,
                    max_rounds=default_round_cap(topo.n, epsilon),
                )
                # The paper's "globally achievable accuracy": the level at
                # which an oracle-terminated run stops — i.e. the best
                # max-error the run touched (error curves fluctuate as
                # transient local perturbations heal).
                errors.append(result.best_error)
                rounds_used.append(result.rounds)
            rows.append(
                [
                    family,
                    kind.value,
                    topo.n,
                    float(np.mean(errors)),
                    float(np.max(errors)),
                    int(np.mean(rounds_used)),
                ]
            )
    return FigureResult(
        figure=f"accuracy sweep [{algorithm}]",
        headers=[
            "topology",
            "aggregate",
            "n",
            "mean_max_rel_error",
            "worst_max_rel_error",
            "mean_rounds",
        ],
        rows=rows,
        notes=f"target epsilon={epsilon:g}, seeds={list(seeds)}, scale={scale}",
    )


def fig3_pf_accuracy(*, scale: str = "small", **kwargs) -> FigureResult:
    """Fig. 3: PF accuracy degrades with growing n."""
    result = accuracy_sweep("push_flow", scale=scale, **kwargs)
    result.figure = "Fig. 3 (PF achievable accuracy vs scale)"
    return result


def fig6_pcf_accuracy(*, scale: str = "small", **kwargs) -> FigureResult:
    """Fig. 6: PCF reaches the 1e-15 target at every tested size."""
    result = accuracy_sweep("push_cancel_flow", scale=scale, **kwargs)
    result.figure = "Fig. 6 (PCF achievable accuracy vs scale)"
    return result


# ----------------------------------------------------------------------
# Figs. 4 & 7 — permanent link failure
# ----------------------------------------------------------------------
def failure_experiment(
    algorithm: str,
    *,
    dimension: int = 6,
    fail_round: int = 75,
    total_rounds: int = 200,
    data_seed: int = 0,
    schedule_seed: int = 42,
    edge: Tuple[int, int] = (0, 1),
) -> Tuple[ErrorHistory, FallbackReport]:
    """One Figs. 4/7 run: hypercube(dimension), one permanent link failure.

    Returns the per-round error history and the fallback analysis of the
    handling event. PF vs PCF runs with identical seeds see identical
    communication schedules, as in the paper.
    """
    topo = hypercube(dimension)
    data = uniform_data(topo.n, seed=data_seed)
    truth = true_aggregate(AggregateKind.AVERAGE, list(data))
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    algs = instantiate(algorithm, topo, initial)
    history = ErrorHistory(truth)
    engine = SynchronousEngine(
        topo,
        algs,
        UniformGossipSchedule(topo.n, schedule_seed),
        fault_plan=single_link_failure(fail_round, *edge),
        observers=[history],
    )
    engine.run(total_rounds)
    report = fallback_report(history.max_errors, fail_round)
    return history, report


def _failure_figure(
    algorithm: str, figure: str, *, fail_rounds: Sequence[int] = (75, 175), **kwargs
) -> FigureResult:
    rows: List[List[object]] = []
    series: Dict[str, List[float]] = {}
    for fail_round in fail_rounds:
        history, report = failure_experiment(
            algorithm, fail_round=fail_round, **kwargs
        )
        rows.append(
            [
                algorithm,
                fail_round,
                report.error_before,
                report.error_after,
                report.jump_factor,
                report.restart_fraction,
                report.recovery_rounds,
                history.final_max_error(),
            ]
        )
        series[f"max local error (failure handled at round {fail_round})"] = list(
            history.max_errors
        )
    return FigureResult(
        figure=figure,
        headers=[
            "algorithm",
            "fail_round",
            "error_before",
            "error_after",
            "jump_factor",
            "restart_fraction",
            "recovery_rounds",
            "final_error",
        ],
        rows=rows,
        notes=(
            "6-D hypercube (n=64), single permanent link failure handled at "
            "fail_round; restart_fraction=1 means the failure undid all "
            "convergence progress (the PF behaviour), 0 means none (PCF)."
        ),
        series=series,
    )


def fig4_pf_failure(**kwargs) -> FigureResult:
    """Fig. 4: PF failure handling falls back ~to the start."""
    return _failure_figure("push_flow", "Fig. 4 (PF under a permanent link failure)", **kwargs)


def fig7_pcf_failure(**kwargs) -> FigureResult:
    """Fig. 7: PCF tolerates the same failure without fallback."""
    return _failure_figure(
        "push_cancel_flow", "Fig. 7 (PCF under a permanent link failure)", **kwargs
    )


# ----------------------------------------------------------------------
# Sec. III-B equivalence claim
# ----------------------------------------------------------------------
def equivalence_experiment(
    *,
    dimension: int = 5,
    rounds: int = 150,
    data_seed: int = 3,
    schedule_seed: int = 11,
) -> FigureResult:
    """PF and PCF produce (near-)identical estimates failure-free.

    Runs both protocols under one scripted schedule and reports the largest
    per-node estimate discrepancy over the whole run — theoretically zero
    (Sec. III-B), tiny rounding differences in practice.
    """
    topo = hypercube(dimension)
    data = uniform_data(topo.n, seed=data_seed)
    truth = true_aggregate(AggregateKind.AVERAGE, list(data))
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))

    from repro.simulation.observers import Observer

    class _Recorder(Observer):
        def __init__(self) -> None:
            self.estimates_per_round: List[np.ndarray] = []

        def on_round_end(self, eng, r) -> None:
            self.estimates_per_round.append(
                np.array([a.estimate() for a in eng.algorithms])
            )

    runs = {}
    for alg in ("push_flow", "push_cancel_flow"):
        algs = instantiate(alg, topo, initial)
        history = ErrorHistory(truth)
        recorder = _Recorder()
        engine = SynchronousEngine(
            topo,
            algs,
            UniformGossipSchedule(topo.n, schedule_seed),
            observers=[history, recorder],
        )
        engine.run(rounds)
        runs[alg] = (np.stack(recorder.estimates_per_round), history)

    pf_series, pf_hist = runs["push_flow"]
    pcf_series, pcf_hist = runs["push_cancel_flow"]
    diff = np.abs(pf_series - pcf_series)
    scale = max(abs(float(truth)), 1e-300)
    rows = [
        [
            "max |PF - PCF| / |truth| (whole run)",
            float(diff.max()) / scale,
        ],
        ["final PF max error", pf_hist.final_max_error()],
        ["final PCF max error", pcf_hist.final_max_error()],
    ]
    return FigureResult(
        figure="Sec. III-B (failure-free PF = PCF equivalence)",
        headers=["quantity", "value"],
        rows=rows,
        notes=f"hypercube({dimension}), identical schedule seed {schedule_seed}",
    )


# ----------------------------------------------------------------------
# Fig. 8 — distributed QR
# ----------------------------------------------------------------------
def fig8_qr(
    *,
    scale: str = "small",
    m: int = 16,
    runs: int = 5,
    algorithms: Sequence[str] = ("push_flow", "push_cancel_flow"),
    epsilon: float = 1e-15,
    base_seed: int = 0,
) -> FigureResult:
    """Fig. 8: dmGS factorization error vs node count, PF vs PCF.

    Random ``V in R^{N x 16}`` distributed one row per node over a
    hypercube; every norm/dot product is a gossip reduction with target
    accuracy ``epsilon``; results averaged over ``runs`` seeds (the paper
    uses 50; the benchmark default is smaller for runtime, configurable).
    """
    _check_scale(scale)
    rows: List[List[object]] = []
    for dim in _qr_dims(scale):
        topo = hypercube(dim)
        n = topo.n
        for alg in algorithms:
            fact_errors, orth_errors, failed = [], [], 0
            for run_index in range(runs):
                v = random_matrix(n, m, seed=base_seed + 7919 * run_index)
                result = distributed_qr(
                    v,
                    topo,
                    algorithm=alg,
                    epsilon=epsilon,
                    seed=base_seed + run_index,
                )
                fact_errors.append(result.factorization_error)
                orth_errors.append(result.orthogonality_error)
                failed += result.result.failed_reductions
            rows.append(
                [
                    alg,
                    n,
                    float(np.mean(fact_errors)),
                    float(np.mean(orth_errors)),
                    failed,
                ]
            )
    return FigureResult(
        figure="Fig. 8 (dmGS factorization error, PF vs PCF)",
        headers=[
            "algorithm",
            "N",
            "mean_fact_error",
            "mean_orth_error",
            "capped_reductions",
        ],
        rows=rows,
        notes=(
            f"V in R^(N x {m}), hypercube, per-reduction target "
            f"epsilon={epsilon:g}, {runs} runs averaged; "
            "'capped_reductions' counts reductions that hit their iteration "
            "cap before reaching the target (PF's failure mode)."
        ),
    )


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
def ablation_pf_variants(
    *,
    dims: Sequence[int] = (3, 6, 9),
    epsilon: float = 1e-15,
    seeds: Sequence[int] = (0, 1),
) -> FigureResult:
    """PF `recompute` vs `incremental` flow-sum bookkeeping (Sec. II-B remark).

    The paper notes storing the sum of flows in a single variable "for
    efficiency reasons" does not rescue PF's accuracy — both variants hit a
    scale-dependent floor.
    """
    rows: List[List[object]] = []
    for dim in dims:
        topo = hypercube(dim)
        for alg in ("push_flow", "push_flow_incremental"):
            errs = []
            for seed in seeds:
                data = uniform_data(topo.n, seed=seed)
                result = run_reduction(
                    topo,
                    data,
                    algorithm=alg,
                    epsilon=epsilon,
                    backend="object",
                    schedule_seed=seed + 77,
                    stall_rounds=80,
                )
                errs.append(result.best_error)
            rows.append([alg, topo.n, float(np.mean(errs)), float(np.max(errs))])
    return FigureResult(
        figure="Ablation A1 (PF flow-sum bookkeeping variants)",
        headers=["algorithm", "n", "mean_max_rel_error", "worst_max_rel_error"],
        rows=rows,
    )


def ablation_state_bit_flips(
    *,
    dimension: int = 5,
    flip_rounds: Sequence[int] = (60, 90, 120),
    total_rounds: int = 400,
    data_seed: int = 0,
    schedule_seed: int = 5,
    flip_seed: int = 123,
) -> FigureResult:
    """Memory soft errors: who heals, who is corrupted permanently.

    Flips bits in *stored* flow variables mid-run. Protocols that re-read
    their flows (PF recompute, PCF robust) recover; incrementally tracked
    flow sums (PF incremental, PCF efficient) keep a permanent estimate
    offset — the trade-off behind the paper's two PCF formulations.
    """
    topo = hypercube(dimension)
    data = uniform_data(topo.n, seed=data_seed)
    truth = true_aggregate(AggregateKind.AVERAGE, list(data))
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    rows: List[List[object]] = []
    for alg in (
        "push_flow",
        "push_flow_incremental",
        "push_cancel_flow",
        "push_cancel_flow_robust",
    ):
        algs = instantiate(alg, topo, initial)
        history = ErrorHistory(truth)
        injector = StateBitFlipInjector(flip_rounds, seed=flip_seed)
        engine = SynchronousEngine(
            topo,
            algs,
            UniformGossipSchedule(topo.n, schedule_seed),
            observers=[history, injector],
        )
        engine.run(total_rounds)
        pre_flip = min(history.max_errors[: min(flip_rounds)])
        rows.append(
            [
                alg,
                pre_flip,
                history.final_max_error(),
                len(injector.injections),
                history.final_max_error() <= 100 * max(pre_flip, 1e-15),
            ]
        )
    return FigureResult(
        figure="Ablation A2 (memory soft errors: stored-flow bit flips)",
        headers=[
            "algorithm",
            "best_error_before_flips",
            "final_error",
            "flips",
            "recovered",
        ],
        rows=rows,
        notes=f"hypercube({dimension}), flips at rounds {list(flip_rounds)}",
    )


def ablation_message_loss(
    *,
    dimension: int = 6,
    loss_rates: Sequence[float] = (0.0, 0.05, 0.2),
    total_rounds: int = 400,
    data_seed: int = 1,
    schedule_seed: int = 9,
) -> FigureResult:
    """Push-sum vs PF vs PCF under i.i.d. message loss (Sec. II-A claim).

    Push-sum loses mass with every dropped message and converges to a wrong
    value; the flow algorithms self-heal and still reach high accuracy.
    """
    topo = hypercube(dimension)
    data = uniform_data(topo.n, seed=data_seed)
    truth = true_aggregate(AggregateKind.AVERAGE, list(data))
    initial = initial_mass_pairs(AggregateKind.AVERAGE, list(data))
    rows: List[List[object]] = []
    for loss in loss_rates:
        for alg in ("push_sum", "push_flow", "push_cancel_flow"):
            algs = instantiate(alg, topo, initial)
            history = ErrorHistory(truth)
            engine = SynchronousEngine(
                topo,
                algs,
                UniformGossipSchedule(topo.n, schedule_seed),
                message_fault=IidMessageLoss(loss, seed=31),
                observers=[history],
            )
            engine.run(total_rounds)
            rows.append([alg, loss, history.final_max_error()])
    return FigureResult(
        figure="Ablation A3 (message loss: push-sum vs PF vs PCF)",
        headers=["algorithm", "loss_rate", "final_max_rel_error"],
        rows=rows,
        notes=f"hypercube({dimension}), {total_rounds} rounds",
    )


def ablation_data_distribution(
    *,
    dimension: int = 9,
    epsilon: float = 1e-15,
    seeds: Sequence[int] = (0, 1),
    algorithms: Sequence[str] = ("push_flow", "push_cancel_flow"),
) -> FigureResult:
    """Achievable accuracy vs initial data distribution (Sec. II-B factor iii).

    The paper lists the initial data distribution among the parameters that
    set PF's achievable accuracy: concentrated surpluses force large
    equilibrium flows. Compares uniform data, a single-spike distribution
    (the bus case study's pattern: one node holds ~n, the rest 1), and a
    wide log-uniform spread, on a hypercube.
    """
    topo = standard.hypercube(dimension)
    n = topo.n

    def make_data(kind: str, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        if kind == "uniform":
            return rng.uniform(size=n)
        if kind == "spike":
            data = np.ones(n)
            data[0] = float(n + 1)
            return data
        if kind == "log_uniform":
            return 10.0 ** rng.uniform(-3, 3, size=n)
        raise ExperimentError(f"unknown data kind {kind!r}")

    rows: List[List[object]] = []
    for kind in ("uniform", "spike", "log_uniform"):
        for algorithm in algorithms:
            errors = []
            for seed in seeds:
                data = make_data(kind, seed)
                result = run_reduction(
                    topo,
                    data,
                    algorithm=algorithm,
                    epsilon=epsilon,
                    backend="vector",
                    schedule_seed=seed + 31,
                    stall_rounds=150,
                )
                errors.append(result.best_error)
            rows.append([kind, algorithm, n, float(np.mean(errors))])
    return FigureResult(
        figure="Ablation A5 (initial data distribution vs accuracy)",
        headers=["data", "algorithm", "n", "mean_best_max_rel_error"],
        rows=rows,
        notes=(
            "Sec. II-B factor (iii): on a well-connected hypercube the "
            "data distribution shifts PF's floor only mildly (fast mixing "
            "keeps flows small regardless); the pathological interaction "
            "is data placement x poor topology — see the bus case study "
            "(fig2), where the same spike forces O(n) flows."
        ),
    )


def scaling_rounds(
    *,
    dims: Sequence[int] = (3, 5, 7, 9),
    epsilon: float = 1e-12,
    seeds: Sequence[int] = (0, 1, 2),
    algorithm: str = "push_cancel_flow",
) -> FigureResult:
    """Convergence rounds vs n — the O(log n + log 1/eps) scaling claim."""
    rows: List[List[object]] = []
    for dim in dims:
        topo = hypercube(dim)
        rounds_used = []
        for seed in seeds:
            data = uniform_data(topo.n, seed=seed)
            result = run_reduction(
                topo,
                data,
                algorithm=algorithm,
                epsilon=epsilon,
                backend="vector",
                schedule_seed=seed + 17,
            )
            rounds_used.append(result.rounds)
        rows.append(
            [
                topo.n,
                int(np.mean(rounds_used)),
                float(np.mean(rounds_used) / max(math.log2(topo.n), 1.0)),
            ]
        )
    return FigureResult(
        figure=f"Scaling A4 (rounds to epsilon={epsilon:g}, {algorithm}, hypercube)",
        headers=["n", "mean_rounds", "rounds_per_log2n"],
        rows=rows,
        notes="rounds/log2(n) stays ~flat for the logarithmic-scaling claim",
    )
