"""Workload (initial data) generators for the experiments.

The paper specifies initial data only for the bus case study
(``v_1 = n + 1, v_i = 1``); the scaling and failure experiments use
generic data, which we generate reproducibly as uniform randoms. All
generators are pure functions of their seeds.
"""

from __future__ import annotations

from typing import List

import numpy as np


def uniform_data(
    n: int, *, seed: int = 0, low: float = 0.0, high: float = 1.0
) -> np.ndarray:
    """Uniform random per-node scalars in ``[low, high)``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not low < high:
        raise ValueError(f"need low < high, got [{low}, {high})")
    return np.random.default_rng(seed).uniform(low, high, size=n)


def bus_case_study_data(n: int) -> np.ndarray:
    """Sec. II-B's bus workload: ``v_1 = n + 1``, all other nodes ``1``.

    The exact average is 2 for every ``n`` while the equilibrium PF flows
    grow linearly with ``n`` — the engineered cancellation disaster.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    data = np.ones(n)
    data[0] = n + 1
    return data


def bus_equilibrium_flows(n: int) -> List[float]:
    """The unique PF equilibrium flows of the bus case study (Fig. 2 bottom).

    Returns ``[f_{1,2}, f_{2,3}, ..., f_{n-1,n}]`` in the paper's 1-based
    labelling: ``f_{i,i+1} = n - i``. (A bus is a tree, so the equalizing
    flow is unique — any converged PF run must reach exactly these values,
    up to rounding.)
    """
    if n < 2:
        raise ValueError(f"need at least 2 nodes, got {n}")
    return [float(n - i) for i in range(1, n)]


def random_matrix(
    rows: int, cols: int, *, seed: int = 0, distribution: str = "uniform"
) -> np.ndarray:
    """Random test matrices for the QR experiments (Fig. 8 uses random V)."""
    rng = np.random.default_rng(seed)
    if distribution == "uniform":
        return rng.uniform(-1.0, 1.0, size=(rows, cols))
    if distribution == "normal":
        return rng.standard_normal((rows, cols))
    if distribution == "graded":
        # Columns with geometrically decaying scales — a harder
        # orthogonalization problem for Gram-Schmidt-type methods.
        base = rng.standard_normal((rows, cols))
        scales = np.logspace(0, -8, cols)
        return base * scales[None, :]
    raise ValueError(f"unknown distribution {distribution!r}")
