"""Persistence of experiment results as JSON.

Benchmarks write their tables next to the logs so EXPERIMENTS.md and later
analysis can be regenerated without re-running the sweeps.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Union

from repro.exceptions import ExperimentError
from repro.experiments.figures import FigureResult


def _jsonable(value: object) -> object:
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
    return value


def _from_json(value: object) -> object:
    if value == "nan":
        return float("nan")
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    return value


def save_result(result: FigureResult, path: Union[str, pathlib.Path]) -> None:
    """Write a figure result to ``path`` as JSON."""
    payload = {
        "figure": result.figure,
        "headers": list(result.headers),
        "rows": [[_jsonable(c) for c in row] for row in result.rows],
        "notes": result.notes,
        "series": result.series,
    }
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2))


def load_result(path: Union[str, pathlib.Path]) -> FigureResult:
    """Read a figure result previously written by :func:`save_result`."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ExperimentError(f"cannot load result from {path}: {exc}") from exc
    for key in ("figure", "headers", "rows"):
        if key not in payload:
            raise ExperimentError(f"result file {path} is missing {key!r}")
    return FigureResult(
        figure=payload["figure"],
        headers=list(payload["headers"]),
        rows=[[_from_json(c) for c in row] for row in payload["rows"]],
        notes=payload.get("notes", ""),
        series=payload.get("series"),
    )
