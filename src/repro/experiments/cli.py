"""Command-line entry point: ``python -m repro.experiments <figure>``.

Runs one of the paper's experiments and prints its table; ``--save`` writes
the result JSON next to the console output.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import figures
from repro.experiments.io import save_result

_EXPERIMENTS: Dict[str, Callable[..., figures.FigureResult]] = {
    "fig2": figures.fig2_bus_flows,
    "fig3": figures.fig3_pf_accuracy,
    "fig4": figures.fig4_pf_failure,
    "fig6": figures.fig6_pcf_accuracy,
    "fig7": figures.fig7_pcf_failure,
    "fig8": figures.fig8_qr,
    "equivalence": figures.equivalence_experiment,
    "ablation-pf-variants": figures.ablation_pf_variants,
    "ablation-bit-flips": figures.ablation_state_bit_flips,
    "ablation-message-loss": figures.ablation_message_loss,
    "ablation-data-distribution": figures.ablation_data_distribution,
    "scaling-rounds": figures.scaling_rounds,
    "finding-crossing-deadlock": figures.finding_crossing_deadlock,
}

_SCALED = {"fig2": False, "fig3": True, "fig6": True, "fig8": True}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation figures as tables.",
        epilog=(
            "Scenario sweeps: 'python -m repro.experiments campaign <spec>' "
            "runs a fault-injection campaign grid (see repro.campaigns; "
            "'campaign --help' for options, including the execution "
            "--engine and kernel --backend axes: numpy reference or "
            "numba-jitted fused kernels). Causal tracing: 'python -m "
            "repro.experiments trace run|diff|query|validate' (see "
            "repro.tracing; 'trace --help' for options). Campaign "
            "analytics: 'python -m repro.experiments analyze <dir>' "
            "regenerates registry figures and writes an HTML dashboard "
            "(see repro.analysis.campaigns; 'analyze --help'). Live "
            "observability: 'python -m repro.experiments serve <dir>' "
            "serves a campaign's /metrics, /progress, /alerts and "
            "/dashboard over HTTP (see repro.telemetry.server; "
            "'serve --help'; campaigns expose the same endpoints "
            "in-flight via 'campaign ... --metrics-port'). Reduction "
            "service: 'python -m repro.experiments serve-reductions' "
            "runs the persistent multi-tenant aggregation daemon with "
            "live /metrics, /healthz and /jobs (see repro.service; "
            "'serve-reductions --help')."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which experiment to run ('all' runs every one)",
    )
    parser.add_argument(
        "--scale",
        choices=["small", "medium", "paper"],
        default="small",
        help="parameter range for the scaling experiments (default: small)",
    )
    parser.add_argument(
        "--save",
        metavar="PATH",
        default=None,
        help="also write the result as JSON to PATH (directory for 'all')",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render recorded error series as ASCII log plots",
    )
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help=(
            "capture metrics + per-round trace for every engine the "
            "experiment runs and dump them (JSONL/CSV/Prometheus) to PATH; "
            "summarize with 'python -m repro.telemetry.report PATH'"
        ),
    )
    parser.add_argument(
        "--telemetry-every",
        metavar="N",
        type=int,
        default=None,
        help=(
            "record per-round telemetry every N rounds (default: 8; "
            "sampling keeps default-on overhead low — message totals stay "
            "exact, per-message detail and phase timing are thinned)"
        ),
    )
    parser.add_argument(
        "--telemetry-sample-rate",
        metavar="RATE",
        type=float,
        default=None,
        help=(
            "alternative to --telemetry-every: sample fraction in (0, 1], "
            "e.g. 0.125 records one round in 8"
        ),
    )
    return parser


def run_experiment(name: str, scale: str) -> figures.FigureResult:
    func = _EXPERIMENTS[name]
    if _SCALED.get(name, False):
        return func(scale=scale)
    return func()


def _run_and_report(args: argparse.Namespace, names: List[str]) -> None:
    for name in names:
        result = run_experiment(name, args.scale)
        print(result.render())
        print()
        if args.plot and result.series:
            from repro.experiments.plotting import ascii_log_plot

            print(
                ascii_log_plot(
                    result.series, title=f"{result.figure} — error series"
                )
            )
            print()
        if args.save:
            target = (
                f"{args.save.rstrip('/')}/{name}.json"
                if args.experiment == "all"
                else args.save
            )
            save_result(result, target)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "campaign":
        # Campaign sweeps have their own axes/options; dispatch before the
        # figure parser so 'campaign' composes with the figure subcommands.
        from repro.campaigns.cli import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.tracing.cli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "analyze":
        from repro.analysis.campaigns.cli import main as analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.telemetry.server import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "serve-reductions":
        from repro.service.cli import main as service_main

        return service_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.telemetry_every is not None and args.telemetry_every < 1:
        parser.error(f"--telemetry-every must be >= 1, got {args.telemetry_every}")
    if args.telemetry_every is not None and args.telemetry_sample_rate is not None:
        parser.error(
            "--telemetry-every and --telemetry-sample-rate are mutually "
            "exclusive"
        )
    if args.telemetry_sample_rate is not None and not (
        0.0 < args.telemetry_sample_rate <= 1.0
    ):
        parser.error(
            f"--telemetry-sample-rate must be in (0, 1], got "
            f"{args.telemetry_sample_rate}"
        )
    names = sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.telemetry:
        from repro.telemetry import capture

        with capture(
            args.telemetry,
            sample_every=args.telemetry_every,
            sample_rate=args.telemetry_sample_rate,
        ):
            _run_and_report(args, names)
        print(
            f"telemetry dumped to {args.telemetry} "
            f"(summarize: python -m repro.telemetry.report {args.telemetry})"
        )
    else:
        _run_and_report(args, names)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
