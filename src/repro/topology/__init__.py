"""Network topologies for gossip reductions.

The paper's evaluation uses bus networks, 3-D tori and hypercubes; this
package provides those plus extra families for ablations, along with graph
property analysis (diameter, spectral gap) that governs convergence speed.
"""

from repro.topology.base import Topology, directed_edge_list
from repro.topology.properties import (
    average_path_length,
    bfs_distances,
    diameter,
    expected_rounds,
    metropolis_weights,
    spectral_gap,
    summarize,
)
from repro.topology.random_graphs import erdos_renyi, random_regular, watts_strogatz
from repro.topology.registry import FAMILIES, build
from repro.topology.standard import (
    binary_tree,
    bus,
    complete,
    from_adjacency,
    grid2d,
    hypercube,
    hypercube_for_nodes,
    kary_ncube,
    ring,
    star,
    torus3d,
    torus3d_for_nodes,
)

__all__ = [
    "Topology",
    "directed_edge_list",
    "bus",
    "ring",
    "complete",
    "star",
    "binary_tree",
    "hypercube",
    "hypercube_for_nodes",
    "kary_ncube",
    "grid2d",
    "torus3d",
    "torus3d_for_nodes",
    "from_adjacency",
    "erdos_renyi",
    "random_regular",
    "watts_strogatz",
    "build",
    "FAMILIES",
    "diameter",
    "average_path_length",
    "bfs_distances",
    "spectral_gap",
    "metropolis_weights",
    "expected_rounds",
    "summarize",
]
