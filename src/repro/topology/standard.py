"""Builders for the standard topology families used throughout the paper.

The paper's experiments run on bus (path) networks (Sec. II-B case study),
3-D tori ``2^i x 2^i x 2^i`` and hypercubes of dimension ``3i`` (Figs. 3/6),
and a 6-D hypercube for the failure experiments (Figs. 4/7). We additionally
provide rings, stars, complete graphs, 2-D grids/tori and binary trees for
the topology-sensitivity ablations (achievable accuracy depends on topology,
Sec. II-B).
"""

from __future__ import annotations

import itertools
from typing import List, Sequence

from repro.exceptions import TopologyError
from repro.topology.base import Edge, Topology
from repro.util.validation import check_positive_int


def bus(n: int) -> Topology:
    """Bus/path network: node ``i`` talks to ``i-1`` and ``i+1`` only.

    This is the Sec. II-B case-study topology where PF's flow variables grow
    linearly with ``n`` at equilibrium.
    """
    check_positive_int(n, "n")
    if n == 1:
        return Topology(1, [], name="bus")
    edges = [(i, i + 1) for i in range(n - 1)]
    return Topology(n, edges, name="bus")


def ring(n: int) -> Topology:
    """Cycle on ``n >= 3`` nodes."""
    check_positive_int(n, "n")
    if n < 3:
        raise TopologyError(f"a ring needs at least 3 nodes, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Topology(n, edges, name="ring")


def complete(n: int) -> Topology:
    """Fully connected graph (the setting of the original push-sum analysis)."""
    check_positive_int(n, "n")
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return Topology(n, edges, name="complete")


def star(n: int) -> Topology:
    """Star with node 0 at the hub."""
    check_positive_int(n, "n")
    if n < 2:
        raise TopologyError(f"a star needs at least 2 nodes, got {n}")
    edges = [(0, i) for i in range(1, n)]
    return Topology(n, edges, name="star")


def binary_tree(n: int) -> Topology:
    """Complete binary tree in heap order (node ``i`` → children ``2i+1, 2i+2``)."""
    check_positive_int(n, "n")
    edges: List[Edge] = []
    for i in range(n):
        for child in (2 * i + 1, 2 * i + 2):
            if child < n:
                edges.append((i, child))
    return Topology(n, edges, name="binary_tree")


def hypercube(dimension: int) -> Topology:
    """Boolean hypercube of the given dimension (``n = 2**dimension``).

    Node labels are the vertex coordinates read as binary integers; two nodes
    are adjacent iff their labels differ in exactly one bit. The paper uses
    hypercubes of dimension ``3i`` for the scaling study (so hypercube and
    torus points share node counts) and dimension 6 for Figs. 4/7.
    """
    check_positive_int(dimension, "dimension")
    n = 1 << dimension
    edges = [
        (node, node ^ (1 << bit))
        for node in range(n)
        for bit in range(dimension)
        if node < node ^ (1 << bit)
    ]
    return Topology(n, edges, name=f"hypercube({dimension})")


def grid2d(rows: int, cols: int, *, periodic: bool = False) -> Topology:
    """2-D mesh (``periodic=False``) or 2-D torus (``periodic=True``)."""
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")

    def node(r: int, c: int) -> int:
        return r * cols + c

    edges = set()
    for r in range(rows):
        for c in range(cols):
            here = node(r, c)
            if c + 1 < cols:
                edges.add((here, node(r, c + 1)))
            elif periodic and cols > 2:
                edges.add((node(r, 0), here))
            if r + 1 < rows:
                edges.add((here, node(r + 1, c)))
            elif periodic and rows > 2:
                edges.add((node(0, c), here))
    kind = "torus2d" if periodic else "grid2d"
    return Topology(rows * cols, sorted(edges), name=f"{kind}({rows}x{cols})")


def torus3d(side: int) -> Topology:
    """3-D torus ``side x side x side`` with wrap-around links.

    The paper's scaling experiments use ``side = 2**i``. Every node has
    degree 6 for ``side >= 3``; for ``side = 2`` wrap-around links coincide
    with mesh links and the degree is 3.
    """
    check_positive_int(side, "side")

    def node(x: int, y: int, z: int) -> int:
        return (x * side + y) * side + z

    edges = set()
    for x, y, z in itertools.product(range(side), repeat=3):
        here = node(x, y, z)
        for neighbor in (
            node((x + 1) % side, y, z),
            node(x, (y + 1) % side, z),
            node(x, y, (z + 1) % side),
        ):
            if neighbor != here:
                edges.add((min(here, neighbor), max(here, neighbor)))
    return Topology(side ** 3, sorted(edges), name=f"torus3d({side})")


def kary_ncube(k: int, dimension: int) -> Topology:
    """k-ary n-cube: the family containing both paper topologies.

    Nodes are d-digit base-k coordinates; two nodes are adjacent iff their
    coordinates differ by +-1 (mod k) in exactly one dimension. Special
    cases: ``kary_ncube(2, d)`` is the d-dimensional hypercube,
    ``kary_ncube(k, 3)`` the 3-D torus with side k, ``kary_ncube(k, 1)``
    a ring. The paper's scaling study walks two slices of this family;
    the builder lets ablations interpolate between them (e.g. 8-ary
    2-cubes vs 2-ary 6-cubes at equal node count).
    """
    check_positive_int(k, "k")
    check_positive_int(dimension, "dimension")
    if k < 2:
        raise TopologyError(f"k must be >= 2, got {k}")
    n = k ** dimension
    edges = set()
    for node in range(n):
        # Decode base-k digits.
        digits = []
        rest = node
        for _ in range(dimension):
            digits.append(rest % k)
            rest //= k
        for axis in range(dimension):
            up = digits.copy()
            up[axis] = (up[axis] + 1) % k
            neighbor = 0
            for d in reversed(up):
                neighbor = neighbor * k + d
            if neighbor != node:
                edges.add((min(node, neighbor), max(node, neighbor)))
    return Topology(n, sorted(edges), name=f"kary_ncube({k},{dimension})")


def from_adjacency(neighbors: Sequence[Sequence[int]], *, name: str = "custom") -> Topology:
    """Build a topology from per-node neighbor lists (symmetry enforced)."""
    n = len(neighbors)
    edges = set()
    for i, nbrs in enumerate(neighbors):
        for j in nbrs:
            if j == i:
                raise TopologyError(f"self-loop on node {i}")
            edges.add((min(i, j), max(i, j)))
    topo = Topology(n, sorted(edges), name=name)
    # Verify the caller's lists were symmetric; a one-directional listing is
    # almost certainly a bug in hand-written input.
    for i, nbrs in enumerate(neighbors):
        if set(nbrs) != set(topo.neighbors(i)):
            raise TopologyError(
                f"adjacency lists are not symmetric around node {i}"
            )
    return topo


def hypercube_for_nodes(n: int) -> Topology:
    """Hypercube with exactly ``n`` nodes; ``n`` must be a power of two."""
    check_positive_int(n, "n")
    if n & (n - 1):
        raise TopologyError(f"hypercube node count must be a power of two, got {n}")
    return hypercube(n.bit_length() - 1)


def torus3d_for_nodes(n: int) -> Topology:
    """3-D torus with exactly ``n`` nodes; ``n`` must be a perfect cube."""
    check_positive_int(n, "n")
    side = round(n ** (1.0 / 3.0))
    for candidate in (side - 1, side, side + 1):
        if candidate > 0 and candidate ** 3 == n:
            return torus3d(candidate)
    raise TopologyError(f"3-D torus node count must be a perfect cube, got {n}")
