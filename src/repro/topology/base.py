"""Immutable network topology abstraction.

A :class:`Topology` is a simple undirected graph on nodes ``0..n-1`` with at
least one edge per node (gossip algorithms require a nonempty neighborhood
``N_i`` for every node, Sec. II-A of the paper). It is deliberately
lightweight — adjacency sets plus derived index structures — so both the
object engine and the vectorized engine can consume it directly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Tuple

from repro.exceptions import TopologyError

Edge = Tuple[int, int]


def _canonical_edge(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


class Topology:
    """An undirected, connected-by-convention communication graph.

    Parameters
    ----------
    n:
        Number of nodes; node identifiers are ``0..n-1``.
    edges:
        Iterable of ``(u, v)`` pairs. Self-loops and duplicates are rejected
        (a duplicate indicates a builder bug and would silently skew the
        uniform neighbor choice of the gossip schedule).
    name:
        Human-readable identifier used in experiment reports.
    require_connected:
        If true (default) the constructor verifies connectivity; gossip
        reductions cannot converge to the global aggregate on a disconnected
        graph, so catching this at construction time saves debugging.
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[Edge],
        *,
        name: str = "custom",
        require_connected: bool = True,
    ) -> None:
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise TopologyError(f"node count must be a positive int, got {n!r}")
        self._n = n
        self._name = name
        adjacency: List[set] = [set() for _ in range(n)]
        edge_set = set()
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise TopologyError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise TopologyError(f"self-loop on node {u} is not allowed")
            canonical = _canonical_edge(u, v)
            if canonical in edge_set:
                raise TopologyError(f"duplicate edge {canonical}")
            edge_set.add(canonical)
            adjacency[u].add(v)
            adjacency[v].add(u)

        if n > 1:
            isolated = [i for i, nbrs in enumerate(adjacency) if not nbrs]
            if isolated:
                raise TopologyError(
                    f"nodes with empty neighborhoods are not allowed: {isolated[:5]}"
                )

        self._neighbors: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(nbrs)) for nbrs in adjacency
        )
        self._edges: Tuple[Edge, ...] = tuple(sorted(edge_set))

        if require_connected and not self._is_connected():
            raise TopologyError(
                f"topology {name!r} with n={n} is not connected; "
                "gossip reductions require a connected graph"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def name(self) -> str:
        return self._name

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All undirected edges as sorted canonical ``(min, max)`` pairs."""
        return self._edges

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Sorted tuple of neighbors of ``node``."""
        self._check_node(node)
        return self._neighbors[node]

    def degree(self, node: int) -> int:
        self._check_node(node)
        return len(self._neighbors[node])

    def degrees(self) -> List[int]:
        return [len(nbrs) for nbrs in self._neighbors]

    def max_degree(self) -> int:
        return max(self.degrees())

    def is_regular(self) -> bool:
        """True when every node has the same degree (torus, hypercube, ring...)."""
        degrees = self.degrees()
        return min(degrees) == max(degrees)

    def has_edge(self, u: int, v: int) -> bool:
        self._check_node(u)
        self._check_node(v)
        return v in self._neighbors[u]

    def nodes(self) -> range:
        return range(self._n)

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return (
            f"Topology(name={self._name!r}, n={self._n}, "
            f"edges={len(self._edges)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n, self._edges))

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def neighbor_index(self, node: int, neighbor: int) -> int:
        """Position of ``neighbor`` within ``neighbors(node)``.

        The vectorized engine stores per-edge flow state in dense
        ``(n, max_degree)`` arrays indexed by this slot number.
        """
        try:
            return self._neighbors[node].index(neighbor)
        except ValueError:
            raise TopologyError(
                f"{neighbor} is not a neighbor of {node} in {self._name!r}"
            ) from None

    def adjacency_sets(self) -> List[FrozenSet[int]]:
        return [frozenset(nbrs) for nbrs in self._neighbors]

    def without_edge(self, u: int, v: int, *, require_connected: bool = True) -> "Topology":
        """A copy with edge ``(u, v)`` removed (permanent link failure)."""
        if not self.has_edge(u, v):
            raise TopologyError(f"edge ({u}, {v}) not present in {self._name!r}")
        removed = _canonical_edge(u, v)
        remaining = [e for e in self._edges if e != removed]
        return Topology(
            self._n,
            remaining,
            name=f"{self._name}-without({u},{v})",
            require_connected=require_connected,
        )

    def without_node(self, node: int, *, require_connected: bool = True) -> "Topology":
        """A copy with ``node``'s edges removed (fail-stop node failure).

        Node identifiers are preserved (the failed node stays as an isolated
        vertex conceptually) but because :class:`Topology` forbids isolated
        vertices, the failed node itself is excluded and a relabeling map is
        returned via :meth:`Topology.relabeling` on the result.
        """
        self._check_node(node)
        keep = [i for i in range(self._n) if i != node]
        relabel: Dict[int, int] = {old: new for new, old in enumerate(keep)}
        remaining = [
            (relabel[u], relabel[v])
            for (u, v) in self._edges
            if u != node and v != node
        ]
        survivor = Topology(
            self._n - 1,
            remaining,
            name=f"{self._name}-without-node({node})",
            require_connected=require_connected,
        )
        survivor._relabeling = dict(relabel)  # type: ignore[attr-defined]
        return survivor

    def relabeling(self) -> Dict[int, int]:
        """Old-id → new-id map when this topology came from :meth:`without_node`."""
        return dict(getattr(self, "_relabeling", {i: i for i in range(self._n)}))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not (0 <= node < self._n):
            raise TopologyError(f"node {node} out of range for n={self._n}")

    def _is_connected(self) -> bool:
        if self._n <= 1:
            return True
        seen = [False] * self._n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in self._neighbors[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self._n


def directed_edge_list(topology: Topology) -> List[Edge]:
    """All ordered ``(i, j)`` pairs with ``j`` a neighbor of ``i``.

    Convenience for fault injectors and state machines that keep per-direction
    state (the PCF edge state machine is per ordered edge).
    """
    pairs: List[Edge] = []
    for i in topology.nodes():
        for j in topology.neighbors(i):
            pairs.append((i, j))
    return pairs
