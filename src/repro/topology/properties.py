"""Graph-property analysis for topologies.

Gossip convergence speed is governed by the topology: the paper notes the
considered algorithms converge fast exactly on networks with short diameter
(those admitting an ``O(log n)`` parallel reduction), and more quantitatively
the mixing behaviour is controlled by the spectral gap of the doubly
stochastic diffusion matrix (Boyd et al. [5]). These helpers let experiments
and tests reason about both.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.base import Topology


def bfs_distances(topology: Topology, source: int) -> List[int]:
    """Hop distances from ``source`` to every node (-1 if unreachable)."""
    dist = [-1] * topology.n
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in topology.neighbors(u):
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def eccentricity(topology: Topology, source: int) -> int:
    dist = bfs_distances(topology, source)
    if min(dist) < 0:
        raise TopologyError("eccentricity is undefined on a disconnected graph")
    return max(dist)


def diameter(topology: Topology, *, sample: Optional[int] = None, seed: int = 0) -> int:
    """Graph diameter; exact by default, sampled lower bound for huge graphs.

    ``sample=k`` computes eccentricities from ``k`` random sources only,
    which lower-bounds the diameter — sufficient for logging/sanity checks on
    2^15-node sweeps where the exact all-pairs pass would dominate runtime.
    """
    if topology.n == 1:
        return 0
    if sample is None or sample >= topology.n:
        sources = range(topology.n)
    else:
        rng = np.random.default_rng(seed)
        sources = rng.choice(topology.n, size=sample, replace=False).tolist()
    return max(eccentricity(topology, s) for s in sources)


def average_path_length(topology: Topology) -> float:
    """Mean hop distance over all ordered node pairs (exact, O(n * m))."""
    if topology.n < 2:
        return 0.0
    total = 0
    for source in topology.nodes():
        dist = bfs_distances(topology, source)
        if min(dist) < 0:
            raise TopologyError("average path length undefined on disconnected graph")
        total += sum(dist)
    return total / (topology.n * (topology.n - 1))


def metropolis_weights(topology: Topology) -> np.ndarray:
    """Symmetric doubly stochastic diffusion matrix via Metropolis weights.

    ``W[i, j] = 1 / (1 + max(deg(i), deg(j)))`` for edges, diagonal absorbs
    the remainder. Standard construction for analyzing averaging dynamics on
    a graph without global degree knowledge.
    """
    n = topology.n
    w = np.zeros((n, n))
    degs = topology.degrees()
    for (u, v) in topology.edges:
        weight = 1.0 / (1.0 + max(degs[u], degs[v]))
        w[u, v] = weight
        w[v, u] = weight
    np.fill_diagonal(w, 1.0 - w.sum(axis=1))
    return w


def spectral_gap(topology: Topology) -> float:
    """``1 - lambda_2(W)`` for the Metropolis diffusion matrix ``W``.

    Larger gap ⇒ faster mixing ⇒ fewer gossip rounds to a fixed accuracy.
    Exact dense eigensolve; intended for n up to a few thousand (tests and
    ablations), not the 2^15 sweeps.
    """
    if topology.n == 1:
        return 1.0
    w = metropolis_weights(topology)
    eigvals = np.linalg.eigvalsh(w)
    # eigvalsh returns ascending order; lambda_1 = 1 is the largest.
    lambda2 = eigvals[-2]
    return float(1.0 - lambda2)


def expected_rounds(topology: Topology, epsilon: float) -> float:
    """Heuristic round estimate ``O(log n + log 1/eps)`` scaled by mixing.

    Returns ``(log n + log(1/eps)) / gap`` — a rough a-priori budget used by
    the harness to pick iteration caps, mirroring the paper's complexity
    claim ``O(log n + log eps^-1)`` for well-connected networks where the
    gap is Θ(1).
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    gap = spectral_gap(topology)
    if gap <= 0.0:
        raise TopologyError("non-positive spectral gap: graph does not mix")
    n = max(topology.n, 2)
    return float((np.log(n) + np.log(1.0 / epsilon)) / gap)


def summarize(topology: Topology, *, exact_diameter_limit: int = 4096) -> Dict[str, object]:
    """One-call structural summary used by experiment reports."""
    degs = topology.degrees()
    info: Dict[str, object] = {
        "name": topology.name,
        "n": topology.n,
        "edges": topology.num_edges,
        "min_degree": min(degs),
        "max_degree": max(degs),
        "regular": topology.is_regular(),
    }
    if topology.n <= exact_diameter_limit:
        info["diameter"] = diameter(topology)
    else:
        info["diameter_lower_bound"] = diameter(topology, sample=8)
    if topology.n <= 2048:
        info["spectral_gap"] = spectral_gap(topology)
    return info
