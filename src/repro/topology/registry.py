"""Name-based topology registry used by the experiment harness and CLI.

Specs reference topologies by ``family`` + node count so experiment
definitions stay serializable (plain dicts/JSON); this module resolves them.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.exceptions import TopologyError
from repro.topology import standard
from repro.topology.base import Topology
from repro.topology.random_graphs import erdos_renyi, random_regular

_BuilderByNodes = Callable[..., Topology]


def build(family: str, n: int, *, seed: Optional[int] = None, **kwargs: object) -> Topology:
    """Build a topology of ``family`` with exactly ``n`` nodes.

    Supported families: ``bus``, ``ring``, ``complete``, ``star``,
    ``binary_tree``, ``hypercube`` (n must be a power of two), ``torus3d``
    (n must be a perfect cube), ``grid2d`` (n must be a perfect square),
    ``erdos_renyi`` (kwarg ``p``), ``random_regular`` (kwarg ``k``).
    """
    family = family.lower()
    if family == "bus":
        return standard.bus(n)
    if family == "ring":
        return standard.ring(n)
    if family == "complete":
        return standard.complete(n)
    if family == "star":
        return standard.star(n)
    if family == "binary_tree":
        return standard.binary_tree(n)
    if family == "hypercube":
        return standard.hypercube_for_nodes(n)
    if family == "torus3d":
        return standard.torus3d_for_nodes(n)
    if family == "grid2d":
        side = round(n ** 0.5)
        if side * side != n:
            raise TopologyError(f"grid2d node count must be a perfect square, got {n}")
        return standard.grid2d(side, side, periodic=bool(kwargs.get("periodic", False)))
    if family == "kary_ncube":
        k = int(kwargs.get("k", 2))
        if k < 2:
            raise TopologyError(f"k must be >= 2, got {k}")
        dimension = 0
        count = 1
        while count < n:
            count *= k
            dimension += 1
        if count != n:
            raise TopologyError(
                f"kary_ncube node count must be a power of k={k}, got {n}"
            )
        return standard.kary_ncube(k, dimension)
    if family == "erdos_renyi":
        p = float(kwargs.get("p", 0.2))
        return erdos_renyi(n, p, seed=seed)
    if family == "random_regular":
        k = int(kwargs.get("k", 4))
        return random_regular(n, k, seed=seed)
    raise TopologyError(f"unknown topology family {family!r}")


FAMILIES = (
    "bus",
    "ring",
    "complete",
    "star",
    "binary_tree",
    "hypercube",
    "torus3d",
    "kary_ncube",
    "grid2d",
    "erdos_renyi",
    "random_regular",
)
