"""Randomized topology builders (Erdős–Rényi, k-regular, small-world-ish).

The paper argues the distributed reductions work on "almost all networks of
relevance" — anything admitting a fast parallel reduction (short diameter).
Random graphs let the test suite and ablations exercise the algorithms on
irregular neighborhoods, which stresses code paths (varying degree, uneven
schedules) that the regular paper topologies never hit.
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from repro.exceptions import TopologyError
from repro.topology.base import Edge, Topology
from repro.util.validation import check_positive_int, check_probability


def erdos_renyi(
    n: int,
    p: float,
    *,
    seed: Optional[int] = None,
    ensure_connected: bool = True,
    max_attempts: int = 64,
) -> Topology:
    """G(n, p) random graph, optionally resampled until connected.

    With ``ensure_connected`` the builder retries up to ``max_attempts``
    fresh samples; for ``p`` above the ``ln(n)/n`` connectivity threshold a
    couple of attempts virtually always suffice.
    """
    check_positive_int(n, "n")
    check_probability(p, "p")
    rng = np.random.default_rng(seed)
    for _ in range(max_attempts):
        upper = np.triu_indices(n, k=1)
        mask = rng.random(len(upper[0])) < p
        edges = list(zip(upper[0][mask].tolist(), upper[1][mask].tolist()))
        try:
            return Topology(n, edges, name=f"erdos_renyi({n},{p})")
        except TopologyError:
            if not ensure_connected:
                raise
    raise TopologyError(
        f"failed to sample a connected G({n}, {p}) in {max_attempts} attempts; "
        "increase p"
    )


def random_regular(
    n: int,
    k: int,
    *,
    seed: Optional[int] = None,
    max_attempts: int = 256,
) -> Topology:
    """Random k-regular graph via the pairing/configuration model.

    Rejection-samples perfect matchings on ``n*k`` stubs until the result is
    simple (no loops/multi-edges) and connected. Practical for the moderate
    sizes used in tests and ablations.
    """
    check_positive_int(n, "n")
    check_positive_int(k, "k")
    if k >= n:
        raise TopologyError(f"degree k={k} must be < n={n}")
    if (n * k) % 2 != 0:
        raise TopologyError(f"n*k must be even for a k-regular graph (n={n}, k={k})")
    rng = np.random.default_rng(seed)
    for _ in range(max_attempts):
        stubs = np.repeat(np.arange(n), k)
        rng.shuffle(stubs)
        pairs = stubs.reshape(-1, 2)
        edge_set: Set[Edge] = set()
        simple = True
        for u, v in pairs:
            u, v = int(u), int(v)
            if u == v or (min(u, v), max(u, v)) in edge_set:
                simple = False
                break
            edge_set.add((min(u, v), max(u, v)))
        if not simple:
            continue
        try:
            return Topology(n, sorted(edge_set), name=f"random_regular({n},{k})")
        except TopologyError:
            continue
    raise TopologyError(
        f"failed to sample a connected simple {k}-regular graph on {n} nodes "
        f"in {max_attempts} attempts"
    )


def watts_strogatz(
    n: int,
    k: int,
    beta: float,
    *,
    seed: Optional[int] = None,
    max_attempts: int = 64,
) -> Topology:
    """Watts–Strogatz small-world graph (ring lattice with rewiring).

    ``k`` must be even; each node starts connected to its ``k/2`` nearest
    neighbors on each side, then each lattice edge is rewired with
    probability ``beta``.
    """
    check_positive_int(n, "n")
    check_positive_int(k, "k")
    check_probability(beta, "beta")
    if k % 2 != 0:
        raise TopologyError(f"k must be even, got {k}")
    if k >= n:
        raise TopologyError(f"k={k} must be < n={n}")
    rng = np.random.default_rng(seed)
    for _ in range(max_attempts):
        edge_set: Set[Edge] = set()
        for i in range(n):
            for offset in range(1, k // 2 + 1):
                j = (i + offset) % n
                edge_set.add((min(i, j), max(i, j)))
        rewired: Set[Edge] = set()
        for (u, v) in sorted(edge_set):
            if rng.random() < beta:
                candidates = [
                    w
                    for w in range(n)
                    if w != u
                    and (min(u, w), max(u, w)) not in rewired
                    and (min(u, w), max(u, w)) not in edge_set
                ]
                if candidates:
                    w = int(rng.choice(candidates))
                    rewired.add((min(u, w), max(u, w)))
                    continue
            rewired.add((u, v))
        try:
            return Topology(n, sorted(rewired), name=f"watts_strogatz({n},{k},{beta})")
        except TopologyError:
            continue
    raise TopologyError(
        f"failed to sample a connected Watts-Strogatz({n},{k},{beta}) graph "
        f"in {max_attempts} attempts"
    )
