"""Vectorized push-sum / push-flow / push-cancel-flow engines.

Each class executes the synchronous round semantics of its object-engine
counterpart (:mod:`repro.algorithms`): the hot per-round update is
delegated to the engine's kernel backend
(:mod:`repro.vectorized.backends`, selected via the ``backend`` keyword),
whose NumPy reference keeps the floating-point operation *order*
identical to the object engine — left-to-right flow summation,
per-message combined phi deltas applied in sender order via
``np.add.at`` — so scripted-schedule runs agree bit-for-bit between the
two engines (verified by the parity tests). Everything else — estimates,
flow diagnostics, link-failure and churn state transitions — stays here
and is backend-independent.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.vectorized.base import VectorizedEngine


class VectorPushSum(VectorizedEngine):
    """Vectorized push-sum (the fragile baseline at scale)."""

    def __init__(self, topology, values, weights, **kwargs) -> None:
        super().__init__(topology, values, weights, **kwargs)
        self._val = self._v0.copy()
        self._w = self._w0.copy()

    def estimate_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._val.copy(), self._w.copy()

    def _reset_nodes(self, nodes) -> None:
        # Rejoin with the initial mass; whatever mass the node carried away
        # at departure is gone — push-sum's churn fragility.
        self._val[nodes] = self._v0[nodes]
        self._w[nodes] = self._w0[nodes]

    def _apply_round(self, senders, slots, delivered) -> None:
        receivers, _ = self._receiver_indices(senders, slots)
        self._kernels.push_sum_round(
            self._val, self._w, senders, receivers, delivered
        )


class VectorPushFlow(VectorizedEngine):
    """Vectorized push-flow, ``recompute`` variant (Fig. 1 semantics)."""

    def __init__(self, topology, values, weights, **kwargs) -> None:
        super().__init__(topology, values, weights, **kwargs)
        n, md, d = self.n, self._arrays.max_degree, self._d
        self._fval = np.zeros((n, md, d))
        self._fw = np.zeros((n, md))

    def estimate_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        # Mirror the object engine's rounding exactly: accumulate the flow
        # sum left-to-right over sorted-neighbor slots first, then subtract
        # it from the initial data in one operation (padded slots hold
        # exact zeros, which cannot perturb the rounding).
        total_val = np.zeros_like(self._v0)
        total_w = np.zeros_like(self._w0)
        for s in range(self._arrays.max_degree):
            total_val += self._fval[:, s]
            total_w += self._fw[:, s]
        return self._v0 - total_val, self._w0 - total_w

    def max_flow_magnitude(self) -> float:
        """Largest flow magnitude — PF's n-dependent blow-up diagnostic."""
        return max(
            float(np.max(np.abs(self._fval))) if self._fval.size else 0.0,
            float(np.max(np.abs(self._fw))) if self._fw.size else 0.0,
        )

    def node_flow_magnitudes(self) -> np.ndarray:
        """Per-node largest flow magnitude, shape (n,) — probe input."""
        if not self._fval.size:
            return np.zeros(self.n)
        per_val = np.max(np.abs(self._fval), axis=(1, 2))
        per_w = np.max(np.abs(self._fw), axis=1)
        return np.maximum(per_val, per_w)

    def _zero_failed_links(self, nodes, slots) -> None:
        # Object PF (recompute) drops the edge's flow record entirely, which
        # is equivalent to an exact-zero flow on that slot.
        self._fval[nodes, slots] = 0.0
        self._fw[nodes, slots] = 0.0

    def _reset_nodes(self, nodes) -> None:
        # Fresh zero flows; the estimate reverts to the initial data.
        self._fval[nodes] = 0.0
        self._fw[nodes] = 0.0

    def _apply_round(self, senders, slots, delivered) -> None:
        # The estimate is fused into the kernel (it recomputes the same
        # left-to-right flow sum as estimate_pairs).
        receivers, r_slots = self._receiver_indices(senders, slots)
        self._kernels.push_flow_round(
            self._fval,
            self._fw,
            self._v0,
            self._w0,
            senders,
            slots,
            receivers,
            r_slots,
            delivered,
        )


class VectorPushCancelFlow(VectorizedEngine):
    """Vectorized push-cancel-flow, ``efficient`` variant (Fig. 5 semantics)."""

    def __init__(self, topology, values, weights, **kwargs) -> None:
        super().__init__(topology, values, weights, **kwargs)
        n, md, d = self.n, self._arrays.max_degree, self._d
        self._fval = np.zeros((n, md, 2, d))
        self._fw = np.zeros((n, md, 2))
        self._c = np.zeros((n, md), dtype=np.int8)
        self._r = np.zeros((n, md), dtype=np.int64)
        self._phi_val = np.zeros((n, d))
        self._phi_w = np.zeros(n)
        self.cancellations = 0
        self.swaps = 0

    def estimate_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._v0 - self._phi_val, self._w0 - self._phi_w

    def max_flow_magnitude(self) -> float:
        """Largest flow magnitude — stays O(estimate) thanks to cancellation."""
        return max(
            float(np.max(np.abs(self._fval))) if self._fval.size else 0.0,
            float(np.max(np.abs(self._fw))) if self._fw.size else 0.0,
        )

    def node_flow_magnitudes(self) -> np.ndarray:
        """Per-node largest flow magnitude, shape (n,) — probe input."""
        if not self._fval.size:
            return np.zeros(self.n)
        per_val = np.max(np.abs(self._fval), axis=(1, 2, 3))
        per_w = np.max(np.abs(self._fw), axis=(1, 2))
        return np.maximum(per_val, per_w)

    def passive_flow_magnitude(self) -> float:
        """Largest *passive*-slot flow magnitude — cancellation progress."""
        if not self._fval.size:
            return 0.0
        passive = (1 - self._c).astype(np.int64)
        p_val = np.take_along_axis(
            self._fval, passive[:, :, None, None], axis=2
        )
        p_w = np.take_along_axis(self._fw, passive[:, :, None], axis=2)
        return max(float(np.max(np.abs(p_val))), float(np.max(np.abs(p_w))))

    def max_era(self) -> int:
        """Highest role-swap era counter reached on any edge."""
        return int(np.max(self._r)) if self._r.size else 0

    def _zero_failed_links(self, nodes, slots) -> None:
        # Object PCF (efficient) folds the edge's total flow back out of phi
        # (phi = phi - (flow[0] + flow[1])) before dropping the edge state.
        total_val = self._fval[nodes, slots, 0] + self._fval[nodes, slots, 1]
        total_w = self._fw[nodes, slots, 0] + self._fw[nodes, slots, 1]
        self._phi_val[nodes] = self._phi_val[nodes] - total_val
        self._phi_w[nodes] = self._phi_w[nodes] - total_w
        self._fval[nodes, slots] = 0.0
        self._fw[nodes, slots] = 0.0
        self._c[nodes, slots] = 0
        self._r[nodes, slots] = 0

    def _reset_nodes(self, nodes) -> None:
        # Fresh zero flows, handshake state and phi — same as the object
        # algorithm's reset_for_join.
        self._fval[nodes] = 0.0
        self._fw[nodes] = 0.0
        self._c[nodes] = 0
        self._r[nodes] = 0
        self._phi_val[nodes] = 0.0
        self._phi_w[nodes] = 0.0

    def _apply_round(self, senders, slots, delivered) -> None:
        receivers, r_slots = self._receiver_indices(senders, slots)
        cancels, swaps = self._kernels.pcf_round(
            self._fval,
            self._fw,
            self._c,
            self._r,
            self._phi_val,
            self._phi_w,
            self._v0,
            self._w0,
            senders,
            slots,
            receivers,
            r_slots,
            delivered,
        )
        self.cancellations += cancels
        self.swaps += swaps
