"""Vectorized push-sum / push-flow / push-cancel-flow engines.

Each class executes the synchronous round semantics of its object-engine
counterpart (:mod:`repro.algorithms`) as whole-array NumPy operations. The
floating-point operation *order* is kept identical to the object engine —
left-to-right flow summation, per-message combined phi deltas applied in
sender order via ``np.add.at`` — so scripted-schedule runs agree
bit-for-bit between the two engines (verified by the parity tests).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.vectorized.base import VectorizedEngine


class VectorPushSum(VectorizedEngine):
    """Vectorized push-sum (the fragile baseline at scale)."""

    def __init__(self, topology, values, weights, **kwargs) -> None:
        super().__init__(topology, values, weights, **kwargs)
        self._val = self._v0.copy()
        self._w = self._w0.copy()

    def estimate_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._val.copy(), self._w.copy()

    def _reset_nodes(self, nodes) -> None:
        # Rejoin with the initial mass; whatever mass the node carried away
        # at departure is gone — push-sum's churn fragility.
        self._val[nodes] = self._v0[nodes]
        self._w[nodes] = self._w0[nodes]

    def _apply_round(self, senders, slots, delivered) -> None:
        receivers, _ = self._receiver_indices(senders, slots)
        # Keep half, send half — the send-side halving happens regardless of
        # delivery (a dropped message loses mass, as in the real protocol).
        half_val = self._val[senders] * 0.5
        half_w = self._w[senders] * 0.5
        self._val[senders] = half_val
        self._w[senders] = half_w
        idx = np.nonzero(delivered)[0]
        np.add.at(self._val, receivers[idx], half_val[idx])
        np.add.at(self._w, receivers[idx], half_w[idx])


class VectorPushFlow(VectorizedEngine):
    """Vectorized push-flow, ``recompute`` variant (Fig. 1 semantics)."""

    def __init__(self, topology, values, weights, **kwargs) -> None:
        super().__init__(topology, values, weights, **kwargs)
        n, md, d = self.n, self._arrays.max_degree, self._d
        self._fval = np.zeros((n, md, d))
        self._fw = np.zeros((n, md))

    def estimate_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        # Mirror the object engine's rounding exactly: accumulate the flow
        # sum left-to-right over sorted-neighbor slots first, then subtract
        # it from the initial data in one operation (padded slots hold
        # exact zeros, which cannot perturb the rounding).
        total_val = np.zeros_like(self._v0)
        total_w = np.zeros_like(self._w0)
        for s in range(self._arrays.max_degree):
            total_val += self._fval[:, s]
            total_w += self._fw[:, s]
        return self._v0 - total_val, self._w0 - total_w

    def max_flow_magnitude(self) -> float:
        """Largest flow magnitude — PF's n-dependent blow-up diagnostic."""
        return max(
            float(np.max(np.abs(self._fval))) if self._fval.size else 0.0,
            float(np.max(np.abs(self._fw))) if self._fw.size else 0.0,
        )

    def node_flow_magnitudes(self) -> np.ndarray:
        """Per-node largest flow magnitude, shape (n,) — probe input."""
        if not self._fval.size:
            return np.zeros(self.n)
        per_val = np.max(np.abs(self._fval), axis=(1, 2))
        per_w = np.max(np.abs(self._fw), axis=1)
        return np.maximum(per_val, per_w)

    def _zero_failed_links(self, nodes, slots) -> None:
        # Object PF (recompute) drops the edge's flow record entirely, which
        # is equivalent to an exact-zero flow on that slot.
        self._fval[nodes, slots] = 0.0
        self._fw[nodes, slots] = 0.0

    def _reset_nodes(self, nodes) -> None:
        # Fresh zero flows; the estimate reverts to the initial data.
        self._fval[nodes] = 0.0
        self._fw[nodes] = 0.0

    def _apply_round(self, senders, slots, delivered) -> None:
        est_val, est_w = self.estimate_pairs()
        receivers, r_slots = self._receiver_indices(senders, slots)

        # Phase 1: virtual sends (sender slots are unique per round).
        self._fval[senders, slots] += est_val[senders] * 0.5
        self._fw[senders, slots] += est_w[senders] * 0.5

        # Phase 2: snapshot the physical payloads.
        sent_val = self._fval[senders, slots].copy()
        sent_w = self._fw[senders, slots].copy()

        # Phase 3: deliveries — receiver (node, slot) pairs are unique.
        idx = np.nonzero(delivered)[0]
        self._fval[receivers[idx], r_slots[idx]] = -sent_val[idx]
        self._fw[receivers[idx], r_slots[idx]] = -sent_w[idx]


class VectorPushCancelFlow(VectorizedEngine):
    """Vectorized push-cancel-flow, ``efficient`` variant (Fig. 5 semantics)."""

    def __init__(self, topology, values, weights, **kwargs) -> None:
        super().__init__(topology, values, weights, **kwargs)
        n, md, d = self.n, self._arrays.max_degree, self._d
        self._fval = np.zeros((n, md, 2, d))
        self._fw = np.zeros((n, md, 2))
        self._c = np.zeros((n, md), dtype=np.int8)
        self._r = np.zeros((n, md), dtype=np.int64)
        self._phi_val = np.zeros((n, d))
        self._phi_w = np.zeros(n)
        self.cancellations = 0
        self.swaps = 0

    def estimate_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._v0 - self._phi_val, self._w0 - self._phi_w

    def max_flow_magnitude(self) -> float:
        """Largest flow magnitude — stays O(estimate) thanks to cancellation."""
        return max(
            float(np.max(np.abs(self._fval))) if self._fval.size else 0.0,
            float(np.max(np.abs(self._fw))) if self._fw.size else 0.0,
        )

    def node_flow_magnitudes(self) -> np.ndarray:
        """Per-node largest flow magnitude, shape (n,) — probe input."""
        if not self._fval.size:
            return np.zeros(self.n)
        per_val = np.max(np.abs(self._fval), axis=(1, 2, 3))
        per_w = np.max(np.abs(self._fw), axis=(1, 2))
        return np.maximum(per_val, per_w)

    def passive_flow_magnitude(self) -> float:
        """Largest *passive*-slot flow magnitude — cancellation progress."""
        if not self._fval.size:
            return 0.0
        passive = (1 - self._c).astype(np.int64)
        p_val = np.take_along_axis(
            self._fval, passive[:, :, None, None], axis=2
        )
        p_w = np.take_along_axis(self._fw, passive[:, :, None], axis=2)
        return max(float(np.max(np.abs(p_val))), float(np.max(np.abs(p_w))))

    def max_era(self) -> int:
        """Highest role-swap era counter reached on any edge."""
        return int(np.max(self._r)) if self._r.size else 0

    def _zero_failed_links(self, nodes, slots) -> None:
        # Object PCF (efficient) folds the edge's total flow back out of phi
        # (phi = phi - (flow[0] + flow[1])) before dropping the edge state.
        total_val = self._fval[nodes, slots, 0] + self._fval[nodes, slots, 1]
        total_w = self._fw[nodes, slots, 0] + self._fw[nodes, slots, 1]
        self._phi_val[nodes] = self._phi_val[nodes] - total_val
        self._phi_w[nodes] = self._phi_w[nodes] - total_w
        self._fval[nodes, slots] = 0.0
        self._fw[nodes, slots] = 0.0
        self._c[nodes, slots] = 0
        self._r[nodes, slots] = 0

    def _reset_nodes(self, nodes) -> None:
        # Fresh zero flows, handshake state and phi — same as the object
        # algorithm's reset_for_join.
        self._fval[nodes] = 0.0
        self._fw[nodes] = 0.0
        self._c[nodes] = 0
        self._r[nodes] = 0
        self._phi_val[nodes] = 0.0
        self._phi_w[nodes] = 0.0

    def _apply_round(self, senders, slots, delivered) -> None:
        est_val, est_w = self.estimate_pairs()
        receivers, r_slots = self._receiver_indices(senders, slots)
        k = len(senders)
        arange = np.arange(k)

        # Phase 1: virtual sends into the active slot + incremental phi.
        act = self._c[senders, slots].astype(np.int64)
        half_val = est_val[senders] * 0.5
        half_w = est_w[senders] * 0.5
        self._fval[senders, slots, act] += half_val
        self._fw[senders, slots, act] += half_w
        self._phi_val[senders] += half_val
        self._phi_w[senders] += half_w

        # Phase 2: snapshot payloads (both slots + control variables).
        g_val = self._fval[senders, slots].copy()  # (k, 2, d)
        g_w = self._fw[senders, slots].copy()  # (k, 2)
        g_c = self._c[senders, slots].copy()
        g_r = self._r[senders, slots].copy()

        # Phase 3: deliveries. Receiver (node, slot) pairs are unique, so
        # per-edge updates are data-parallel; only phi accumulations can
        # collide and those go through ordered np.add.at.
        idx = np.nonzero(delivered)[0]
        if len(idx) == 0:
            return
        j = receivers[idx]
        t = r_slots[idx]
        pv = g_val[idx]  # payload flows (m, 2, d)
        pw = g_w[idx]
        pc = g_c[idx].astype(np.int64)
        pr = g_r[idx]
        m = len(idx)
        mrange = np.arange(m)

        lc = self._c[j, t].astype(np.int64)
        lr = self._r[j, t]

        # (adopt) peer swapped first: take over its role assignment.
        adopt = (lc != pc) & (lr == pr)
        lc[adopt] = pc[adopt]

        eq = lc == pc
        a = lc
        p = 1 - lc

        # Combined phi delta per message (active repair + optional passive
        # repair), applied once in sender order — mirrors the object
        # engine's single phi update per received message.
        delta_val = np.zeros((m, self._d))
        delta_w = np.zeros(m)

        # Active-slot PF repair (only for role-consistent messages).
        e_idx = np.nonzero(eq)[0]
        je, te, ae = j[e_idx], t[e_idx], a[e_idx]
        ga_val = pv[e_idx, ae]  # (|e|, d)
        ga_w = pw[e_idx, ae]
        delta_val[e_idx] -= self._fval[je, te, ae] + ga_val
        delta_w[e_idx] -= self._fw[je, te, ae] + ga_w
        self._fval[je, te, ae] = -ga_val
        self._fw[je, te, ae] = -ga_w

        # Passive-slot handshake.
        pe = p[e_idx]
        f_p_val = self._fval[je, te, pe]
        f_p_w = self._fw[je, te, pe]
        g_p_val = pv[e_idx, pe]
        g_p_w = pw[e_idx, pe]
        lre = lr[e_idx]
        pre = pr[e_idx]

        conserved = np.all(g_p_val == -f_p_val, axis=1) & (g_p_w == -f_p_w)
        peer_zero = np.all(g_p_val == 0.0, axis=1) & (g_p_w == 0.0)
        cancel = conserved & (lre == pre)
        swap = ~cancel & peer_zero & (lre + 1 == pre)
        repair = ~cancel & ~swap & (lre <= pre)

        # (cancel)/(swap): zero the passive copy, advance the era; the value
        # stays absorbed in phi (no delta). Swap additionally flips roles.
        zero_mask = cancel | swap
        z_idx = e_idx[zero_mask]
        jz, tz, pz = j[z_idx], t[z_idx], pe[zero_mask]
        self._fval[jz, tz, pz] = 0.0
        self._fw[jz, tz, pz] = 0.0
        lr_new = lr.copy()
        lr_new[z_idx] += 1
        lc_new = lc.copy()
        s_idx = e_idx[swap]
        lc_new[s_idx] = p[s_idx]

        # (repair): conservation violated — treat the passive like an active.
        r_idx = e_idx[repair]
        jr, tr, prr = j[r_idx], t[r_idx], pe[repair]
        gr_val = g_p_val[repair]
        gr_w = g_p_w[repair]
        delta_val[r_idx] -= self._fval[jr, tr, prr] + gr_val
        delta_w[r_idx] -= self._fw[jr, tr, prr] + gr_w
        self._fval[jr, tr, prr] = -gr_val
        self._fw[jr, tr, prr] = -gr_w

        # Write back control state and accumulate phi in sender order.
        self._c[j, t] = lc_new.astype(np.int8)
        self._r[j, t] = lr_new
        np.add.at(self._phi_val, j, delta_val)
        np.add.at(self._phi_w, j, delta_w)
        self.cancellations += int(np.count_nonzero(cancel))
        self.swaps += int(np.count_nonzero(swap))
