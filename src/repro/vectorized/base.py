"""Shared machinery of the vectorized gossip engines.

The vectorized engines execute the *same* synchronous round semantics as
:class:`repro.simulation.engine.SynchronousEngine` — phase-separated sends,
snapshot transport, receiver updates in sender order — but express every
phase as NumPy array operations over all nodes at once. They exist because
the paper's scaling study (Figs. 3/6) goes up to 2^15 nodes, far beyond
what per-message Python objects can simulate in reasonable time.

Scope: failure-free runs plus i.i.d. message loss. Permanent-failure
experiments (Figs. 4/7) run at n=64 where the object engine is the right
tool. Parity between the two engines on identical scripted schedules is
covered by tests (see :mod:`repro.vectorized.parity`).

Value payloads may be vectors: state arrays carry a trailing dimension
``d``, so one engine run can carry a whole batch of reductions under a
shared schedule — the distributed QR uses this to push all dot products of
a Gram-Schmidt step through a single reduction.
"""

from __future__ import annotations

import abc
import time
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.simulation.observers import Observer, ObserverList
from repro.topology.base import Topology
from repro.vectorized.backends import KernelBackend, resolve_backend
from repro.vectorized.topology_arrays import TopologyArrays

StopCondition = Callable[["VectorizedEngine", int], bool]


def _as_matrix(values: np.ndarray, n: int) -> np.ndarray:
    """Coerce per-node values to an (n, d) float64 matrix."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2 or arr.shape[0] != n:
        raise ConfigurationError(
            f"initial values must have shape ({n},) or ({n}, d), got {arr.shape}"
        )
    return np.array(arr, copy=True)


class VectorizedEngine(abc.ABC):
    """Base class: schedule drawing, loss masking, run loop, estimates."""

    def __init__(
        self,
        topology: Union[Topology, TopologyArrays],
        values: np.ndarray,
        weights: np.ndarray,
        *,
        seed: int = 0,
        loss_probability: float = 0.0,
        targets: Optional[np.ndarray] = None,
        observers: Sequence[Observer] = (),
        backend: Union[str, KernelBackend, None] = None,
    ) -> None:
        # The batched executor pre-assembles a stacked TopologyArrays for a
        # whole run batch; single runs pass a Topology as before.
        if isinstance(topology, TopologyArrays):
            self._arrays = topology
        else:
            self._arrays = TopologyArrays.from_topology(topology)
        n = self._arrays.n
        self._v0 = _as_matrix(values, n)
        self._w0 = np.asarray(weights, dtype=np.float64).reshape(n).copy()
        self._d = self._v0.shape[1]
        if not 0.0 <= loss_probability <= 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1], got {loss_probability}"
            )
        self._loss = float(loss_probability)
        self._kernels = resolve_backend(backend)
        self._rng = np.random.default_rng(seed)
        from repro.telemetry.session import session_observers

        self._observer = ObserverList(
            list(observers) + session_observers(self, engine_kind="vector")
        )
        self._run_started = False
        self._round = 0
        self._messages_sent = 0
        self._messages_delivered = 0
        # Message totals of unsampled rounds, flushed in one batched
        # on_round_messages call at the next sampled round (or run end).
        self._pending_sent = 0
        self._pending_delivered = 0
        if targets is not None:
            targets = np.asarray(targets, dtype=np.int64)
            if targets.ndim != 2 or targets.shape[1] != n:
                raise ConfigurationError(
                    f"scripted targets must be (rounds, {n}), got {targets.shape}"
                )
        self._scripted_targets = targets
        self._slot_lookup: Optional[Tuple[np.ndarray, int]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._arrays.n

    @property
    def dimension(self) -> int:
        return self._d

    @property
    def round(self) -> int:
        return self._round

    @property
    def messages_sent(self) -> int:
        return self._messages_sent

    @property
    def messages_delivered(self) -> int:
        return self._messages_delivered

    @property
    def backend(self) -> KernelBackend:
        """The resolved kernel backend running this engine's rounds."""
        return self._kernels

    @property
    def backend_name(self) -> str:
        return self._kernels.name

    def live_nodes(self) -> list:
        """All nodes — the vectorized engines model no permanent failures.

        Exists so round-level observers (traces, probes) can treat every
        engine uniformly.
        """
        return list(range(self._arrays.n))

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def estimate_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current ``(values (n, d), weights (n,))`` estimate pairs."""

    @abc.abstractmethod
    def _apply_round(
        self, senders: np.ndarray, slots: np.ndarray, delivered: np.ndarray
    ) -> None:
        """Execute one round for senders[k] sending on slots[k].

        ``delivered[k]`` is False when the transport dropped message ``k``;
        the *send-side* bookkeeping must still happen (the virtual send
        precedes the physical one).
        """

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def estimates(self) -> np.ndarray:
        """Per-node aggregate estimates, shape (n, d)."""
        values, weights = self.estimate_pairs()
        with np.errstate(divide="ignore", invalid="ignore"):
            return values / weights[:, None]

    def step(self) -> None:
        # Per-message callbacks are unaffordable at 2^15 nodes; observed
        # runs get the batched hooks plus per-round phase timings instead,
        # and unobserved runs skip the timing calls entirely. Sampled
        # telemetry thins further: unsampled rounds skip phase timing and
        # accumulate their message totals for the next batched flush.
        observed = bool(self._observer)
        if observed and not self._run_started:
            self._run_started = True
            self._observer.on_run_start(self)
        detailed = observed and self._observer.wants_detail(self._round)
        t0 = time.perf_counter() if detailed else 0.0
        n = self._arrays.n
        senders = np.arange(n)
        if self._scripted_targets is not None:
            if self._round >= len(self._scripted_targets):
                raise ConfigurationError(
                    f"scripted schedule exhausted at round {self._round}"
                )
            target_nodes = self._scripted_targets[self._round]
            active = target_nodes >= 0
            senders = senders[active]
            slots = self._slots_for_targets(senders, target_nodes[active])
        else:
            # Native fast schedule: one uniform draw per node per round.
            draws = self._rng.random(n)
            slots = np.floor(draws * self._arrays.degree).astype(np.int64)

        if self._loss > 0.0:
            delivered = self._rng.random(len(senders)) >= self._loss
        else:
            delivered = np.ones(len(senders), dtype=bool)

        sent = len(senders)
        delivered_count = int(delivered.sum())
        self._messages_sent += sent
        self._messages_delivered += delivered_count
        if detailed:
            t1 = time.perf_counter()
            self._observer.on_phase_end(self, "send", t1 - t0)
            t0 = t1
        self._apply_round(senders, slots, delivered)
        round_index = self._round
        self._round += 1
        if observed:
            if detailed:
                self._observer.on_phase_end(
                    self, "deliver", time.perf_counter() - t0
                )
                self._observer.on_round_messages(
                    self,
                    round_index,
                    self._pending_sent + sent,
                    self._pending_delivered + delivered_count,
                )
                self._pending_sent = 0
                self._pending_delivered = 0
            else:
                self._pending_sent += sent
                self._pending_delivered += delivered_count
            self._observer.on_round_end(self, round_index)

    def run(
        self,
        max_rounds: int,
        *,
        stop_when: Optional[StopCondition] = None,
        check_every: int = 1,
    ) -> int:
        """Run up to ``max_rounds`` rounds; returns rounds executed.

        ``stop_when(engine, round_index)`` is consulted every
        ``check_every`` rounds (error oracles cost an O(n d) pass, so large
        sweeps check every few rounds).
        """
        if max_rounds < 0:
            raise ConfigurationError(f"max_rounds must be >= 0, got {max_rounds}")
        executed = 0
        while executed < max_rounds:
            self.step()
            executed += 1
            # The horizon itself is always checked, even when it is not a
            # multiple of check_every — otherwise convergence in the final
            # max_rounds % check_every rounds would be misreported.
            if (
                stop_when is not None
                and (executed % check_every == 0 or executed == max_rounds)
                and stop_when(self, self._round - 1)
            ):
                break
        if self._observer:
            if self._round > 0 and (self._pending_sent or self._pending_delivered):
                # Flush message totals accumulated on unsampled rounds.
                self._observer.on_round_messages(
                    self,
                    self._round - 1,
                    self._pending_sent,
                    self._pending_delivered,
                )
                self._pending_sent = 0
                self._pending_delivered = 0
            self._observer.on_run_end(self, executed)
        return executed

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _slots_for_targets(
        self, senders: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Translate absolute target node ids into neighbor slots.

        Uses a precomputed inverse lookup: each row of ``nbr`` is sorted
        ascending (padding mapped past every valid id), so flattening with a
        per-row offset yields one globally ascending key array and a single
        ``searchsorted`` resolves every (sender, target) pair at once.
        """
        arrays = self._arrays
        n, max_degree = arrays.n, arrays.max_degree
        if max_degree == 0:
            if len(senders):
                i, j = int(senders[0]), int(targets[0])
                raise ConfigurationError(
                    f"scripted target {j} is not a neighbor of {i}"
                )
            return np.empty(0, dtype=np.int64)
        if self._slot_lookup is None:
            # Padding (-1) becomes key i*(n+1)+n, which no valid target
            # i*(n+1)+j with j in [0, n) can ever equal.
            padded = np.where(arrays.nbr >= 0, arrays.nbr, n).astype(np.int64)
            keys = (padded + np.arange(n, dtype=np.int64)[:, None] * (n + 1)).ravel()
            self._slot_lookup = (keys, n + 1)
        keys, stride = self._slot_lookup
        senders = np.asarray(senders, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        in_range = (targets >= 0) & (targets < n)
        wanted = senders * stride + np.where(in_range, targets, 0)
        pos = np.searchsorted(keys, wanted)
        row_start = senders * max_degree
        valid = (
            in_range
            & (pos >= row_start)
            & (pos < row_start + max_degree)
            & (keys[np.minimum(pos, len(keys) - 1)] == wanted)
        )
        if not valid.all():
            k = int(np.nonzero(~valid)[0][0])
            i, j = int(senders[k]), int(targets[k])
            raise ConfigurationError(
                f"scripted target {j} is not a neighbor of {i}"
            )
        return (pos - row_start).astype(np.int64)

    def _receiver_indices(
        self, senders: np.ndarray, slots: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Receivers and the receiver-side slots for these sends."""
        receivers = self._arrays.nbr[senders, slots].astype(np.int64)
        receiver_slots = self._arrays.slot_of[senders, slots].astype(np.int64)
        return receivers, receiver_slots

    def _zero_failed_links(self, nodes: np.ndarray, slots: np.ndarray) -> None:
        """Forget per-edge protocol state at ``(nodes[k], slots[k])``.

        Mirrors the object engines' ``on_link_failed`` handling for the
        batched executor: each endpoint discards its edge state when a
        permanent link failure is detected. Push-sum keeps no per-edge
        state, so the base implementation is a no-op. The (node, slot)
        pairs passed in are distinct, so fancy-indexed updates are safe.
        """

    def _reset_nodes(self, nodes: np.ndarray) -> None:
        """Reset ``nodes`` to their initial protocol state (node rejoin).

        Mirrors the object algorithms' ``reset_for_join``: a rejoining node
        re-enters with its initial mass and all-zero per-edge state. Used by
        the batched executor's dynamic-topology support.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support node rejoin"
        )
