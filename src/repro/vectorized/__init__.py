"""NumPy whole-array gossip engines for large-scale sweeps.

Same round semantics as :mod:`repro.simulation` (parity-tested), orders of
magnitude faster: the Figs. 3/6 accuracy sweeps up to 2^15 nodes and the
distributed QR factorization run on these engines.
"""

from repro.vectorized.base import VectorizedEngine
from repro.vectorized.batched import (
    BatchedEngine,
    BatchedErrorHistory,
    BatchedMassProbe,
    BatchedRun,
)
from repro.vectorized.engines import (
    VectorPushCancelFlow,
    VectorPushFlow,
    VectorPushSum,
)
from repro.vectorized.hardened import VectorPushCancelFlowHardened
from repro.vectorized.parity import (
    compare_engines,
    materialize_schedule,
    run_object_engine,
    run_vector_engine,
    vector_engine_for,
)
from repro.vectorized.topology_arrays import TopologyArrays

__all__ = [
    "BatchedEngine",
    "BatchedErrorHistory",
    "BatchedMassProbe",
    "BatchedRun",
    "VectorizedEngine",
    "VectorPushSum",
    "VectorPushFlow",
    "VectorPushCancelFlow",
    "VectorPushCancelFlowHardened",
    "TopologyArrays",
    "vector_engine_for",
    "materialize_schedule",
    "run_object_engine",
    "run_vector_engine",
    "compare_engines",
]
