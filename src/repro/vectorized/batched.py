"""Batched vectorized execution: R independent runs as one NumPy program.

Campaign sweeps execute the same (algorithm, topology-shape, rounds)
signature across a whole seed axis; running those cells one at a time
leaves most of the speedup of the vectorized engines on the table. This
module stacks R independent runs into a single disjoint-union graph —
run ``r``'s node ``i`` becomes global node ``r*n + i`` — and drives the
*existing* vectorized engine kernels over the union, so an entire
campaign axis executes as one whole-array program.

Correctness rests on two observations:

- the union graph has no edges between runs, so per-round scatters for
  different runs touch disjoint state; and
- messages are assembled run-major (run 0's senders first, then run 1's,
  ...), so within each run the accumulation order of ``np.add.at``
  collisions is exactly the order a single-run engine would use. Padded
  slots hold exact zeros. Together this makes every run's state
  *bit-for-bit identical* to running it alone (the parity tests assert
  this for push-sum, PF, PCF and hardened PCF).

Per-run features on top of the stacked kernels:

- independent RNG streams (one ``np.random.Generator`` per run, spawned
  by the caller — e.g. via ``np.random.SeedSequence.spawn``);
- per-run i.i.d. message-loss probabilities;
- per-run scripted schedules (for parity testing);
- per-run permanent link failures with the object engine's two-instant
  semantics: from ``round`` the link swallows messages (senders still
  pick it), at ``round + detection_delay`` both endpoints discard their
  edge state (:meth:`VectorizedEngine._zero_failed_links`) and exclude
  the neighbor from future schedule draws;
- early retirement: ``stop_when`` returns a per-run mask and retired
  (e.g. converged) runs stop sending while the rest of the batch keeps
  going, freezing their state at the retirement round.

:class:`BatchedErrorHistory` and :class:`BatchedMassProbe` are the
whole-batch equivalents of :class:`repro.metrics.history.ErrorHistory`
and :class:`repro.telemetry.probes.MassConservationProbe`, so the
campaign runner can emit records that are schema-identical to the
object-engine path.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dynamics.schedule import TopologySchedule
from repro.exceptions import ConfigurationError
from repro.faults.events import LinkFailure
from repro.topology.base import Topology
from repro.vectorized.base import _as_matrix
from repro.vectorized.parity import vector_engine_for
from repro.vectorized.topology_arrays import TopologyArrays

#: ``stop_when(engine, round_index)`` returns a per-run retirement mask
#: (shape ``(n_runs,)``; True retires the run) or None to keep going.
BatchStopCondition = Callable[
    ["BatchedEngine", int], Optional[np.ndarray]
]

#: ``on_round(engine, round_index)`` — invoked after every executed round,
#: before the stop condition; batched observers record their series here.
BatchRoundHook = Callable[["BatchedEngine", int], None]


@dataclasses.dataclass
class BatchedRun:
    """One run of a batch: its topology, initial state, and fault setup."""

    topology: Topology
    values: np.ndarray
    weights: np.ndarray
    #: Seed material for this run's private stream — anything
    #: ``np.random.default_rng`` accepts (Generator, SeedSequence, int).
    rng: Union[np.random.Generator, np.random.SeedSequence, int, None] = None
    loss_probability: float = 0.0
    #: Scripted ``(rounds, n)`` targets (-1 = silent), or None for the
    #: native uniform-gossip schedule drawn from ``rng``.
    targets: Optional[np.ndarray] = None
    link_failures: Tuple[LinkFailure, ...] = ()
    #: Dynamic-topology schedule (churn / partition / outage) applied to
    #: this run with the object engine's transition-instant semantics.
    topology_schedule: Optional[TopologySchedule] = None
    #: Per-run round cap: the run retires (state frozen) once it has
    #: executed this many rounds, independent of the batch horizon. None
    #: leaves the run bounded only by ``run(max_rounds)`` — this is how a
    #: batch multiplexes jobs with different round budgets.
    max_rounds: Optional[int] = None


def _stack_topologies(
    arrays: Sequence[TopologyArrays],
) -> TopologyArrays:
    """Disjoint union of per-run topologies, run ``r`` offset by ``r*n``."""
    n = arrays[0].n
    runs = len(arrays)
    max_degree = max(a.max_degree for a in arrays)
    total = runs * n
    nbr = np.full((total, max_degree), -1, dtype=np.int32)
    slot_of = np.full((total, max_degree), -1, dtype=np.int32)
    degree = np.zeros(total, dtype=np.int32)
    for r, a in enumerate(arrays):
        base = r * n
        block = a.nbr.astype(np.int64)
        nbr[base : base + n, : a.max_degree] = np.where(
            block >= 0, block + base, -1
        ).astype(np.int32)
        slot_of[base : base + n, : a.max_degree] = a.slot_of
        degree[base : base + n] = a.degree
    nbr.setflags(write=False)
    slot_of.setflags(write=False)
    degree.setflags(write=False)
    return TopologyArrays(
        n=total, max_degree=max_degree, nbr=nbr, slot_of=slot_of, degree=degree
    )


class BatchedEngine:
    """Execute R independent runs of one algorithm as a single program."""

    def __init__(
        self,
        algorithm: str,
        runs: Sequence[BatchedRun],
        *,
        backend: Union[str, None] = None,
    ) -> None:
        if not runs:
            raise ConfigurationError("a batch needs at least one run")
        self._runs = len(runs)
        n = runs[0].topology.n
        self._n = n
        per_arrays = []
        values_parts = []
        weights_parts = []
        for r, run in enumerate(runs):
            if run.topology.n != n:
                raise ConfigurationError(
                    f"batch run {r} has n={run.topology.n}, expected {n} — "
                    "all runs of a batch must share the node count"
                )
            per_arrays.append(TopologyArrays.from_topology(run.topology))
            values_parts.append(_as_matrix(run.values, n))
            weights_parts.append(
                np.asarray(run.weights, dtype=np.float64).reshape(n)
            )
            if not 0.0 <= float(run.loss_probability) <= 1.0:
                raise ConfigurationError(
                    f"batch run {r}: loss_probability must be in [0, 1], "
                    f"got {run.loss_probability}"
                )
        d = values_parts[0].shape[1]
        for r, v in enumerate(values_parts):
            if v.shape[1] != d:
                raise ConfigurationError(
                    f"batch run {r} has value dimension {v.shape[1]}, "
                    f"expected {d}"
                )
        self._d = d
        arrays = _stack_topologies(per_arrays)
        self._arrays = arrays
        cls = vector_engine_for(algorithm)
        self._engine = cls(
            arrays,
            np.vstack(values_parts),
            np.concatenate(weights_parts),
            seed=0,
            backend=backend,
        )
        self._rngs = [np.random.default_rng(run.rng) for run in runs]
        self._loss = np.array(
            [float(run.loss_probability) for run in runs]
        )
        self._targets: List[Optional[np.ndarray]] = []
        for r, run in enumerate(runs):
            targets = run.targets
            if targets is not None:
                targets = np.asarray(targets, dtype=np.int64)
                if targets.ndim != 2 or targets.shape[1] != n:
                    raise ConfigurationError(
                        f"batch run {r}: scripted targets must be "
                        f"(rounds, {n}), got {targets.shape}"
                    )
            self._targets.append(targets)

        # Schedule-visible neighborhood: live_list[i, :live_degree[i]] are
        # the slots node i may still draw; handled link failures shrink it.
        total = arrays.n
        md = arrays.max_degree
        self._slot_alive = (
            np.arange(md)[None, :] < arrays.degree[:, None]
        )
        self._live_degree = arrays.degree.astype(np.int64).copy()
        self._live_list = np.where(
            self._slot_alive, np.arange(md)[None, :], 0
        ).astype(np.int64)
        # Transport-dead slots: messages sent on them vanish (the sender
        # still spends its round on them until the failure is handled).
        self._blocked = np.zeros((total, md), dtype=bool)
        # Dynamic-topology state. node_alive tracks join/leave membership;
        # perm_dead marks slots taken by *permanent* link failures (which
        # dynamics must never revive); dyn_down holds the currently-downed
        # transient edges as canonical global (min, max) pairs.
        self._node_alive = np.ones(total, dtype=bool)
        self._perm_dead = np.zeros((total, md), dtype=bool)
        self._dyn_down: set = set()
        self._dyn_events: Dict[int, List[Tuple]] = {}
        self._fail_events: Dict[int, List[Tuple[int, int]]] = {}
        self._handle_events: Dict[int, List[Tuple[int, int, int, int]]] = {}
        for r, run in enumerate(runs):
            schedule = run.topology_schedule
            if schedule is not None and not schedule.is_empty():
                schedule.validate_against(run.topology)
                base = r * n
                for delta in schedule.deltas:
                    if delta.kind in ("edge_down", "edge_up"):
                        u, v = delta.edge
                        self._dyn_events.setdefault(delta.round, []).append(
                            (
                                delta.kind,
                                base + u,
                                base + v,
                                run.topology.neighbor_index(u, v),
                                run.topology.neighbor_index(v, u),
                            )
                        )
                    else:
                        self._dyn_events.setdefault(delta.round, []).append(
                            (delta.kind, base + delta.node)
                        )
        for r, run in enumerate(runs):
            base = r * n
            seen_edges = set()
            for lf in run.link_failures:
                u, v = lf.u, lf.v
                if lf.edge in seen_edges:
                    raise ConfigurationError(
                        f"batch run {r}: duplicate link failure on {lf.edge}"
                    )
                seen_edges.add(lf.edge)
                if not (0 <= u < n and 0 <= v < n) or v not in run.topology.neighbors(u):
                    raise ConfigurationError(
                        f"batch run {r}: link failure ({u}, {v}) is not an "
                        "edge of the run's topology"
                    )
                su = run.topology.neighbor_index(u, v)
                sv = run.topology.neighbor_index(v, u)
                gi, gj = base + u, base + v
                self._fail_events.setdefault(lf.round, []).extend(
                    [(gi, su), (gj, sv)]
                )
                self._handle_events.setdefault(lf.handle_round, []).append(
                    (gi, gj, su, sv)
                )

        # Optional kernel profiler: when the campaign runner (or a caller)
        # attaches a PhaseTimer here, every fused `_apply_round` kernel
        # call is timed as phase "kernel". None keeps the hot loop free of
        # any timing overhead.
        self.phase_timer = None

        caps = [run.max_rounds for run in runs]
        if any(c is not None for c in caps):
            for r, c in enumerate(caps):
                if c is not None and c < 0:
                    raise ConfigurationError(
                        f"batch run {r}: max_rounds must be >= 0, got {c}"
                    )
            self._caps: Optional[np.ndarray] = np.array(
                [-1 if c is None else int(c) for c in caps], dtype=np.int64
            )
        else:
            self._caps = None

        self._round = 0
        self._retired = np.zeros(self._runs, dtype=bool)
        if self._caps is not None:
            self._retired |= self._caps == 0
        self._executed = np.zeros(self._runs, dtype=np.int64)
        self._messages_sent = np.zeros(self._runs, dtype=np.int64)
        self._messages_delivered = np.zeros(self._runs, dtype=np.int64)
        self._last_active = np.zeros(self._runs, dtype=bool)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_runs(self) -> int:
        return self._runs

    @property
    def n(self) -> int:
        """Nodes per run (the union graph holds ``n_runs * n``)."""
        return self._n

    @property
    def dimension(self) -> int:
        return self._d

    @property
    def round(self) -> int:
        return self._round

    @property
    def backend_name(self) -> str:
        """Name of the kernel backend driving the stacked engine."""
        return self._engine.backend_name

    @property
    def retired(self) -> np.ndarray:
        return self._retired.copy()

    @property
    def last_round_active(self) -> np.ndarray:
        """Runs that participated in the most recent :meth:`step`."""
        return self._last_active.copy()

    @property
    def run_rounds(self) -> np.ndarray:
        """Rounds each run has executed (retired runs stop counting)."""
        return self._executed.copy()

    @property
    def messages_sent(self) -> np.ndarray:
        return self._messages_sent.copy()

    @property
    def messages_delivered(self) -> np.ndarray:
        return self._messages_delivered.copy()

    @property
    def node_alive(self) -> np.ndarray:
        """Per-run node membership, shape (R, n) — False while departed."""
        return self._node_alive.reshape(self._runs, self._n).copy()

    def estimate_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-run ``(values (R, n, d), weights (R, n))`` estimate pairs."""
        values, weights = self._engine.estimate_pairs()
        return (
            values.reshape(self._runs, self._n, self._d),
            weights.reshape(self._runs, self._n),
        )

    def estimates(self) -> np.ndarray:
        """Per-node aggregate estimates, shape (R, n, d)."""
        return self._engine.estimates().reshape(self._runs, self._n, self._d)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def retire(self, mask: np.ndarray) -> None:
        """Retire runs where ``mask`` is True; their state freezes."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._runs,):
            raise ConfigurationError(
                f"retirement mask must have shape ({self._runs},), "
                f"got {mask.shape}"
            )
        self._retired |= mask

    def step(self) -> None:
        """Execute one synchronous round for every non-retired run."""
        rnd = self._round
        # Topology deltas apply at the very start of the round — between
        # rounds no messages are in flight, so the transition instant is
        # unambiguous (same semantics as the object engine).
        for event in self._dyn_events.get(rnd, ()):
            if not self._retired[event[1] // self._n]:
                self._apply_dyn_event(event)
        for node, slot in self._fail_events.get(rnd, ()):
            self._blocked[node, slot] = True
            self._perm_dead[node, slot] = True

        n = self._n
        active = np.nonzero(~self._retired)[0]
        sender_parts: List[np.ndarray] = []
        slot_parts: List[np.ndarray] = []
        delivered_parts: List[np.ndarray] = []
        for r in active:
            base = r * n
            targets = self._targets[r]
            if targets is not None:
                if rnd >= len(targets):
                    raise ConfigurationError(
                        f"scripted schedule exhausted at round {rnd}"
                    )
                row = targets[rnd]
                local = np.nonzero(row >= 0)[0]
                senders_r = local + base
                slots_r = self._engine._slots_for_targets(
                    senders_r, row[local] + base
                )
            else:
                # Same stream consumption as a single vectorized engine:
                # one uniform draw per node per round. Failure-free runs
                # have live_degree == degree and live_list[i, s] == s, so
                # the chosen slots match the single engine bit-for-bit.
                draws = self._rngs[r].random(n)
                live_deg = self._live_degree[base : base + n]
                local = np.nonzero(live_deg > 0)[0]
                senders_r = local + base
                picks = np.floor(draws[local] * live_deg[local]).astype(
                    np.int64
                )
                slots_r = self._live_list[senders_r, picks]
            loss = self._loss[r]
            if loss > 0.0:
                delivered_r = self._rngs[r].random(len(senders_r)) >= loss
            else:
                delivered_r = np.ones(len(senders_r), dtype=bool)
            # Physically dead links swallow the message in transport; the
            # sender still spent its round on it (object-engine semantics).
            delivered_r = delivered_r & ~self._blocked[senders_r, slots_r]
            self._messages_sent[r] += len(senders_r)
            self._messages_delivered[r] += int(delivered_r.sum())
            sender_parts.append(senders_r)
            slot_parts.append(slots_r)
            delivered_parts.append(delivered_r)

        if sender_parts:
            # Run-major concatenation: within each run, messages keep the
            # ascending-sender order a single-run engine would use, which
            # preserves the np.add.at accumulation order bit-for-bit.
            senders = np.concatenate(sender_parts)
            slots = np.concatenate(slot_parts)
            delivered = np.concatenate(delivered_parts)
            if self.phase_timer is not None:
                t0 = time.perf_counter()
                self._engine._apply_round(senders, slots, delivered)
                self.phase_timer.record(
                    "kernel", time.perf_counter() - t0
                )
            else:
                self._engine._apply_round(senders, slots, delivered)

        for gi, gj, si, sj in self._handle_events.get(rnd, ()):
            self._handle_link(gi, gj, si, sj)

        self._last_active = ~self._retired
        self._executed[active] += 1
        self._round += 1
        if self._caps is not None:
            # A capped run retires the instant it has spent its budget, so
            # its frozen state is exactly the single-engine state after
            # max_rounds rounds — callers with mixed budgets can share a
            # batch without over-running the short ones.
            self._retired |= (self._caps >= 0) & (self._executed >= self._caps)

    def _handle_link(self, gi: int, gj: int, si: int, sj: int) -> None:
        """Failure-detector handling: discard edge state, shrink schedules."""
        # Mark the slots permanently dead first: even when dynamics already
        # downed the edge (slot not alive), a later edge_up / node_join must
        # not revive a permanently failed link.
        self._perm_dead[gi, si] = True
        self._perm_dead[gj, sj] = True
        if not self._slot_alive[gi, si]:
            return
        self._engine._zero_failed_links(
            np.array([gi, gj]), np.array([si, sj])
        )
        for node, slot in ((gi, si), (gj, sj)):
            self._slot_alive[node, slot] = False
            self._blocked[node, slot] = True
            self._recompute_live(node)

    # ------------------------------------------------------------------
    # Dynamic topology (churn / partition / outage)
    # ------------------------------------------------------------------
    def _recompute_live(self, node: int) -> None:
        live = np.nonzero(self._slot_alive[node])[0]
        self._live_list[node, : len(live)] = live
        self._live_list[node, len(live) :] = 0
        self._live_degree[node] = len(live)

    def _apply_dyn_event(self, event: Tuple) -> None:
        kind = event[0]
        if kind == "edge_down":
            self._dyn_edge_down(*event[1:])
        elif kind == "edge_up":
            self._dyn_edge_up(*event[1:])
        elif kind == "node_leave":
            self._dyn_node_leave(event[1])
        else:
            self._dyn_node_join(event[1])

    def _dyn_edge_down(self, gi: int, gj: int, si: int, sj: int) -> None:
        key = (gi, gj) if gi < gj else (gj, gi)
        if key in self._dyn_down or self._perm_dead[gi, si]:
            return
        self._dyn_down.add(key)
        if not self._slot_alive[gi, si]:
            # An endpoint already departed — the edge state was discarded
            # at its departure; only the down marker is recorded.
            return
        self._engine._zero_failed_links(
            np.array([gi, gj]), np.array([si, sj])
        )
        for node, slot in ((gi, si), (gj, sj)):
            self._slot_alive[node, slot] = False
            self._blocked[node, slot] = True
            self._recompute_live(node)

    def _dyn_edge_up(self, gi: int, gj: int, si: int, sj: int) -> None:
        key = (gi, gj) if gi < gj else (gj, gi)
        if key not in self._dyn_down:
            return
        self._dyn_down.discard(key)
        if self._perm_dead[gi, si]:
            return
        if not (self._node_alive[gi] and self._node_alive[gj]):
            # A departed endpoint keeps the edge down; its node_join will
            # revive the slot once both ends are live again.
            return
        for node, slot in ((gi, si), (gj, sj)):
            self._slot_alive[node, slot] = True
            self._blocked[node, slot] = False
            self._recompute_live(node)

    def _dyn_node_leave(self, g: int) -> None:
        if not self._node_alive[g]:
            return
        self._node_alive[g] = False
        for s in range(int(self._arrays.degree[g])):
            if not self._slot_alive[g, s]:
                continue
            gj = int(self._arrays.nbr[g, s])
            sj = int(self._arrays.slot_of[g, s])
            # Survivor discards its edge state (object: on_link_failed);
            # the departing side is frozen and fully reset at rejoin.
            self._engine._zero_failed_links(np.array([gj]), np.array([sj]))
            self._slot_alive[g, s] = False
            self._blocked[g, s] = True
            self._slot_alive[gj, sj] = False
            self._blocked[gj, sj] = True
            self._recompute_live(gj)
        self._recompute_live(g)

    def _dyn_node_join(self, g: int) -> None:
        if self._node_alive[g]:
            return
        self._node_alive[g] = True
        self._engine._reset_nodes(np.array([g]))
        for s in range(int(self._arrays.degree[g])):
            if self._perm_dead[g, s]:
                continue
            gj = int(self._arrays.nbr[g, s])
            sj = int(self._arrays.slot_of[g, s])
            if not self._node_alive[gj]:
                continue
            key = (g, gj) if g < gj else (gj, g)
            if key in self._dyn_down:
                continue
            self._slot_alive[g, s] = True
            self._blocked[g, s] = False
            self._slot_alive[gj, sj] = True
            self._blocked[gj, sj] = False
            self._recompute_live(gj)
        self._recompute_live(g)

    def run(
        self,
        max_rounds: int,
        *,
        stop_when: Optional[BatchStopCondition] = None,
        check_every: int = 1,
        on_round: Optional[BatchRoundHook] = None,
    ) -> np.ndarray:
        """Run up to ``max_rounds`` rounds; returns per-run executed counts.

        ``stop_when(engine, round_index)`` returns a per-run boolean mask
        (True retires the run) and is consulted every ``check_every``
        rounds plus at the horizon; the loop ends early once every run is
        retired. ``on_round`` fires after each executed round, before the
        stop condition — batched observers hook in here.
        """
        if max_rounds < 0:
            raise ConfigurationError(
                f"max_rounds must be >= 0, got {max_rounds}"
            )
        start = self._executed.copy()
        executed = 0
        while executed < max_rounds and not self._retired.all():
            self.step()
            executed += 1
            if on_round is not None:
                on_round(self, self._round - 1)
            if stop_when is not None and (
                executed % check_every == 0 or executed == max_rounds
            ):
                mask = stop_when(self, self._round - 1)
                if mask is not None:
                    self.retire(mask)
        return self._executed - start


class BatchedErrorHistory:
    """Per-run error series — :class:`ErrorHistory` for a whole batch.

    ``max_errors[r][t]`` is run ``r``'s max local relative error after its
    round ``t``, with the exact semantics of
    :func:`repro.algorithms.aggregates.relative_error`: per node, the
    max-norm deviation over components divided by the truth's max-norm
    scale (1.0 when the truth is exactly zero), ``inf`` for non-finite
    estimates. Retired runs stop recording, so their series end at their
    retirement round.
    """

    def __init__(self, truths: Sequence[float]) -> None:
        truth = np.asarray(truths, dtype=np.float64)
        if truth.ndim == 1:
            truth = truth[:, None]
        self._truth = truth  # (R, d)
        scale = np.abs(truth).max(axis=1)
        self._scale = np.where(scale > 0.0, scale, 1.0)
        self.max_errors: List[List[float]] = [[] for _ in range(len(truth))]

    def on_round_end(self, engine: BatchedEngine, round_index: int) -> None:
        est = engine.estimates()
        with np.errstate(invalid="ignore"):
            diff = np.abs(est - self._truth[:, None, :]).max(axis=2)
        finite = np.isfinite(est).all(axis=2)
        node_err = np.where(
            finite, diff / self._scale[:, None], np.inf
        )
        # Departed nodes hold frozen (or reset) state that is not part of
        # the computation; exclude them from the run maximum.
        node_err = np.where(engine.node_alive, node_err, -np.inf)
        run_max = node_err.max(axis=1)
        for r in np.nonzero(engine.last_round_active)[0]:
            self.max_errors[int(r)].append(float(run_max[r]))

    def current_max_errors(self) -> np.ndarray:
        """Latest recorded error per run (inf before any round)."""
        return np.array(
            [series[-1] if series else np.inf for series in self.max_errors]
        )

    def final_max_error(self, run: int) -> float:
        series = self.max_errors[run]
        if not series:
            raise ValueError("no rounds recorded")
        return series[-1]

    def first_round_below(self, run: int, threshold: float) -> Optional[int]:
        """First round whose max error is <= threshold (None if never)."""
        for t, err in enumerate(self.max_errors[run]):
            if err <= threshold:
                return t
        return None


class BatchedMassProbe:
    """Per-run mass-conservation drift — the batch's mass probe.

    Mirrors :class:`repro.telemetry.probes.MassDriftTracker`'s vectorized
    branch: the baseline is the run's initial (sum of values, sum of
    weights), drift is the max absolute deviation of either sum from its
    baseline, normalized by the baseline magnitude. ``records[r]`` holds
    ``(round, drift)`` pairs; ``violations[r]`` counts drifts above the
    tolerance.
    """

    def __init__(self, tolerance: float = 1e-6) -> None:
        self.tolerance = float(tolerance)
        self._exp_val: Optional[np.ndarray] = None
        self._exp_w: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None
        self._alive_prev: Optional[np.ndarray] = None
        self.records: List[List[Tuple[int, float]]] = []
        self.violations: Optional[np.ndarray] = None

    @staticmethod
    def _masked_sums(
        engine: BatchedEngine,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Mass sums over live nodes only (departed mass left the system)."""
        values, weights = engine.estimate_pairs()
        alive = engine.node_alive
        return (
            np.where(alive[:, :, None], values, 0.0).sum(axis=1),
            np.where(alive, weights, 0.0).sum(axis=1),
            alive,
        )

    def start(self, engine: BatchedEngine) -> None:
        self._exp_val, self._exp_w, self._alive_prev = self._masked_sums(
            engine
        )
        self._scale = np.maximum(
            np.maximum(np.abs(self._exp_val).max(axis=1), np.abs(self._exp_w)),
            1e-300,
        )
        self.records = [[] for _ in range(engine.n_runs)]
        self.violations = np.zeros(engine.n_runs, dtype=np.int64)

    def on_round_end(self, engine: BatchedEngine, round_index: int) -> None:
        if self._exp_val is None:
            self.start(engine)
        cur_val, cur_w, alive = self._masked_sums(engine)
        changed = (alive != self._alive_prev).any(axis=1)
        if changed.any():
            # A membership change legitimately moves the conserved
            # quantity (mass enters/leaves with the node); re-base the
            # affected runs on the post-change live population.
            self._exp_val[changed] = cur_val[changed]
            self._exp_w[changed] = cur_w[changed]
            self._scale[changed] = np.maximum(
                np.maximum(
                    np.abs(cur_val[changed]).max(axis=1),
                    np.abs(cur_w[changed]),
                ),
                1e-300,
            )
            self._alive_prev = alive
        deviation = np.maximum(
            np.abs(cur_val - self._exp_val).max(axis=1),
            np.abs(cur_w - self._exp_w),
        )
        finite = np.isfinite(cur_val).all(axis=1) & np.isfinite(cur_w)
        drift = np.where(finite, deviation / self._scale, np.inf)
        violated = drift > self.tolerance
        for r in np.nonzero(engine.last_round_active)[0]:
            self.records[int(r)].append((round_index, float(drift[r])))
            if violated[r]:
                self.violations[int(r)] += 1

    def worst_drift(self, run: int) -> Optional[float]:
        series = self.records[run]
        return max(d for _, d in series) if series else None
