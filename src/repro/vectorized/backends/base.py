"""The kernel-backend contract for the vectorized engines.

A :class:`KernelBackend` owns the *hot inner round* of every vectorized
algorithm: the fused send/accumulate/estimate update that
:meth:`repro.vectorized.base.VectorizedEngine._apply_round` runs once per
round. Everything around the kernel — schedule drawing, loss masking,
topology arrays, link-failure handling, dynamic-topology deltas,
observers — stays in the engines and is backend-independent.

The contract is deliberately data-only: kernels receive plain ``ndarray``
state (mutated in place) plus the round's message arrays, and return at
most a couple of counters. That keeps every implementation swappable and
lets compiled backends (numba) receive exactly the same arguments as the
NumPy reference.

Semantics every backend must honour (the parity suites enforce this
against the object engine):

- **Phase separation.** All send-side updates happen before any
  delivery: estimates are a function of the pre-round state, payloads are
  snapshots taken after the send phase, and receiver updates never feed
  back into the same round's sends.
- **Sender-order accumulation.** Within a round, receiver-side updates
  that can collide (push-sum mass, PCF phi deltas) are applied in
  ascending message order — the order ``np.add.at`` uses and the order
  the object engine delivers in. This is what makes the NumPy reference
  bit-for-bit reproducible; compiled backends keep the same order so any
  deviation is limited to instruction-level rounding (e.g. FMA
  contraction), which the close-tolerance parity suite bounds.
- **Unique sender slots.** Each sender appears at most once per round and
  receiver ``(node, slot)`` pairs are unique, so per-edge state updates
  are collision-free by construction.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np


class KernelBackend(abc.ABC):
    """Fused per-round kernels for all four vectorized algorithms."""

    #: Backend identifier recorded in campaign results and bench entries.
    name: str = "abstract"
    #: True when the kernels are JIT-compiled (vs interpreted/NumPy).
    compiled: bool = False

    @abc.abstractmethod
    def push_sum_round(
        self,
        val: np.ndarray,  # (n, d) in/out
        w: np.ndarray,  # (n,) in/out
        senders: np.ndarray,  # (k,) int64
        receivers: np.ndarray,  # (k,) int64
        delivered: np.ndarray,  # (k,) bool
    ) -> None:
        """One push-sum round: halve sender mass, deliver in sender order."""

    @abc.abstractmethod
    def push_flow_round(
        self,
        fval: np.ndarray,  # (n, md, d) in/out
        fw: np.ndarray,  # (n, md) in/out
        v0: np.ndarray,  # (n, d) initial data (read-only)
        w0: np.ndarray,  # (n,) initial weights (read-only)
        senders: np.ndarray,
        slots: np.ndarray,
        receivers: np.ndarray,
        r_slots: np.ndarray,
        delivered: np.ndarray,
    ) -> None:
        """One push-flow round, estimate fused in (left-to-right flow sum)."""

    @abc.abstractmethod
    def pcf_round(
        self,
        fval: np.ndarray,  # (n, md, 2, d) in/out
        fw: np.ndarray,  # (n, md, 2) in/out
        c: np.ndarray,  # (n, md) int8 role bits, in/out
        r: np.ndarray,  # (n, md) int64 era counters, in/out
        phi_val: np.ndarray,  # (n, d) in/out
        phi_w: np.ndarray,  # (n,) in/out
        v0: np.ndarray,
        w0: np.ndarray,
        senders: np.ndarray,
        slots: np.ndarray,
        receivers: np.ndarray,
        r_slots: np.ndarray,
        delivered: np.ndarray,
    ) -> Tuple[int, int]:
        """One push-cancel-flow round; returns ``(cancellations, swaps)``."""

    @abc.abstractmethod
    def pcf_hardened_round(
        self,
        fval: np.ndarray,  # (n, md, 2, d) in/out
        fw: np.ndarray,  # (n, md, 2) in/out
        r: np.ndarray,  # (n, md) int64 era counters, in/out
        frozen_val: np.ndarray,  # (n, md, d) in/out
        frozen_w: np.ndarray,  # (n, md) in/out
        initiator: np.ndarray,  # (n, md) bool (read-only)
        phi_val: np.ndarray,
        phi_w: np.ndarray,
        v0: np.ndarray,
        w0: np.ndarray,
        senders: np.ndarray,
        slots: np.ndarray,
        receivers: np.ndarray,
        r_slots: np.ndarray,
        delivered: np.ndarray,
    ) -> Tuple[int, int]:
        """One hardened-PCF round; returns ``(cancellations, catch_ups)``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} name={self.name!r} compiled={self.compiled}>"
