"""Pure-NumPy reference kernels.

These are the round bodies the vectorized engines ran before the backend
seam existed, moved verbatim behind :class:`KernelBackend`. They are the
correctness reference: bit-for-bit identical to the object engine under
scripted schedules (the engine parity suites assert this), and the
baseline every other backend is compared against.

Operation-order notes mirror :mod:`repro.vectorized.engines`: flow sums
accumulate left-to-right over sorted-neighbor slots, colliding receiver
updates go through ``np.add.at`` in ascending message order, and padded
slots hold exact zeros so they cannot perturb rounding.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.vectorized.backends.base import KernelBackend


class NumpyKernels(KernelBackend):
    """The reference backend: whole-array NumPy round kernels."""

    name = "numpy"
    compiled = False

    def push_sum_round(self, val, w, senders, receivers, delivered) -> None:
        # Keep half, send half — the send-side halving happens regardless
        # of delivery (a dropped message loses mass, as in the real
        # protocol).
        half_val = val[senders] * 0.5
        half_w = w[senders] * 0.5
        val[senders] = half_val
        w[senders] = half_w
        idx = np.nonzero(delivered)[0]
        np.add.at(val, receivers[idx], half_val[idx])
        np.add.at(w, receivers[idx], half_w[idx])

    @staticmethod
    def _flow_totals(fval, fw) -> Tuple[np.ndarray, np.ndarray]:
        # Accumulate the flow sum left-to-right over sorted-neighbor slots
        # — the object engine's rounding order.
        total_val = np.zeros(fval.shape[::2], dtype=fval.dtype)
        total_w = np.zeros(fw.shape[0], dtype=fw.dtype)
        for s in range(fval.shape[1]):
            total_val += fval[:, s]
            total_w += fw[:, s]
        return total_val, total_w

    def push_flow_round(
        self, fval, fw, v0, w0, senders, slots, receivers, r_slots, delivered
    ) -> None:
        # Estimate fused in: est = v0 - sum(flows), then one PF round.
        total_val, total_w = self._flow_totals(fval, fw)
        est_val = v0 - total_val
        est_w = w0 - total_w

        # Phase 1: virtual sends (sender slots are unique per round).
        fval[senders, slots] += est_val[senders] * 0.5
        fw[senders, slots] += est_w[senders] * 0.5

        # Phase 2: snapshot the physical payloads.
        sent_val = fval[senders, slots].copy()
        sent_w = fw[senders, slots].copy()

        # Phase 3: deliveries — receiver (node, slot) pairs are unique.
        idx = np.nonzero(delivered)[0]
        fval[receivers[idx], r_slots[idx]] = -sent_val[idx]
        fw[receivers[idx], r_slots[idx]] = -sent_w[idx]

    def pcf_round(
        self,
        fval,
        fw,
        c,
        r,
        phi_val,
        phi_w,
        v0,
        w0,
        senders,
        slots,
        receivers,
        r_slots,
        delivered,
    ) -> Tuple[int, int]:
        d = v0.shape[1]
        est_val = v0 - phi_val
        est_w = w0 - phi_w

        # Phase 1: virtual sends into the active slot + incremental phi.
        act = c[senders, slots].astype(np.int64)
        half_val = est_val[senders] * 0.5
        half_w = est_w[senders] * 0.5
        fval[senders, slots, act] += half_val
        fw[senders, slots, act] += half_w
        phi_val[senders] += half_val
        phi_w[senders] += half_w

        # Phase 2: snapshot payloads (both slots + control variables).
        g_val = fval[senders, slots].copy()  # (k, 2, d)
        g_w = fw[senders, slots].copy()  # (k, 2)
        g_c = c[senders, slots].copy()
        g_r = r[senders, slots].copy()

        # Phase 3: deliveries. Receiver (node, slot) pairs are unique, so
        # per-edge updates are data-parallel; only phi accumulations can
        # collide and those go through ordered np.add.at.
        idx = np.nonzero(delivered)[0]
        if len(idx) == 0:
            return 0, 0
        j = receivers[idx]
        t = r_slots[idx]
        pv = g_val[idx]  # payload flows (m, 2, d)
        pw = g_w[idx]
        pc = g_c[idx].astype(np.int64)
        pr = g_r[idx]
        m = len(idx)

        lc = c[j, t].astype(np.int64)
        lr = r[j, t]

        # (adopt) peer swapped first: take over its role assignment.
        adopt = (lc != pc) & (lr == pr)
        lc[adopt] = pc[adopt]

        eq = lc == pc
        a = lc
        p = 1 - lc

        # Combined phi delta per message (active repair + optional passive
        # repair), applied once in sender order — mirrors the object
        # engine's single phi update per received message.
        delta_val = np.zeros((m, d))
        delta_w = np.zeros(m)

        # Active-slot PF repair (only for role-consistent messages).
        e_idx = np.nonzero(eq)[0]
        je, te, ae = j[e_idx], t[e_idx], a[e_idx]
        ga_val = pv[e_idx, ae]  # (|e|, d)
        ga_w = pw[e_idx, ae]
        delta_val[e_idx] -= fval[je, te, ae] + ga_val
        delta_w[e_idx] -= fw[je, te, ae] + ga_w
        fval[je, te, ae] = -ga_val
        fw[je, te, ae] = -ga_w

        # Passive-slot handshake.
        pe = p[e_idx]
        f_p_val = fval[je, te, pe]
        f_p_w = fw[je, te, pe]
        g_p_val = pv[e_idx, pe]
        g_p_w = pw[e_idx, pe]
        lre = lr[e_idx]
        pre = pr[e_idx]

        conserved = np.all(g_p_val == -f_p_val, axis=1) & (g_p_w == -f_p_w)
        peer_zero = np.all(g_p_val == 0.0, axis=1) & (g_p_w == 0.0)
        cancel = conserved & (lre == pre)
        swap = ~cancel & peer_zero & (lre + 1 == pre)
        repair = ~cancel & ~swap & (lre <= pre)

        # (cancel)/(swap): zero the passive copy, advance the era; the
        # value stays absorbed in phi (no delta). Swap additionally flips
        # roles.
        zero_mask = cancel | swap
        z_idx = e_idx[zero_mask]
        jz, tz, pz = j[z_idx], t[z_idx], pe[zero_mask]
        fval[jz, tz, pz] = 0.0
        fw[jz, tz, pz] = 0.0
        lr_new = lr.copy()
        lr_new[z_idx] += 1
        lc_new = lc.copy()
        s_idx = e_idx[swap]
        lc_new[s_idx] = p[s_idx]

        # (repair): conservation violated — treat the passive like an
        # active.
        r_idx = e_idx[repair]
        jr, tr, prr = j[r_idx], t[r_idx], pe[repair]
        gr_val = g_p_val[repair]
        gr_w = g_p_w[repair]
        delta_val[r_idx] -= fval[jr, tr, prr] + gr_val
        delta_w[r_idx] -= fw[jr, tr, prr] + gr_w
        fval[jr, tr, prr] = -gr_val
        fw[jr, tr, prr] = -gr_w

        # Write back control state and accumulate phi in sender order.
        c[j, t] = lc_new.astype(np.int8)
        r[j, t] = lr_new
        np.add.at(phi_val, j, delta_val)
        np.add.at(phi_w, j, delta_w)
        return int(np.count_nonzero(cancel)), int(np.count_nonzero(swap))

    def pcf_hardened_round(
        self,
        fval,
        fw,
        r,
        frozen_val,
        frozen_w,
        initiator,
        phi_val,
        phi_w,
        v0,
        w0,
        senders,
        slots,
        receivers,
        r_slots,
        delivered,
    ) -> Tuple[int, int]:
        d = v0.shape[1]
        est_val = v0 - phi_val
        est_w = w0 - phi_w

        # Phase 1: virtual sends into the era-derived active slot.
        act = (r[senders, slots] % 2).astype(np.int64)
        half_val = est_val[senders] * 0.5
        half_w = est_w[senders] * 0.5
        fval[senders, slots, act] += half_val
        fw[senders, slots, act] += half_w
        phi_val[senders] += half_val
        phi_w[senders] += half_w

        # Phase 2: payload snapshots.
        g_val = fval[senders, slots].copy()  # (k, 2, d)
        g_w = fw[senders, slots].copy()
        g_r = r[senders, slots].copy()
        g_frozen_val = frozen_val[senders, slots].copy()
        g_frozen_w = frozen_w[senders, slots].copy()

        # Phase 3: deliveries at unique (receiver, slot) pairs.
        idx = np.nonzero(delivered)[0]
        if len(idx) == 0:
            return 0, 0
        j = receivers[idx]
        t = r_slots[idx]
        pv = g_val[idx]
        pw = g_w[idx]
        pr = g_r[idx]
        pfv = g_frozen_val[idx]
        pfw = g_frozen_w[idx]
        m = len(idx)

        lr = r[j, t].copy()
        ini = initiator[j, t]
        delta_val = np.zeros((m, d))
        delta_w = np.zeros(m)

        in_window = (pr >= lr - 1) & (pr <= lr + 1)

        # --- boundary refresh (peer one era behind, at the initiator) ----
        boundary = in_window & (pr == lr - 1) & ini
        b_idx = np.nonzero(boundary)[0]
        if len(b_idx):
            jb, tb = j[b_idx], t[b_idx]
            pb = 1 - (lr[b_idx] % 2)  # local passive == peer's stale active
            gb_val = pv[b_idx, pb]
            gb_w = pw[b_idx, pb]
            delta_val[b_idx] -= fval[jb, tb, pb] + gb_val
            delta_w[b_idx] -= fw[jb, tb, pb] + gb_w
            fval[jb, tb, pb] = -gb_val
            fw[jb, tb, pb] = -gb_w

        # --- frozen-verified catch-up (peer ahead, at the follower) ------
        catch = in_window & (pr == lr + 1) & ~ini
        c_idx = np.nonzero(catch)[0]
        catch_ups = len(c_idx)
        if len(c_idx):
            jc, tc = j[c_idx], t[c_idx]
            pc = 1 - (lr[c_idx] % 2)
            fz_val = pfv[c_idx]
            fz_w = pfw[c_idx]
            delta_val[c_idx] -= fval[jc, tc, pc] + fz_val
            delta_w[c_idx] -= fw[jc, tc, pc] + fz_w
            fval[jc, tc, pc] = -fz_val
            fw[jc, tc, pc] = -fz_w
            frozen_val[jc, tc] = -fz_val
            frozen_w[jc, tc] = -fz_w
            fval[jc, tc, pc] = 0.0
            fw[jc, tc, pc] = 0.0
            lr[c_idx] += 1

        # --- era-equal processing (includes just-caught-up messages) -----
        cancels = 0
        eq = in_window & ((pr == lr) | catch)
        e_idx = np.nonzero(eq)[0]
        if len(e_idx):
            je, te = j[e_idx], t[e_idx]
            ae = (lr[e_idx] % 2).astype(np.int64)
            pe = 1 - ae
            erange = e_idx
            # Active-slot PF repair.
            ga_val = pv[erange, ae]
            ga_w = pw[erange, ae]
            delta_val[e_idx] -= fval[je, te, ae] + ga_val
            delta_w[e_idx] -= fw[je, te, ae] + ga_w
            fval[je, te, ae] = -ga_val
            fw[je, te, ae] = -ga_w

            gp_val = pv[erange, pe]
            gp_w = pw[erange, pe]
            f_p_val = fval[je, te, pe]
            f_p_w = fw[je, te, pe]
            ini_e = ini[e_idx]

            # Initiator: cancel when the follower mirrors exactly.
            conserved = np.all(gp_val == -f_p_val, axis=1) & (gp_w == -f_p_w)
            cancel = ini_e & conserved
            z = np.nonzero(cancel)[0]
            if len(z):
                jz, tz, pz = je[z], te[z], pe[z]
                frozen_val[jz, tz] = fval[jz, tz, pz]
                frozen_w[jz, tz] = fw[jz, tz, pz]
                fval[jz, tz, pz] = 0.0
                fw[jz, tz, pz] = 0.0
                lr[e_idx[z]] += 1
                cancels = len(z)

            # Follower: track the initiator's reference copy.
            follow = ~ini_e
            f = np.nonzero(follow)[0]
            if len(f):
                jf, tf, pf = je[f], te[f], pe[f]
                gf_val = gp_val[f]
                gf_w = gp_w[f]
                delta_val[e_idx[f]] -= fval[jf, tf, pf] + gf_val
                delta_w[e_idx[f]] -= fw[jf, tf, pf] + gf_w
                fval[jf, tf, pf] = -gf_val
                fw[jf, tf, pf] = -gf_w

        # Write back eras; accumulate phi in sender order.
        r[j, t] = lr
        np.add.at(phi_val, j, delta_val)
        np.add.at(phi_w, j, delta_w)
        return cancels, catch_ups
