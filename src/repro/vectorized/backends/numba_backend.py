"""Optional numba-jitted fused round kernels.

The kernels here are sequential per-message loops written in
nopython-compatible style. They implement exactly the semantics of
:class:`repro.vectorized.backends.numpy_backend.NumpyKernels` — same
phase separation, same left-to-right flow summation, same ascending
message order for colliding receiver updates — so in interpreted mode
(``NumbaKernels(jit=False)``, used when numba is not installed) they are
*bit-for-bit* identical to the NumPy reference. Under ``@njit`` the only
permitted deviation is instruction-level rounding (e.g. FMA contraction
by LLVM), which the close-tolerance parity suite bounds; ``fastmath`` is
deliberately left off so no reassociation is allowed.

Two parity-relevant scalar details, preserved from the NumPy reference:

- Flow writes that mirror a payload use unary negation (``-g``), exactly
  like ``fval[...] = -sent``.
- Phi deltas are accumulated by *subtraction from a zero-initialised
  accumulator* (``delta = delta - (f + g)``), never by negating a sum —
  ``0.0 - x`` and ``-x`` differ for ``x == +0.0`` and NumPy's ``-=``
  computes the former.
- The phi accumulator is updated for **every** delivered message, even
  when the delta is identically zero (``np.add.at`` adds the zero rows
  too, and ``-0.0 + 0.0 == +0.0`` makes that observable).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.vectorized.backends.base import KernelBackend

try:  # pragma: no cover - exercised via the CI backend-parity matrix
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    numba = None
    HAVE_NUMBA = False


# --------------------------------------------------------------------------
# Loop kernels (module-level so numba can compile them once per dtype set).
# --------------------------------------------------------------------------


def _push_sum_round(val, w, senders, receivers, delivered):
    k = senders.shape[0]
    d = val.shape[1]
    half_val = np.empty((k, d), dtype=val.dtype)
    half_w = np.empty(k, dtype=w.dtype)
    # Phase 1: halve sender mass (senders are unique; each loop iteration
    # touches only its own sender's row, so fusing read/halve/store is
    # identical to the two-step whole-array version).
    for m in range(k):
        s = senders[m]
        for cc in range(d):
            hv = val[s, cc] * 0.5
            half_val[m, cc] = hv
            val[s, cc] = hv
        hw = w[s] * 0.5
        half_w[m] = hw
        w[s] = hw
    # Phase 2: deliveries in ascending message order (np.add.at order).
    for m in range(k):
        if delivered[m]:
            rcv = receivers[m]
            for cc in range(d):
                val[rcv, cc] += half_val[m, cc]
            w[rcv] += half_w[m]


def _push_flow_round(fval, fw, v0, w0, senders, slots, receivers, r_slots, delivered):
    md = fval.shape[1]
    d = fval.shape[2]
    k = senders.shape[0]
    sent_val = np.empty((k, d), dtype=fval.dtype)
    sent_w = np.empty(k, dtype=fw.dtype)
    # Phase 1 + 2: per-sender estimate (left-to-right flow sum), virtual
    # send, payload snapshot. Sender rows are disjoint, so interleaving
    # per sender equals compute-all-then-send-all.
    for m in range(k):
        i = senders[m]
        sl = slots[m]
        for cc in range(d):
            tot = 0.0
            for s in range(md):
                tot += fval[i, s, cc]
            est = v0[i, cc] - tot
            fval[i, sl, cc] += est * 0.5
            sent_val[m, cc] = fval[i, sl, cc]
        totw = 0.0
        for s in range(md):
            totw += fw[i, s]
        estw = w0[i] - totw
        fw[i, sl] += estw * 0.5
        sent_w[m] = fw[i, sl]
    # Phase 3: deliveries at unique (receiver, slot) pairs — must run
    # after every snapshot (message crossing writes a slot that another
    # message snapshotted).
    for m in range(k):
        if delivered[m]:
            j = receivers[m]
            t = r_slots[m]
            for cc in range(d):
                fval[j, t, cc] = -sent_val[m, cc]
            fw[j, t] = -sent_w[m]


def _pcf_round(
    fval, fw, c, r, phi_val, phi_w, v0, w0, senders, slots, receivers, r_slots, delivered
):
    d = fval.shape[3]
    k = senders.shape[0]
    g_val = np.empty((k, 2, d), dtype=fval.dtype)
    g_w = np.empty((k, 2), dtype=fw.dtype)
    g_c = np.empty(k, dtype=np.int64)
    g_r = np.empty(k, dtype=np.int64)
    # Phase 1 + 2: virtual send into the active slot, incremental phi,
    # payload snapshot (both slots + control variables).
    for m in range(k):
        i = senders[m]
        sl = slots[m]
        act = c[i, sl]
        for cc in range(d):
            hv = (v0[i, cc] - phi_val[i, cc]) * 0.5
            fval[i, sl, act, cc] += hv
            phi_val[i, cc] += hv
        hw = (w0[i] - phi_w[i]) * 0.5
        fw[i, sl, act] += hw
        phi_w[i] += hw
        for sslot in range(2):
            for cc in range(d):
                g_val[m, sslot, cc] = fval[i, sl, sslot, cc]
            g_w[m, sslot] = fw[i, sl, sslot]
        g_c[m] = c[i, sl]
        g_r[m] = r[i, sl]
    # Phase 3: per-message delivery processing in ascending order. Edge
    # state at unique (receiver, slot) pairs is collision-free; phi
    # accumulation follows message order like np.add.at.
    cancels = 0
    swaps = 0
    delta_val = np.empty(d, dtype=phi_val.dtype)
    for m in range(k):
        if not delivered[m]:
            continue
        j = receivers[m]
        t = r_slots[m]
        pc = g_c[m]
        pr = g_r[m]
        lc = int(c[j, t])
        lr = r[j, t]
        for cc in range(d):
            delta_val[cc] = 0.0
        delta_w = 0.0
        # (adopt) peer swapped first: take over its role assignment.
        if lc != pc and lr == pr:
            lc = pc
        if lc == pc:
            a = lc
            p = 1 - lc
            # Active-slot PF repair.
            for cc in range(d):
                ga = g_val[m, a, cc]
                delta_val[cc] = delta_val[cc] - (fval[j, t, a, cc] + ga)
                fval[j, t, a, cc] = -ga
            ga_w = g_w[m, a]
            delta_w = delta_w - (fw[j, t, a] + ga_w)
            fw[j, t, a] = -ga_w
            # Passive-slot handshake.
            conserved = g_w[m, p] == -fw[j, t, p]
            if conserved:
                for cc in range(d):
                    if g_val[m, p, cc] != -fval[j, t, p, cc]:
                        conserved = False
                        break
            peer_zero = g_w[m, p] == 0.0
            if peer_zero:
                for cc in range(d):
                    if g_val[m, p, cc] != 0.0:
                        peer_zero = False
                        break
            cancel = conserved and lr == pr
            swap = (not cancel) and peer_zero and (lr + 1 == pr)
            if cancel or swap:
                # Zero the passive copy, advance the era; the value stays
                # absorbed in phi (no delta). Swap additionally flips roles.
                for cc in range(d):
                    fval[j, t, p, cc] = 0.0
                fw[j, t, p] = 0.0
                lr += 1
                if swap:
                    lc = p
                    swaps += 1
                else:
                    cancels += 1
            elif lr <= pr:
                # (repair): conservation violated — treat the passive like
                # an active.
                for cc in range(d):
                    gp = g_val[m, p, cc]
                    delta_val[cc] = delta_val[cc] - (fval[j, t, p, cc] + gp)
                    fval[j, t, p, cc] = -gp
                gp_w = g_w[m, p]
                delta_w = delta_w - (fw[j, t, p] + gp_w)
                fw[j, t, p] = -gp_w
        c[j, t] = lc
        r[j, t] = lr
        # Applied even when the delta is zero — matches np.add.at.
        for cc in range(d):
            phi_val[j, cc] += delta_val[cc]
        phi_w[j] += delta_w
    return cancels, swaps


def _pcf_hardened_round(
    fval,
    fw,
    r,
    frozen_val,
    frozen_w,
    initiator,
    phi_val,
    phi_w,
    v0,
    w0,
    senders,
    slots,
    receivers,
    r_slots,
    delivered,
):
    d = fval.shape[3]
    k = senders.shape[0]
    g_val = np.empty((k, 2, d), dtype=fval.dtype)
    g_w = np.empty((k, 2), dtype=fw.dtype)
    g_r = np.empty(k, dtype=np.int64)
    g_frozen_val = np.empty((k, d), dtype=frozen_val.dtype)
    g_frozen_w = np.empty(k, dtype=frozen_w.dtype)
    # Phase 1 + 2: send into the era-derived active slot, snapshot
    # payloads including the frozen reference copy.
    for m in range(k):
        i = senders[m]
        sl = slots[m]
        act = r[i, sl] % 2
        for cc in range(d):
            hv = (v0[i, cc] - phi_val[i, cc]) * 0.5
            fval[i, sl, act, cc] += hv
            phi_val[i, cc] += hv
        hw = (w0[i] - phi_w[i]) * 0.5
        fw[i, sl, act] += hw
        phi_w[i] += hw
        for sslot in range(2):
            for cc in range(d):
                g_val[m, sslot, cc] = fval[i, sl, sslot, cc]
            g_w[m, sslot] = fw[i, sl, sslot]
        g_r[m] = r[i, sl]
        for cc in range(d):
            g_frozen_val[m, cc] = frozen_val[i, sl, cc]
        g_frozen_w[m] = frozen_w[i, sl]
    # Phase 3: per-message delivery processing.
    cancels = 0
    catch_ups = 0
    delta_val = np.empty(d, dtype=phi_val.dtype)
    for m in range(k):
        if not delivered[m]:
            continue
        j = receivers[m]
        t = r_slots[m]
        pr = g_r[m]
        lr = r[j, t]
        ini = initiator[j, t]
        for cc in range(d):
            delta_val[cc] = 0.0
        delta_w = 0.0
        if pr >= lr - 1 and pr <= lr + 1:
            catch = False
            if pr == lr - 1 and ini:
                # Boundary refresh: local passive == peer's stale active.
                pb = 1 - lr % 2
                for cc in range(d):
                    gb = g_val[m, pb, cc]
                    delta_val[cc] = delta_val[cc] - (fval[j, t, pb, cc] + gb)
                    fval[j, t, pb, cc] = -gb
                gb_w = g_w[m, pb]
                delta_w = delta_w - (fw[j, t, pb] + gb_w)
                fw[j, t, pb] = -gb_w
            elif pr == lr + 1 and not ini:
                # Frozen-verified catch-up at the follower.
                catch = True
                pc = 1 - lr % 2
                for cc in range(d):
                    fz = g_frozen_val[m, cc]
                    delta_val[cc] = delta_val[cc] - (fval[j, t, pc, cc] + fz)
                    frozen_val[j, t, cc] = -fz
                    fval[j, t, pc, cc] = 0.0
                fz_w = g_frozen_w[m]
                delta_w = delta_w - (fw[j, t, pc] + fz_w)
                frozen_w[j, t] = -fz_w
                fw[j, t, pc] = 0.0
                lr += 1
                catch_ups += 1
            if pr == lr or catch:
                # Era-equal processing (includes just-caught-up messages).
                ae = lr % 2
                pe = 1 - ae
                for cc in range(d):
                    ga = g_val[m, ae, cc]
                    delta_val[cc] = delta_val[cc] - (fval[j, t, ae, cc] + ga)
                    fval[j, t, ae, cc] = -ga
                ga_w = g_w[m, ae]
                delta_w = delta_w - (fw[j, t, ae] + ga_w)
                fw[j, t, ae] = -ga_w
                if ini:
                    # Initiator: cancel when the follower mirrors exactly.
                    conserved = g_w[m, pe] == -fw[j, t, pe]
                    if conserved:
                        for cc in range(d):
                            if g_val[m, pe, cc] != -fval[j, t, pe, cc]:
                                conserved = False
                                break
                    if conserved:
                        for cc in range(d):
                            frozen_val[j, t, cc] = fval[j, t, pe, cc]
                            fval[j, t, pe, cc] = 0.0
                        frozen_w[j, t] = fw[j, t, pe]
                        fw[j, t, pe] = 0.0
                        lr += 1
                        cancels += 1
                else:
                    # Follower: track the initiator's reference copy.
                    for cc in range(d):
                        gf = g_val[m, pe, cc]
                        delta_val[cc] = delta_val[cc] - (fval[j, t, pe, cc] + gf)
                        fval[j, t, pe, cc] = -gf
                    gf_w = g_w[m, pe]
                    delta_w = delta_w - (fw[j, t, pe] + gf_w)
                    fw[j, t, pe] = -gf_w
        r[j, t] = lr
        # Applied even when the delta is zero — matches np.add.at.
        for cc in range(d):
            phi_val[j, cc] += delta_val[cc]
        phi_w[j] += delta_w
    return cancels, catch_ups


_PY_KERNELS = {
    "push_sum": _push_sum_round,
    "push_flow": _push_flow_round,
    "pcf": _pcf_round,
    "pcf_hardened": _pcf_hardened_round,
}

_jit_cache: dict = {}


def _jitted(name):
    """Compile (once per process) and return the njit'ed kernel."""
    fn = _jit_cache.get(name)
    if fn is None:
        # nogil so multiprocess/threaded group runners are not serialized;
        # fastmath stays off — reassociation would break close-tolerance
        # parity guarantees.
        fn = numba.njit(cache=False, nogil=True, fastmath=False)(_PY_KERNELS[name])
        _jit_cache[name] = fn
    return fn


class NumbaKernels(KernelBackend):
    """Fused loop kernels, JIT-compiled when numba is installed.

    ``jit=False`` runs the identical loop functions interpreted — slow,
    but bit-for-bit equal to the NumPy reference, which is how the
    kernel logic stays testable on machines without numba.
    """

    name = "numba"

    def __init__(self, jit: bool | None = None) -> None:
        if jit is None:
            jit = HAVE_NUMBA
        if jit and not HAVE_NUMBA:
            raise RuntimeError(
                "NumbaKernels(jit=True) requires numba; install the "
                "'numba' extra (pip install -e '.[numba]')"
            )
        self.compiled = bool(jit)

    def _kernel(self, name):
        if self.compiled:
            return _jitted(name)
        return _PY_KERNELS[name]

    def push_sum_round(self, val, w, senders, receivers, delivered) -> None:
        self._kernel("push_sum")(val, w, senders, receivers, delivered)

    def push_flow_round(
        self, fval, fw, v0, w0, senders, slots, receivers, r_slots, delivered
    ) -> None:
        self._kernel("push_flow")(
            fval, fw, v0, w0, senders, slots, receivers, r_slots, delivered
        )

    def pcf_round(
        self,
        fval,
        fw,
        c,
        r,
        phi_val,
        phi_w,
        v0,
        w0,
        senders,
        slots,
        receivers,
        r_slots,
        delivered,
    ) -> Tuple[int, int]:
        cancels, swaps = self._kernel("pcf")(
            fval,
            fw,
            c,
            r,
            phi_val,
            phi_w,
            v0,
            w0,
            senders,
            slots,
            receivers,
            r_slots,
            delivered,
        )
        return int(cancels), int(swaps)

    def pcf_hardened_round(
        self,
        fval,
        fw,
        r,
        frozen_val,
        frozen_w,
        initiator,
        phi_val,
        phi_w,
        v0,
        w0,
        senders,
        slots,
        receivers,
        r_slots,
        delivered,
    ) -> Tuple[int, int]:
        cancels, catch_ups = self._kernel("pcf_hardened")(
            fval,
            fw,
            r,
            frozen_val,
            frozen_w,
            initiator,
            phi_val,
            phi_w,
            v0,
            w0,
            senders,
            slots,
            receivers,
            r_slots,
            delivered,
        )
        return int(cancels), int(catch_ups)
