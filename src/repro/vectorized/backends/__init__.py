"""Kernel backends for the vectorized engines.

``resolve_backend(name)`` is the single entry point: the engines, the
campaign runner and the benchmark harness all go through it, so backend
selection behaves identically everywhere.

- ``"numpy"`` — the whole-array reference kernels; bit-for-bit identical
  to the object engine under scripted schedules.
- ``"numba"`` — fused loop kernels, JIT-compiled when numba is
  installed. When it is not, resolution *falls back to numpy with a
  RuntimeWarning* rather than failing: a spec that says ``backend:
  numba`` still runs everywhere, just without the speedup. (Tests that
  need the numba kernel *logic* without numba use
  ``NumbaKernels(jit=False)`` directly.)
"""

from __future__ import annotations

import warnings

from repro.exceptions import ConfigurationError
from repro.vectorized.backends.base import KernelBackend
from repro.vectorized.backends.numba_backend import HAVE_NUMBA, NumbaKernels
from repro.vectorized.backends.numpy_backend import NumpyKernels

#: Names accepted by specs, CLIs and resolve_backend, in preference order.
BACKEND_NAMES = ("numpy", "numba")

#: True when the numba import succeeded and jitted kernels are usable.
NUMBA_AVAILABLE = HAVE_NUMBA

DEFAULT_BACKEND = "numpy"


def available_backends() -> tuple:
    """Backend names that resolve without falling back on this machine."""
    return ("numpy", "numba") if NUMBA_AVAILABLE else ("numpy",)


def resolve_backend(name=None) -> KernelBackend:
    """Resolve a backend name to a :class:`KernelBackend` instance.

    ``None`` means the default (numpy). Unknown names raise
    :class:`~repro.exceptions.ConfigurationError`; ``"numba"`` without
    numba installed warns and returns the numpy reference backend.
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        name = DEFAULT_BACKEND
    if name not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown backend {name!r}: expected one of {BACKEND_NAMES}"
        )
    if name == "numba":
        if NUMBA_AVAILABLE:
            return NumbaKernels(jit=True)
        warnings.warn(
            "backend 'numba' requested but numba is not installed; "
            "falling back to the numpy reference backend "
            "(pip install -e '.[numba]' to enable jitted kernels)",
            RuntimeWarning,
            stacklevel=2,
        )
        return NumpyKernels()
    return NumpyKernels()


__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "NUMBA_AVAILABLE",
    "KernelBackend",
    "NumbaKernels",
    "NumpyKernels",
    "available_backends",
    "resolve_backend",
]
