"""Dense array form of a topology for the vectorized engine.

Per-edge protocol state lives in ``(n, max_degree)`` arrays indexed by
*slot*: slot ``s`` of node ``i`` is its ``s``-th neighbor in sorted order
(matching :meth:`repro.topology.base.Topology.neighbor_index`). The reverse
map ``slot_of[i, s]`` gives the slot under which node ``i`` appears in the
neighbor list of ``nbr[i, s]`` — when ``i`` sends on slot ``s``, the
receiver's state to update sits at ``(nbr[i, s], slot_of[i, s])``. Because a
node sends at most one message per round and each ordered edge has a unique
``(receiver, slot)`` pair, all per-round receiver updates are scatter
operations on distinct indices, i.e. fully data-parallel.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.topology.base import Topology


@dataclasses.dataclass(frozen=True)
class TopologyArrays:
    """Padded neighbor tables: ``-1`` marks unused slots."""

    n: int
    max_degree: int
    nbr: np.ndarray  # (n, max_degree) int32, -1 padded
    slot_of: np.ndarray  # (n, max_degree) int32, -1 padded
    degree: np.ndarray  # (n,) int32

    @classmethod
    def from_topology(cls, topology: Topology) -> "TopologyArrays":
        n = topology.n
        max_degree = max(topology.max_degree(), 1)
        nbr = np.full((n, max_degree), -1, dtype=np.int32)
        slot_of = np.full((n, max_degree), -1, dtype=np.int32)
        degree = np.zeros(n, dtype=np.int32)
        for i in topology.nodes():
            neighbors = topology.neighbors(i)
            degree[i] = len(neighbors)
            for s, j in enumerate(neighbors):
                nbr[i, s] = j
                slot_of[i, s] = topology.neighbor_index(j, i)
        nbr.setflags(write=False)
        slot_of.setflags(write=False)
        degree.setflags(write=False)
        return cls(
            n=n, max_degree=max_degree, nbr=nbr, slot_of=slot_of, degree=degree
        )
