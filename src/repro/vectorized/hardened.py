"""Vectorized latency-hardened PCF engine.

Whole-array implementation of
:class:`repro.algorithms.push_cancel_flow_hardened.PushCancelFlowHardened`
(efficient variant) with the same per-message floating-point operation
order as the object engine, so scripted-schedule runs agree bit-for-bit
(covered by the parity tests). Needed because the Fig-5 PCF formulation
deadlocks on low-degree topologies (message crossing, see the findings in
DESIGN.md), so the bus-network experiments and large-scale hardened sweeps
run on this engine.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.vectorized.base import VectorizedEngine


class VectorPushCancelFlowHardened(VectorizedEngine):
    """Vectorized hardened PCF, ``efficient`` phi bookkeeping."""

    def __init__(self, topology, values, weights, **kwargs) -> None:
        super().__init__(topology, values, weights, **kwargs)
        n, md, d = self.n, self._arrays.max_degree, self._d
        self._fval = np.zeros((n, md, 2, d))
        self._fw = np.zeros((n, md, 2))
        self._r = np.zeros((n, md), dtype=np.int64)
        self._frozen_val = np.zeros((n, md, d))
        self._frozen_w = np.zeros((n, md))
        self._phi_val = np.zeros((n, d))
        self._phi_w = np.zeros(n)
        # initiator[i, s]: node i initiates on its edge toward nbr[i, s].
        nbr = self._arrays.nbr
        self._initiator = (np.arange(n)[:, None] < nbr) & (nbr >= 0)
        self.cancellations = 0
        self.catch_ups = 0

    def estimate_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._v0 - self._phi_val, self._w0 - self._phi_w

    def max_flow_magnitude(self) -> float:
        return max(
            float(np.max(np.abs(self._fval))) if self._fval.size else 0.0,
            float(np.max(np.abs(self._fw))) if self._fw.size else 0.0,
        )

    def node_flow_magnitudes(self) -> np.ndarray:
        """Per-node largest flow magnitude, shape (n,) — probe input."""
        if not self._fval.size:
            return np.zeros(self.n)
        per_val = np.max(np.abs(self._fval), axis=(1, 2, 3))
        per_w = np.max(np.abs(self._fw), axis=(1, 2))
        return np.maximum(per_val, per_w)

    def passive_flow_magnitude(self) -> float:
        """Largest *passive*-slot flow magnitude — cancellation progress."""
        if not self._fval.size:
            return 0.0
        passive = (1 - (self._r % 2)).astype(np.int64)
        p_val = np.take_along_axis(
            self._fval, passive[:, :, None, None], axis=2
        )
        p_w = np.take_along_axis(self._fw, passive[:, :, None], axis=2)
        return max(float(np.max(np.abs(p_val))), float(np.max(np.abs(p_w))))

    def max_era(self) -> int:
        """Highest role-swap era counter reached on any edge."""
        return int(np.max(self._r)) if self._r.size else 0

    def _zero_failed_links(self, nodes, slots) -> None:
        # Same phi fold-out as PCF (phi = phi - (flow[0] + flow[1])), plus
        # the hardened engine's frozen reference copies are discarded.
        total_val = self._fval[nodes, slots, 0] + self._fval[nodes, slots, 1]
        total_w = self._fw[nodes, slots, 0] + self._fw[nodes, slots, 1]
        self._phi_val[nodes] = self._phi_val[nodes] - total_val
        self._phi_w[nodes] = self._phi_w[nodes] - total_w
        self._fval[nodes, slots] = 0.0
        self._fw[nodes, slots] = 0.0
        self._r[nodes, slots] = 0
        self._frozen_val[nodes, slots] = 0.0
        self._frozen_w[nodes, slots] = 0.0

    def _reset_nodes(self, nodes) -> None:
        # Fresh zero flows, eras, frozen copies and phi — same as the object
        # algorithm's reset_for_join (initiator flags are id-derived and
        # unchanged).
        self._fval[nodes] = 0.0
        self._fw[nodes] = 0.0
        self._r[nodes] = 0
        self._frozen_val[nodes] = 0.0
        self._frozen_w[nodes] = 0.0
        self._phi_val[nodes] = 0.0
        self._phi_w[nodes] = 0.0

    def _apply_round(self, senders, slots, delivered) -> None:
        receivers, r_slots = self._receiver_indices(senders, slots)
        cancels, catch_ups = self._kernels.pcf_hardened_round(
            self._fval,
            self._fw,
            self._r,
            self._frozen_val,
            self._frozen_w,
            self._initiator,
            self._phi_val,
            self._phi_w,
            self._v0,
            self._w0,
            senders,
            slots,
            receivers,
            r_slots,
            delivered,
        )
        self.cancellations += cancels
        self.catch_ups += catch_ups
