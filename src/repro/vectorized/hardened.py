"""Vectorized latency-hardened PCF engine.

Whole-array implementation of
:class:`repro.algorithms.push_cancel_flow_hardened.PushCancelFlowHardened`
(efficient variant) with the same per-message floating-point operation
order as the object engine, so scripted-schedule runs agree bit-for-bit
(covered by the parity tests). Needed because the Fig-5 PCF formulation
deadlocks on low-degree topologies (message crossing, see the findings in
DESIGN.md), so the bus-network experiments and large-scale hardened sweeps
run on this engine.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.vectorized.base import VectorizedEngine


class VectorPushCancelFlowHardened(VectorizedEngine):
    """Vectorized hardened PCF, ``efficient`` phi bookkeeping."""

    def __init__(self, topology, values, weights, **kwargs) -> None:
        super().__init__(topology, values, weights, **kwargs)
        n, md, d = self.n, self._arrays.max_degree, self._d
        self._fval = np.zeros((n, md, 2, d))
        self._fw = np.zeros((n, md, 2))
        self._r = np.zeros((n, md), dtype=np.int64)
        self._frozen_val = np.zeros((n, md, d))
        self._frozen_w = np.zeros((n, md))
        self._phi_val = np.zeros((n, d))
        self._phi_w = np.zeros(n)
        # initiator[i, s]: node i initiates on its edge toward nbr[i, s].
        nbr = self._arrays.nbr
        self._initiator = (np.arange(n)[:, None] < nbr) & (nbr >= 0)
        self.cancellations = 0
        self.catch_ups = 0

    def estimate_pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        return self._v0 - self._phi_val, self._w0 - self._phi_w

    def max_flow_magnitude(self) -> float:
        return max(
            float(np.max(np.abs(self._fval))) if self._fval.size else 0.0,
            float(np.max(np.abs(self._fw))) if self._fw.size else 0.0,
        )

    def node_flow_magnitudes(self) -> np.ndarray:
        """Per-node largest flow magnitude, shape (n,) — probe input."""
        if not self._fval.size:
            return np.zeros(self.n)
        per_val = np.max(np.abs(self._fval), axis=(1, 2, 3))
        per_w = np.max(np.abs(self._fw), axis=(1, 2))
        return np.maximum(per_val, per_w)

    def passive_flow_magnitude(self) -> float:
        """Largest *passive*-slot flow magnitude — cancellation progress."""
        if not self._fval.size:
            return 0.0
        passive = (1 - (self._r % 2)).astype(np.int64)
        p_val = np.take_along_axis(
            self._fval, passive[:, :, None, None], axis=2
        )
        p_w = np.take_along_axis(self._fw, passive[:, :, None], axis=2)
        return max(float(np.max(np.abs(p_val))), float(np.max(np.abs(p_w))))

    def max_era(self) -> int:
        """Highest role-swap era counter reached on any edge."""
        return int(np.max(self._r)) if self._r.size else 0

    def _zero_failed_links(self, nodes, slots) -> None:
        # Same phi fold-out as PCF (phi = phi - (flow[0] + flow[1])), plus
        # the hardened engine's frozen reference copies are discarded.
        total_val = self._fval[nodes, slots, 0] + self._fval[nodes, slots, 1]
        total_w = self._fw[nodes, slots, 0] + self._fw[nodes, slots, 1]
        self._phi_val[nodes] = self._phi_val[nodes] - total_val
        self._phi_w[nodes] = self._phi_w[nodes] - total_w
        self._fval[nodes, slots] = 0.0
        self._fw[nodes, slots] = 0.0
        self._r[nodes, slots] = 0
        self._frozen_val[nodes, slots] = 0.0
        self._frozen_w[nodes, slots] = 0.0

    def _reset_nodes(self, nodes) -> None:
        # Fresh zero flows, eras, frozen copies and phi — same as the object
        # algorithm's reset_for_join (initiator flags are id-derived and
        # unchanged).
        self._fval[nodes] = 0.0
        self._fw[nodes] = 0.0
        self._r[nodes] = 0
        self._frozen_val[nodes] = 0.0
        self._frozen_w[nodes] = 0.0
        self._phi_val[nodes] = 0.0
        self._phi_w[nodes] = 0.0

    def _apply_round(self, senders, slots, delivered) -> None:
        est_val, est_w = self.estimate_pairs()
        receivers, r_slots = self._receiver_indices(senders, slots)

        # Phase 1: virtual sends into the era-derived active slot.
        act = (self._r[senders, slots] % 2).astype(np.int64)
        half_val = est_val[senders] * 0.5
        half_w = est_w[senders] * 0.5
        self._fval[senders, slots, act] += half_val
        self._fw[senders, slots, act] += half_w
        self._phi_val[senders] += half_val
        self._phi_w[senders] += half_w

        # Phase 2: payload snapshots.
        g_val = self._fval[senders, slots].copy()  # (k, 2, d)
        g_w = self._fw[senders, slots].copy()
        g_r = self._r[senders, slots].copy()
        g_frozen_val = self._frozen_val[senders, slots].copy()
        g_frozen_w = self._frozen_w[senders, slots].copy()

        # Phase 3: deliveries at unique (receiver, slot) pairs.
        idx = np.nonzero(delivered)[0]
        if len(idx) == 0:
            return
        j = receivers[idx]
        t = r_slots[idx]
        pv = g_val[idx]
        pw = g_w[idx]
        pr = g_r[idx]
        pfv = g_frozen_val[idx]
        pfw = g_frozen_w[idx]
        m = len(idx)

        lr = self._r[j, t].copy()
        ini = self._initiator[j, t]
        delta_val = np.zeros((m, self._d))
        delta_w = np.zeros(m)

        in_window = (pr >= lr - 1) & (pr <= lr + 1)

        # --- boundary refresh (peer one era behind, at the initiator) ----
        boundary = in_window & (pr == lr - 1) & ini
        b_idx = np.nonzero(boundary)[0]
        if len(b_idx):
            jb, tb = j[b_idx], t[b_idx]
            pb = 1 - (lr[b_idx] % 2)  # local passive == peer's stale active
            gb_val = pv[b_idx, pb]
            gb_w = pw[b_idx, pb]
            delta_val[b_idx] -= self._fval[jb, tb, pb] + gb_val
            delta_w[b_idx] -= self._fw[jb, tb, pb] + gb_w
            self._fval[jb, tb, pb] = -gb_val
            self._fw[jb, tb, pb] = -gb_w

        # --- frozen-verified catch-up (peer ahead, at the follower) ------
        catch = in_window & (pr == lr + 1) & ~ini
        c_idx = np.nonzero(catch)[0]
        if len(c_idx):
            jc, tc = j[c_idx], t[c_idx]
            pc = 1 - (lr[c_idx] % 2)
            fz_val = pfv[c_idx]
            fz_w = pfw[c_idx]
            delta_val[c_idx] -= self._fval[jc, tc, pc] + fz_val
            delta_w[c_idx] -= self._fw[jc, tc, pc] + fz_w
            self._fval[jc, tc, pc] = -fz_val
            self._fw[jc, tc, pc] = -fz_w
            self._frozen_val[jc, tc] = -fz_val
            self._frozen_w[jc, tc] = -fz_w
            self._fval[jc, tc, pc] = 0.0
            self._fw[jc, tc, pc] = 0.0
            lr[c_idx] += 1
            self.catch_ups += len(c_idx)

        # --- era-equal processing (includes just-caught-up messages) -----
        eq = in_window & ((pr == lr) | catch)
        e_idx = np.nonzero(eq)[0]
        if len(e_idx):
            je, te = j[e_idx], t[e_idx]
            ae = (lr[e_idx] % 2).astype(np.int64)
            pe = 1 - ae
            erange = e_idx
            # Active-slot PF repair.
            ga_val = pv[erange, ae]
            ga_w = pw[erange, ae]
            delta_val[e_idx] -= self._fval[je, te, ae] + ga_val
            delta_w[e_idx] -= self._fw[je, te, ae] + ga_w
            self._fval[je, te, ae] = -ga_val
            self._fw[je, te, ae] = -ga_w

            gp_val = pv[erange, pe]
            gp_w = pw[erange, pe]
            f_p_val = self._fval[je, te, pe]
            f_p_w = self._fw[je, te, pe]
            ini_e = ini[e_idx]

            # Initiator: cancel when the follower mirrors exactly.
            conserved = np.all(gp_val == -f_p_val, axis=1) & (gp_w == -f_p_w)
            cancel = ini_e & conserved
            z = np.nonzero(cancel)[0]
            if len(z):
                jz, tz, pz = je[z], te[z], pe[z]
                self._frozen_val[jz, tz] = self._fval[jz, tz, pz]
                self._frozen_w[jz, tz] = self._fw[jz, tz, pz]
                self._fval[jz, tz, pz] = 0.0
                self._fw[jz, tz, pz] = 0.0
                lr[e_idx[z]] += 1
                self.cancellations += len(z)

            # Follower: track the initiator's reference copy.
            follow = ~ini_e
            f = np.nonzero(follow)[0]
            if len(f):
                jf, tf, pf = je[f], te[f], pe[f]
                gf_val = gp_val[f]
                gf_w = gp_w[f]
                delta_val[e_idx[f]] -= self._fval[jf, tf, pf] + gf_val
                delta_w[e_idx[f]] -= self._fw[jf, tf, pf] + gf_w
                self._fval[jf, tf, pf] = -gf_val
                self._fw[jf, tf, pf] = -gf_w

        # Write back eras; accumulate phi in sender order.
        self._r[j, t] = lr
        np.add.at(self._phi_val, j, delta_val)
        np.add.at(self._phi_w, j, delta_w)
