"""Cross-engine parity utilities.

The vectorized engines are only trustworthy if they compute the *same*
distributed execution as the readable object engine. These helpers run both
engines under one scripted schedule and compare the per-node estimates; the
test suite asserts bit-identical agreement for every protocol.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Type

import numpy as np

from repro.algorithms.registry import instantiate
from repro.algorithms.state import MassPair
from repro.exceptions import ConfigurationError
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import FixedSchedule, Schedule
from repro.topology.base import Topology
from repro.vectorized.base import VectorizedEngine
from repro.vectorized.engines import (
    VectorPushCancelFlow,
    VectorPushFlow,
    VectorPushSum,
)
from repro.vectorized.hardened import VectorPushCancelFlowHardened

_VECTOR_CLASS = {
    "push_sum": VectorPushSum,
    "push_flow": VectorPushFlow,
    "push_cancel_flow": VectorPushCancelFlow,
    "push_cancel_flow_hardened": VectorPushCancelFlowHardened,
}


def vector_engine_for(algorithm: str) -> Type[VectorizedEngine]:
    """The vectorized engine class matching an object-algorithm name."""
    try:
        return _VECTOR_CLASS[algorithm]
    except KeyError:
        raise ConfigurationError(
            f"no vectorized engine for algorithm {algorithm!r}; "
            f"available: {sorted(_VECTOR_CLASS)}"
        ) from None


def materialize_schedule(
    schedule: Schedule, topology: Topology, rounds: int
) -> np.ndarray:
    """Record a schedule's choices into a ``(rounds, n)`` target matrix.

    Assumes a failure-free run (live neighborhoods never shrink), which is
    the vectorized engines' scope. ``-1`` marks a silent node.
    """
    n = topology.n
    targets = np.full((rounds, n), -1, dtype=np.int64)
    for t in range(rounds):
        for i in topology.nodes():
            choice = schedule.choose(i, topology.neighbors(i), t)
            targets[t, i] = -1 if choice is None else choice
    return targets


def run_object_engine(
    algorithm: str,
    topology: Topology,
    initial: Sequence[MassPair],
    targets: np.ndarray,
) -> np.ndarray:
    """Run the object engine under scripted targets; returns (n, d) estimates."""
    algs = instantiate(algorithm, topology, list(initial))
    engine = SynchronousEngine(
        topology, algs, FixedSchedule(targets.tolist())
    )
    engine.run(len(targets))
    estimates = [np.atleast_1d(np.asarray(alg.estimate())) for alg in algs]
    return np.stack(estimates)


def run_vector_engine(
    algorithm: str,
    topology: Topology,
    initial: Sequence[MassPair],
    targets: np.ndarray,
) -> np.ndarray:
    """Run the vectorized engine under the same scripted targets."""
    values = np.stack([np.atleast_1d(np.asarray(p.value)) for p in initial])
    weights = np.array([p.weight for p in initial])
    cls = vector_engine_for(algorithm)
    engine = cls(topology, values, weights, targets=targets)
    engine.run(len(targets))
    return engine.estimates()


def compare_engines(
    algorithm: str,
    topology: Topology,
    initial: Sequence[MassPair],
    targets: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Estimates from both engines for identical scripted runs."""
    return (
        run_object_engine(algorithm, topology, initial, targets),
        run_vector_engine(algorithm, topology, initial, targets),
    )
