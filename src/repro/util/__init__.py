"""Shared utilities: bit manipulation, validation, statistics, timing."""

from repro.util.float_bits import flip_bit, float_to_bits, bits_to_float
from repro.util.stats import (
    RunningStats,
    finite_mean,
    finite_median,
    median,
    percentile,
)
from repro.util.timer import Timer
from repro.util.validation import (
    check_positive_int,
    check_probability,
    check_in,
    check_type,
)

__all__ = [
    "flip_bit",
    "float_to_bits",
    "bits_to_float",
    "RunningStats",
    "finite_mean",
    "finite_median",
    "median",
    "percentile",
    "Timer",
    "check_positive_int",
    "check_probability",
    "check_in",
    "check_type",
]
