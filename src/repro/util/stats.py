"""Lightweight statistics helpers.

The experiment harness aggregates error series over many seeded runs; these
helpers avoid repeatedly materialising large intermediate arrays and give a
single, tested definition of median/percentile used everywhere (so the
"median local error" curves of Figs. 4/7 are computed consistently).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence


def finite_mean(values: Sequence[float]) -> Optional[float]:
    """Mean over the finite entries of ``values``; None if none are finite.

    Campaign records sanitize non-finite outcomes into tagged strings and
    back into ``nan``/``inf`` floats, so every aggregation over them must
    filter before reducing. This is the single shared definition used by
    the campaign report and the analysis layer.
    """
    finite = [float(v) for v in values if math.isfinite(v)]
    return sum(finite) / len(finite) if finite else None


def finite_median(values: Sequence[float]) -> Optional[float]:
    """Median over the finite entries of ``values``; None if none are finite."""
    finite = [float(v) for v in values if math.isfinite(v)]
    return median(finite) if finite else None


def median(values: Sequence[float]) -> float:
    """Median with linear interpolation for even-length inputs."""
    if len(values) == 0:
        raise ValueError("median of an empty sequence is undefined")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return float(ordered[mid])
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in ``[0, 100]``."""
    if len(values) == 0:
        raise ValueError("percentile of an empty sequence is undefined")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(pos))
    high = int(math.ceil(pos))
    if low == high:
        return float(ordered[low])
    frac = pos - low
    # low + frac * (high - low) is exact for equal endpoints and monotone
    # in frac, unlike the (1-frac)*low + frac*high form.
    return ordered[low] + frac * (ordered[high] - ordered[low])


class RunningStats:
    """Welford one-pass mean/variance accumulator with min/max tracking."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("mean of an empty accumulator is undefined")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample (n-1) variance; 0.0 for a single observation."""
        if self._count == 0:
            raise ValueError("variance of an empty accumulator is undefined")
        if self._count == 1:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        if self._count == 0:
            raise ValueError("min of an empty accumulator is undefined")
        return self._min

    @property
    def max(self) -> float:
        if self._count == 0:
            raise ValueError("max of an empty accumulator is undefined")
        return self._max

    def summary(self) -> dict:
        """Return ``{count, mean, std, min, max}`` for reporting."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._count == 0:
            return "RunningStats(empty)"
        return (
            f"RunningStats(count={self._count}, mean={self._mean:.6g}, "
            f"std={self.std:.6g}, min={self._min:.6g}, max={self._max:.6g})"
        )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values (log-domain, overflow-safe)."""
    if len(values) == 0:
        raise ValueError("geometric mean of an empty sequence is undefined")
    total = 0.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geometric mean requires positive values, got {value}")
        total += math.log(value)
    return math.exp(total / len(values))
