"""Small argument-validation helpers used across the package.

They raise :class:`~repro.exceptions.ConfigurationError` with uniform
messages so misconfiguration is reported identically everywhere.
"""

from __future__ import annotations

from typing import Any, Collection, Tuple, Type, Union

from repro.exceptions import ConfigurationError


def check_positive_int(value: Any, name: str, *, allow_zero: bool = False) -> int:
    """Validate that ``value`` is a (strictly) positive integer and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    lower = 0 if allow_zero else 1
    if value < lower:
        comparison = ">= 0" if allow_zero else ">= 1"
        raise ConfigurationError(f"{name} must be {comparison}, got {value}")
    return value


def check_probability(value: Any, name: str) -> float:
    """Validate that ``value`` is a probability in ``[0, 1]`` and return it."""
    try:
        as_float = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"{name} must be a real number in [0, 1], got {value!r}"
        ) from None
    if not 0.0 <= as_float <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {as_float}")
    return as_float


def check_in(value: Any, options: Collection[Any], name: str) -> Any:
    """Validate that ``value`` is one of ``options`` and return it."""
    if value not in options:
        raise ConfigurationError(
            f"{name} must be one of {sorted(map(repr, options))}, got {value!r}"
        )
    return value


def check_type(
    value: Any, types: Union[Type, Tuple[Type, ...]], name: str
) -> Any:
    """Validate that ``value`` is an instance of ``types`` and return it."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        raise ConfigurationError(
            f"{name} must be {expected}, got {type(value).__name__}"
        )
    return value
