"""Wall-clock timing helper for the benchmark harness and examples."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """Context-manager stopwatch.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        self._elapsed = None
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self._elapsed = time.perf_counter() - self._start

    @property
    def elapsed(self) -> float:
        """Seconds elapsed; valid after the ``with`` block (or live inside it)."""
        if self._start is None:
            raise RuntimeError("Timer was never started")
        if self._elapsed is None:
            return time.perf_counter() - self._start
        return self._elapsed
