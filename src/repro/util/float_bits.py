"""Bit-level manipulation of IEEE-754 doubles.

Used by the bit-flip fault injector (:mod:`repro.faults.bit_flip`) to model
soft errors (single-event upsets) in message payloads and node state, the
failure class the paper's flow-based algorithms recover from "without even
detecting or correcting them explicitly" (Sec. II-A).
"""

from __future__ import annotations

import math
import struct


def float_to_bits(x: float) -> int:
    """Return the 64-bit integer carrying the IEEE-754 encoding of ``x``."""
    return struct.unpack("<Q", struct.pack("<d", float(x)))[0]


def bits_to_float(bits: int) -> float:
    """Inverse of :func:`float_to_bits`."""
    if not 0 <= bits < (1 << 64):
        raise ValueError(f"bits out of range for a 64-bit pattern: {bits!r}")
    return struct.unpack("<d", struct.pack("<Q", bits))[0]


def flip_bit(x: float, bit: int) -> float:
    """Flip bit ``bit`` (0 = least-significant mantissa bit, 63 = sign) of ``x``.

    The result may be any representable double including infinities and NaN
    (a flip in the exponent field can produce either); callers decide how to
    model downstream behaviour — the reduction algorithms under test are
    expected to *recover* from such values on the next successful exchange.
    """
    if not 0 <= bit <= 63:
        raise ValueError(f"bit index must be in [0, 63], got {bit}")
    return bits_to_float(float_to_bits(x) ^ (1 << bit))


def ulp_distance(a: float, b: float) -> int:
    """Number of representable doubles between ``a`` and ``b`` (same sign).

    A convenient exactness metric for tests: ``ulp_distance(x, y) <= k``
    asserts ``y`` is within ``k`` units in the last place of ``x``.
    """
    if math.isnan(a) or math.isnan(b):
        raise ValueError("ulp_distance is undefined for NaN inputs")

    def ordered(x: float) -> int:
        bits = float_to_bits(x)
        # Map the sign-magnitude float encoding onto a monotone integer line.
        if bits & (1 << 63):
            return (1 << 63) - (bits & ~(1 << 63))
        return (1 << 63) + bits

    return abs(ordered(a) - ordered(b))
