"""Aggregations over a loaded campaign: scenarios, coverage, progress, alerts.

Everything here reduces the normalized :class:`~repro.analysis.campaigns.
loader.CampaignData` frame with plain Python (via the shared non-finite
filtering helpers in :mod:`repro.util.stats`), so the numbers are
identical whether or not pandas is installed. The text report
(:mod:`repro.campaigns.report`) and the HTML dashboard both render these
same tables.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.analysis.campaigns.frame import Frame
from repro.analysis.campaigns.loader import CampaignData
from repro.util.stats import finite_mean, finite_median

#: Column order of :func:`scenario_summary` rows.
SCENARIO_COLUMNS = (
    "algorithm",
    "topology",
    "fault",
    "runs",
    "converged",
    "mean_rounds_to_eps",
    "median_final_error",
    "mean_recovery_rounds",
    "unrecovered",
    "worst_mass_drift_floor",
    "alerts",
    "flight_dumps",
)


def _numbers(values: List[object]) -> List[float]:
    return [float(v) for v in values if isinstance(v, (int, float))]


def _finite_max(values: List[object]) -> Optional[float]:
    import math

    finite = [v for v in _numbers(values) if math.isfinite(v)]
    return max(finite) if finite else None


def scenario_summary(ok: Frame) -> Frame:
    """One row per (algorithm, topology, fault), aggregated over seeds.

    ``converged`` is the "k/n" seed fraction; ``mean_recovery_rounds``
    averages the censored recovery costs (the Fig. 4 vs Fig. 7 headline);
    ``worst_mass_drift_floor`` is the largest finite drift floor in the
    group (the persistent mass-loss signal); ``alerts``/``flight_dumps``
    total the anomaly-detector hits and black-box dumps across seeds.
    """
    rows: List[Dict[str, object]] = []
    for (algorithm, topology, fault), group in ok.groupby(
        "algorithm", "topology", "fault"
    ):
        converged = [bool(v) for v in group.column("converged")]
        rows.append(
            {
                "algorithm": algorithm,
                "topology": topology,
                "fault": fault,
                "runs": len(group),
                "converged": f"{sum(converged)}/{len(converged)}",
                "mean_rounds_to_eps": finite_mean(
                    _numbers(group.column("rounds_to_tolerance"))
                ),
                "median_final_error": finite_median(
                    _numbers(group.column("final_error"))
                ),
                "mean_recovery_rounds": finite_mean(
                    _numbers(group.column("recovery_rounds"))
                ),
                "unrecovered": sum(
                    1 for v in group.column("recovered") if v is False
                ),
                "worst_mass_drift_floor": _finite_max(
                    group.column("mass_drift_floor")
                ),
                "alerts": sum(_numbers(group.column("alerts_total"))),
                "flight_dumps": sum(_numbers(group.column("n_flight_dumps"))),
            }
        )
    return Frame.from_records(rows, columns=SCENARIO_COLUMNS)


def coverage_summary(data: CampaignData) -> Dict[str, object]:
    """Expected vs recorded vs ok/failed cells, plus resume-health counts."""
    ok = len(data.ok)
    failed = len(data.frame) - ok
    missing = (
        max(0, data.expected_cells - len(data.frame))
        if data.expected_cells is not None
        else None
    )
    return {
        "expected": data.expected_cells,
        "recorded": len(data.frame),
        "ok": ok,
        "failed": failed,
        "missing": missing,
        "duplicates": data.duplicates,
        "skipped_lines": data.skipped_lines,
    }


def alert_summary(frame: Frame) -> Frame:
    """Per-detector totals: how many alerts fired, across how many cells."""
    totals: Dict[str, float] = {}
    cells: Dict[str, int] = {}
    for alerts in frame.column("alerts"):
        if not isinstance(alerts, dict):
            continue
        for detector, count in alerts.items():
            totals[detector] = totals.get(detector, 0) + float(count)  # type: ignore[arg-type]
            cells[detector] = cells.get(detector, 0) + 1
    rows = [
        {"detector": name, "alerts": totals[name], "cells": cells[name]}
        for name in sorted(totals)
    ]
    return Frame.from_records(rows, columns=("detector", "alerts", "cells"))


def flight_dump_index(frame: Frame) -> List[Dict[str, object]]:
    """Cells that wrote black-box dumps: (cell_id, status, dump paths)."""
    out: List[Dict[str, object]] = []
    for row in frame.rows():
        dumps = row["flight_dumps"]
        if dumps:
            out.append(
                {
                    "cell_id": row["cell_id"],
                    "status": row["status"],
                    "flight_dumps": dumps,
                }
            )
    return sorted(out, key=lambda r: str(r["cell_id"]))


def progress_stats(
    data: CampaignData, *, now: Optional[float] = None
) -> Dict[str, Optional[float]]:
    """Live-progress numbers from record timestamps and per-cell wall times.

    Works on a *partially complete* campaign directory, which is the point:
    a long sweep can be analyzed mid-flight. ``recorded_at`` only exists on
    current-era records; older records degrade to wall-time stats only.
    """
    frame = data.frame
    walls = _numbers(frame.column("wall_s"))
    stamps = sorted(_numbers(frame.column("recorded_at")))
    stats: Dict[str, Optional[float]] = {
        "cells_recorded": float(len(frame)),
        "mean_wall_s": finite_mean(walls),
        "median_wall_s": finite_median(walls),
        "total_wall_s": sum(walls) if walls else None,
        "elapsed_s": None,
        "cells_per_sec": None,
        "eta_s": None,
        "remaining_cells": None,
    }
    if data.expected_cells is not None:
        stats["remaining_cells"] = float(
            max(0, data.expected_cells - len(frame))
        )
    if len(stamps) >= 2 and stamps[-1] > stamps[0]:
        span = stamps[-1] - stamps[0]
        stats["elapsed_s"] = span
        # (count - 1) intervals landed inside the span; resumed campaigns
        # with long gaps under-report, which is the honest reading.
        stats["cells_per_sec"] = (len(stamps) - 1) / span
    if stats["cells_per_sec"] and stats["remaining_cells"] is not None:
        stats["eta_s"] = stats["remaining_cells"] / stats["cells_per_sec"]
    if now is not None and stamps:
        stats["since_last_record_s"] = now - stamps[-1]
    return stats


def progress_lines(stats: Dict[str, Optional[float]]) -> List[str]:
    """Human lines for the progress block (report footer + dashboard)."""

    def fmt(value: Optional[float], unit: str = "") -> str:
        if value is None:
            return "-"
        if unit == "s" and value >= 120:
            return f"{value / 60.0:.1f} min"
        return f"{value:.3g}{(' ' + unit) if unit else ''}"

    lines = [
        f"cells recorded: {fmt(stats.get('cells_recorded'))}",
        f"per-cell wall time: mean {fmt(stats.get('mean_wall_s'), 's')}, "
        f"median {fmt(stats.get('median_wall_s'), 's')}",
        f"throughput: {fmt(stats.get('cells_per_sec'))} cells/s "
        f"over {fmt(stats.get('elapsed_s'), 's')}",
    ]
    if stats.get("remaining_cells"):
        lines.append(
            f"remaining: {fmt(stats.get('remaining_cells'))} cells, "
            f"ETA {fmt(stats.get('eta_s'), 's')}"
        )
    return lines


def utcnow() -> float:
    """Seconds since the epoch (separate for test monkeypatching)."""
    return time.time()
