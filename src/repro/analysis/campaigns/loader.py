"""Load a campaign directory into a normalized, schema-versioned Frame.

``results.jsonl`` has grown across PRs: early records had no anomaly-alert
or flight-dump fields (pre-tracing), later ones gained ``dynamics``
metadata, and the current runner stamps ``recorded_at`` on every line.
Resumed campaigns can also append a cell id twice. The loader absorbs all
of that:

- every record is normalized to one fixed column set (missing fields get
  typed defaults) and tagged with the ``schema_era`` it was written under;
- duplicate cell ids keep the **latest** record, exactly matching
  :func:`repro.campaigns.runner.load_results` (and the count of shadowed
  records is reported, since it is a resume-health signal);
- tagged non-finite values (``"nan"``/``"inf"``/``"-inf"``, written by the
  runner's JSONL sanitizer) come back as real floats.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.campaigns.frame import Frame
from repro.campaigns.runner import as_float
from repro.exceptions import ExperimentError

#: Version of the normalized column set this loader emits.
SCHEMA_VERSION = 5

#: Eras of results.jsonl records, detected per record from key presence.
ERA_PRE_TRACING = 1  # no alerts / flight_dumps (pre anomaly detectors)
ERA_PRE_DYNAMICS = 2  # alerts present, no dynamics metadata
ERA_DYNAMICS = 3  # dynamics present, no recorded_at timestamp
ERA_TIMESTAMPED = 4  # current: recorded_at stamped at append time

_STR_COLUMNS = (
    "cell_id",
    "status",
    "algorithm",
    "topology",
    "fault",
    "engine",
    "backend",
)
_INT_COLUMNS = (
    "seed",
    "n",
    "rounds",
    "rounds_to_tolerance",
    "event_round",
    "mass_violations",
    "attempts",
    "alerts_total",
    "messages_sent",
    "messages_delivered",
)
_FLOAT_COLUMNS = (
    "epsilon",
    "final_error",
    "best_error",
    "recovery_rounds",
    "jump_factor",
    "restart_fraction",
    "mass_drift_final",
    "mass_drift_floor",
    "mass_drift_worst",
    "wall_s",
    "kernel_seconds",
    "recorded_at",
)
_BOOL_COLUMNS = ("converged", "recovered")

#: Full normalized column order (the loader's public schema).
COLUMNS: Tuple[str, ...] = (
    _STR_COLUMNS
    + _INT_COLUMNS
    + _FLOAT_COLUMNS
    + _BOOL_COLUMNS
    + ("alerts", "flight_dumps", "n_flight_dumps", "dynamics", "error", "schema_era")
)


def record_era(raw: Dict[str, object]) -> int:
    """Which era of the results schema wrote this record."""
    if "recorded_at" in raw:
        return ERA_TIMESTAMPED
    if "dynamics" in raw:
        return ERA_DYNAMICS
    if "alerts" in raw or "alerts_total" in raw or "flight_dumps" in raw:
        return ERA_PRE_DYNAMICS
    return ERA_PRE_TRACING


def _opt_int(value: object) -> Optional[int]:
    if value is None:
        return None
    try:
        return int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def _opt_float(value: object) -> Optional[float]:
    if value is None:
        return None
    try:
        return as_float(value)
    except (TypeError, ValueError):
        return None


def normalize_record(raw: Dict[str, object]) -> Dict[str, object]:
    """One raw results.jsonl record -> the fixed COLUMNS schema."""
    out: Dict[str, object] = {}
    for name in _STR_COLUMNS:
        value = raw.get(name)
        out[name] = None if value is None else str(value)
    if out["engine"] is None:
        out["engine"] = "object"  # pre-batched records ran the object engine
    for name in _INT_COLUMNS:
        out[name] = _opt_int(raw.get(name))
    if out["alerts_total"] is None:
        out["alerts_total"] = 0
    for name in _FLOAT_COLUMNS:
        out[name] = _opt_float(raw.get(name))
    for name in _BOOL_COLUMNS:
        value = raw.get(name)
        out[name] = None if value is None else bool(value)
    alerts = raw.get("alerts")
    out["alerts"] = dict(alerts) if isinstance(alerts, dict) else {}
    dumps = raw.get("flight_dumps")
    out["flight_dumps"] = (
        [str(p) for p in dumps] if isinstance(dumps, list) else []
    )
    out["n_flight_dumps"] = len(out["flight_dumps"])  # type: ignore[arg-type]
    dynamics = raw.get("dynamics")
    out["dynamics"] = dict(dynamics) if isinstance(dynamics, dict) else None
    error = raw.get("error")
    out["error"] = None if error is None else str(error)
    out["schema_era"] = record_era(raw)
    return out


@dataclasses.dataclass
class CampaignData:
    """A loaded campaign: normalized cell table plus directory metadata."""

    directory: pathlib.Path
    frame: Frame
    spec: Optional[Dict[str, object]]
    expected_cells: Optional[int]
    duplicates: int
    skipped_lines: int
    schema_version: int = SCHEMA_VERSION

    @property
    def name(self) -> str:
        if self.spec and self.spec.get("name"):
            return str(self.spec["name"])
        return self.directory.name

    @property
    def ok(self) -> Frame:
        return self.frame.where(status="ok")

    @property
    def failed(self) -> Frame:
        return self.frame.filter(lambda r: r["status"] != "ok")


def load_records(
    path: Union[str, pathlib.Path],
) -> Tuple[List[Dict[str, object]], int, int]:
    """Read a results.jsonl: (deduped normalized records, duplicates, skipped).

    Latest record per cell id wins (the resume contract of
    :func:`repro.campaigns.runner.load_results`); unparseable or
    id-less lines are skipped, as a crash may truncate the final line.
    """
    path = pathlib.Path(path)
    by_cell: Dict[str, Dict[str, object]] = {}
    duplicates = 0
    skipped = 0
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            raw = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if not isinstance(raw, dict) or "cell_id" not in raw:
            skipped += 1
            continue
        cell_id = str(raw["cell_id"])
        if cell_id in by_cell:
            duplicates += 1
        by_cell[cell_id] = normalize_record(raw)
    return list(by_cell.values()), duplicates, skipped


def expected_cell_count(spec: Optional[Dict[str, object]]) -> Optional[int]:
    """Grid size implied by a campaign.json dict (None when unknowable)."""
    if not spec:
        return None
    try:
        return (
            len(spec["algorithms"])  # type: ignore[arg-type]
            * len(spec["topologies"])  # type: ignore[arg-type]
            * len(spec["faults"])  # type: ignore[arg-type]
            * len(spec["seeds"])  # type: ignore[arg-type]
        )
    except (KeyError, TypeError):
        return None


def load_campaign(directory: Union[str, pathlib.Path]) -> CampaignData:
    """Load ``directory/results.jsonl`` (+ campaign.json) into a CampaignData."""
    directory = pathlib.Path(directory)
    results_path = directory / "results.jsonl"
    if not results_path.exists():
        raise ExperimentError(
            f"{directory} has no results.jsonl — not a campaign directory?"
        )
    records, duplicates, skipped = load_records(results_path)
    spec: Optional[Dict[str, object]] = None
    spec_path = directory / "campaign.json"
    if spec_path.exists():
        try:
            loaded = json.loads(spec_path.read_text())
        except json.JSONDecodeError:
            loaded = None
        if isinstance(loaded, dict):
            spec = loaded
    return CampaignData(
        directory=directory,
        frame=Frame.from_records(records, columns=COLUMNS),
        spec=spec,
        expected_cells=expected_cell_count(spec),
        duplicates=duplicates,
        skipped_lines=skipped,
    )
