"""Render FigureSpecs: matplotlib (publication theme) or built-in SVG.

Two backends, one declarative input:

- With matplotlib installed, :func:`render_figure` draws through it under
  :data:`PUBLICATION_RC` (serif text, thin spines, subtle grid — the
  paper-figure look) and writes PNG + SVG.
- Without it, a small built-in SVG renderer covers the three spec kinds
  (line, bar, heatmap) with log axes, legends and value labels. The
  dashboard always embeds the built-in SVG so its HTML is byte-stable
  across environments and fully self-contained.
"""

from __future__ import annotations

import math
import pathlib
from typing import List, Optional, Sequence, Tuple, Union
from xml.sax.saxutils import escape

from repro.analysis.campaigns.figures import FigureSpec
from repro.exceptions import ExperimentError

#: Categorical palette (colorblind-safe Okabe-Ito ordering).
PALETTE = (
    "#0072B2",
    "#D55E00",
    "#009E73",
    "#CC79A7",
    "#E69F00",
    "#56B4E9",
    "#F0E442",
    "#000000",
)

#: Publication matplotlib theme, applied around every mpl render.
PUBLICATION_RC = {
    "figure.figsize": (6.4, 4.2),
    "figure.dpi": 150,
    "font.family": "serif",
    "font.size": 10,
    "axes.titlesize": 11,
    "axes.labelsize": 10,
    "axes.spines.top": False,
    "axes.spines.right": False,
    "axes.grid": True,
    "grid.alpha": 0.3,
    "grid.linewidth": 0.5,
    "legend.frameon": False,
    "legend.fontsize": 9,
    "lines.linewidth": 1.4,
    "lines.markersize": 4,
    "savefig.bbox": "tight",
}


def matplotlib_available() -> bool:
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


# ----------------------------------------------------------------------
# Built-in SVG backend
# ----------------------------------------------------------------------
_W, _H = 660, 420
_ML, _MR, _MT, _MB = 76, 150, 46, 60  # margins: left/right/top/bottom


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1e4 or abs(value) < 1e-3:
        exponent = math.floor(math.log10(abs(value)))
        mantissa = value / 10.0**exponent
        if abs(mantissa - 1.0) < 1e-9:
            return f"1e{exponent:d}"
        return f"{mantissa:.3g}e{exponent:d}"
    return f"{value:.4g}"


class _Scale:
    """Maps data values onto pixel coordinates, linear or log10."""

    def __init__(
        self,
        lo: float,
        hi: float,
        pix_lo: float,
        pix_hi: float,
        *,
        log: bool = False,
    ) -> None:
        if log:
            lo = math.log10(lo)
            hi = math.log10(hi)
        if hi <= lo:  # degenerate range: pad symmetrically
            pad = max(abs(lo) * 0.5, 1.0)
            lo, hi = lo - pad, hi + pad
        self.lo, self.hi = lo, hi
        self.pix_lo, self.pix_hi = pix_lo, pix_hi
        self.log = log

    def __call__(self, value: float) -> float:
        v = math.log10(value) if self.log else value
        frac = (v - self.lo) / (self.hi - self.lo)
        return self.pix_lo + frac * (self.pix_hi - self.pix_lo)

    def ticks(self, target: int = 5) -> List[float]:
        if self.log:
            first = math.ceil(self.lo - 1e-9)
            last = math.floor(self.hi + 1e-9)
            decades = list(range(first, last + 1))
            stride = max(1, math.ceil(len(decades) / max(target, 2)))
            return [10.0**d for d in decades[::stride]]
        span = self.hi - self.lo
        raw = span / max(target, 2)
        mag = 10.0 ** math.floor(math.log10(raw)) if raw > 0 else 1.0
        for mult in (1.0, 2.0, 2.5, 5.0, 10.0):
            if raw <= mult * mag:
                step = mult * mag
                break
        first = math.ceil(self.lo / step) * step
        ticks = []
        t = first
        while t <= self.hi + step * 1e-9:
            ticks.append(0.0 if abs(t) < step * 1e-9 else t)
            t += step
        return ticks


def _finite(values: Sequence[Optional[float]]) -> List[float]:
    return [
        v
        for v in values
        if isinstance(v, (int, float)) and math.isfinite(v)
    ]


def _data_ranges(spec: FigureSpec) -> Tuple[List[float], List[float]]:
    xs: List[float] = []
    ys: List[float] = []
    for series in spec.series:
        ys.extend(_finite(series.y))
        if series.x is not None:
            xs.extend(_finite(series.x))
    return xs, ys


def _axis_range(
    values: List[float], *, log: bool, pad_frac: float = 0.06
) -> Tuple[float, float]:
    if log:
        positive = [v for v in values if v > 0]
        if not positive:
            raise ExperimentError("log axis needs at least one positive value")
        lo, hi = min(positive), max(positive)
        return lo / 1.6, hi * 1.6
    lo, hi = min(values), max(values)
    pad = (hi - lo) * pad_frac
    if pad == 0:
        pad = max(abs(hi) * 0.1, 0.5)
    lo = min(lo - pad, 0.0 if lo >= 0 else lo - pad)
    return lo, hi + pad


def _svg_header(spec: FigureSpec) -> List[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" '
        f'height="{_H}" viewBox="0 0 {_W} {_H}" role="img" '
        f'aria-label="{escape(spec.title)}">',
        f'<rect width="{_W}" height="{_H}" fill="white"/>',
        f'<text x="{_ML}" y="24" font-size="14" font-weight="bold" '
        f'font-family="Georgia,serif">{escape(spec.title)}</text>',
    ]


def _svg_axes(spec: FigureSpec) -> List[str]:
    parts = [
        f'<rect x="{_ML}" y="{_MT}" width="{_W - _ML - _MR}" '
        f'height="{_H - _MT - _MB}" fill="none" stroke="#444" '
        'stroke-width="1"/>',
        f'<text x="{(_ML + _W - _MR) / 2:.0f}" y="{_H - 14}" '
        'font-size="11" text-anchor="middle" '
        f'font-family="Georgia,serif">{escape(spec.xlabel)}</text>',
        f'<text x="16" y="{(_MT + _H - _MB) / 2:.0f}" font-size="11" '
        'text-anchor="middle" font-family="Georgia,serif" '
        f'transform="rotate(-90 16 {(_MT + _H - _MB) / 2:.0f})">'
        f"{escape(spec.ylabel)}</text>",
    ]
    return parts


def _svg_yticks(yscale: _Scale) -> List[str]:
    parts = []
    for tick in yscale.ticks():
        value = tick
        py = yscale(value)
        if not _MT - 1 <= py <= _H - _MB + 1:
            continue
        parts.append(
            f'<line x1="{_ML}" y1="{py:.1f}" x2="{_W - _MR}" y2="{py:.1f}" '
            'stroke="#ddd" stroke-width="0.6"/>'
        )
        parts.append(
            f'<text x="{_ML - 6}" y="{py + 3.5:.1f}" font-size="9" '
            'text-anchor="end" font-family="Georgia,serif">'
            f"{_fmt(value)}</text>"
        )
    return parts


def _svg_legend(labels: Sequence[str]) -> List[str]:
    parts = []
    x = _W - _MR + 12
    for i, label in enumerate(labels):
        y = _MT + 10 + i * 18
        color = PALETTE[i % len(PALETTE)]
        parts.append(
            f'<rect x="{x}" y="{y - 8}" width="10" height="10" '
            f'fill="{color}"/>'
        )
        parts.append(
            f'<text x="{x + 15}" y="{y + 1}" font-size="10" '
            f'font-family="Georgia,serif">{escape(str(label))}</text>'
        )
    return parts


def _render_line(spec: FigureSpec) -> List[str]:
    xs, ys = _data_ranges(spec)
    if not xs or not ys:
        raise ExperimentError(
            f"figure {spec.name!r}: no finite points to draw"
        )
    if spec.ylog:
        ys = [v for v in ys if v > 0] or ys
    xlo, xhi = _axis_range(xs, log=spec.xlog)
    ylo, yhi = _axis_range(ys, log=spec.ylog)
    xscale = _Scale(xlo, xhi, _ML, _W - _MR, log=spec.xlog)
    yscale = _Scale(ylo, yhi, _H - _MB, _MT, log=spec.ylog)

    parts = _svg_yticks(yscale)
    for tick in xscale.ticks():
        px = xscale(tick)
        if not _ML - 1 <= px <= _W - _MR + 1:
            continue
        parts.append(
            f'<line x1="{px:.1f}" y1="{_MT}" x2="{px:.1f}" '
            f'y2="{_H - _MB}" stroke="#eee" stroke-width="0.6"/>'
        )
        parts.append(
            f'<text x="{px:.1f}" y="{_H - _MB + 14}" font-size="9" '
            'text-anchor="middle" font-family="Georgia,serif">'
            f"{_fmt(tick)}</text>"
        )
    for i, series in enumerate(spec.series):
        color = PALETTE[i % len(PALETTE)]
        points = []
        for x, y in zip(series.x or [], series.y):
            if not isinstance(y, (int, float)) or not math.isfinite(y):
                continue
            if (spec.ylog and y <= 0) or (spec.xlog and x <= 0):
                continue
            points.append((xscale(x), yscale(y)))
        if len(points) >= 2:
            path = " ".join(f"{px:.1f},{py:.1f}" for px, py in points)
            parts.append(
                f'<polyline points="{path}" fill="none" stroke="{color}" '
                'stroke-width="1.6"/>'
            )
        for px, py in points:
            parts.append(
                f'<circle cx="{px:.1f}" cy="{py:.1f}" r="2.6" '
                f'fill="{color}"/>'
            )
    parts.extend(_svg_legend([s.label for s in spec.series]))
    return parts


def _render_bar(spec: FigureSpec) -> List[str]:
    _, ys = _data_ranges(spec)
    if not ys:
        raise ExperimentError(f"figure {spec.name!r}: no finite bars to draw")
    if spec.ylog:
        positive = [v for v in ys if v > 0]
        if not positive:
            raise ExperimentError(
                f"figure {spec.name!r}: log bars need positive values"
            )
        ylo, yhi = min(positive) / 2.0, max(positive) * 1.6
    else:
        ylo, yhi = 0.0, (max(ys) if max(ys) > 0 else 1.0) * 1.08
    yscale = _Scale(ylo, yhi, _H - _MB, _MT, log=spec.ylog)
    baseline = _H - _MB

    parts = _svg_yticks(yscale)
    n_cat = max(len(spec.categories), 1)
    n_ser = max(len(spec.series), 1)
    slot = (_W - _ML - _MR) / n_cat
    bar_w = min(slot * 0.8 / n_ser, 40.0)
    group_w = bar_w * n_ser
    for c, category in enumerate(spec.categories):
        cx = _ML + (c + 0.5) * slot
        parts.append(
            f'<text x="{cx:.1f}" y="{_H - _MB + 14}" font-size="9" '
            'text-anchor="middle" font-family="Georgia,serif">'
            f"{escape(str(category))}</text>"
        )
        for s, series in enumerate(spec.series):
            value = series.y[c] if c < len(series.y) else None
            if not isinstance(value, (int, float)) or not math.isfinite(
                value
            ):
                continue
            if spec.ylog and value <= 0:
                continue
            color = PALETTE[s % len(PALETTE)]
            top = yscale(value)
            x = cx - group_w / 2 + s * bar_w
            height = max(baseline - top, 0.5)
            parts.append(
                f'<rect x="{x:.1f}" y="{top:.1f}" width="{bar_w - 2:.1f}" '
                f'height="{height:.1f}" fill="{color}"/>'
            )
            parts.append(
                f'<text x="{x + (bar_w - 2) / 2:.1f}" y="{top - 3:.1f}" '
                'font-size="7.5" text-anchor="middle" fill="#555" '
                f'font-family="Georgia,serif">{_fmt(float(value))}</text>'
            )
    parts.extend(_svg_legend([s.label for s in spec.series]))
    return parts


def _heat_color(frac: float) -> str:
    """White -> deep blue ramp."""
    frac = min(max(frac, 0.0), 1.0)
    r = round(255 - frac * (255 - 0x00))
    g = round(255 - frac * (255 - 0x45))
    b = round(255 - frac * (255 - 0x8A))
    return f"rgb({r},{g},{b})"


def _render_heatmap(spec: FigureSpec) -> List[str]:
    finite = [
        v
        for row in spec.values
        for v in row
        if isinstance(v, (int, float)) and math.isfinite(v)
    ]
    if not finite:
        raise ExperimentError(
            f"figure {spec.name!r}: no finite heatmap values"
        )
    lo, hi = min(finite), max(finite)
    span = hi - lo or 1.0
    n_rows = len(spec.row_labels)
    n_cols = len(spec.col_labels)
    cell_w = (_W - _ML - _MR) / max(n_cols, 1)
    cell_h = (_H - _MT - _MB) / max(n_rows, 1)
    parts: List[str] = []
    for r, row_label in enumerate(spec.row_labels):
        y = _MT + r * cell_h
        parts.append(
            f'<text x="{_ML - 6}" y="{y + cell_h / 2 + 3:.1f}" '
            'font-size="9" text-anchor="end" '
            f'font-family="Georgia,serif">{escape(str(row_label))}</text>'
        )
        for c in range(n_cols):
            x = _ML + c * cell_w
            value = spec.values[r][c] if c < len(spec.values[r]) else None
            if isinstance(value, (int, float)) and math.isfinite(value):
                fill = _heat_color((value - lo) / span)
                label = _fmt(float(value))
            else:
                fill, label = "#eee", "-"
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{cell_w:.1f}" '
                f'height="{cell_h:.1f}" fill="{fill}" stroke="white" '
                'stroke-width="1.5"/>'
            )
            dark = (
                isinstance(value, (int, float))
                and math.isfinite(value)
                and (value - lo) / span > 0.55
            )
            parts.append(
                f'<text x="{x + cell_w / 2:.1f}" '
                f'y="{y + cell_h / 2 + 3:.1f}" font-size="10" '
                f'text-anchor="middle" fill="{"white" if dark else "#222"}" '
                f'font-family="Georgia,serif">{label}</text>'
            )
    for c, col_label in enumerate(spec.col_labels):
        x = _ML + (c + 0.5) * cell_w
        parts.append(
            f'<text x="{x:.1f}" y="{_H - _MB + 14}" font-size="9" '
            'text-anchor="middle" font-family="Georgia,serif">'
            f"{escape(str(col_label))}</text>"
        )
    return parts


def render_svg(spec: FigureSpec) -> str:
    """Render a FigureSpec with the built-in SVG backend (no dependencies)."""
    if spec.kind == "line":
        body = _render_line(spec)
    elif spec.kind == "bar":
        body = _render_bar(spec)
    elif spec.kind == "heatmap":
        body = _render_heatmap(spec)
    else:
        raise ExperimentError(
            f"figure {spec.name!r} has unknown kind {spec.kind!r}"
        )
    parts = _svg_header(spec)
    if spec.kind != "heatmap":
        parts.extend(_svg_axes(spec))
    else:
        parts.extend(_svg_axes(spec)[1:])  # labels only, no frame
    parts.extend(body)
    parts.append("</svg>")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# matplotlib backend
# ----------------------------------------------------------------------
def _render_matplotlib(spec: FigureSpec, path: pathlib.Path) -> None:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    with matplotlib.rc_context(PUBLICATION_RC):
        fig, ax = plt.subplots()
        if spec.kind == "line":
            for i, series in enumerate(spec.series):
                ax.plot(
                    series.x,
                    [
                        v if isinstance(v, (int, float)) else math.nan
                        for v in series.y
                    ],
                    marker="o",
                    label=str(series.label),
                    color=PALETTE[i % len(PALETTE)],
                )
            if spec.series:
                ax.legend()
        elif spec.kind == "bar":
            n_ser = max(len(spec.series), 1)
            width = 0.8 / n_ser
            for s, series in enumerate(spec.series):
                positions = [
                    c - 0.4 + (s + 0.5) * width
                    for c in range(len(spec.categories))
                ]
                heights = [
                    v
                    if isinstance(v, (int, float)) and math.isfinite(v)
                    else 0.0
                    for v in series.y
                ]
                ax.bar(
                    positions,
                    heights,
                    width=width,
                    label=str(series.label),
                    color=PALETTE[s % len(PALETTE)],
                )
            ax.set_xticks(range(len(spec.categories)))
            ax.set_xticklabels(spec.categories, rotation=20, ha="right")
            if spec.series:
                ax.legend()
        elif spec.kind == "heatmap":
            grid = [
                [
                    v
                    if isinstance(v, (int, float)) and math.isfinite(v)
                    else math.nan
                    for v in row
                ]
                for row in spec.values
            ]
            image = ax.imshow(grid, aspect="auto", cmap="Blues")
            ax.set_xticks(range(len(spec.col_labels)))
            ax.set_xticklabels(spec.col_labels, rotation=20, ha="right")
            ax.set_yticks(range(len(spec.row_labels)))
            ax.set_yticklabels(spec.row_labels)
            fig.colorbar(image, ax=ax)
        if spec.ylog:
            ax.set_yscale("log")
        if spec.xlog:
            ax.set_xscale("log")
        ax.set_title(spec.title)
        ax.set_xlabel(spec.xlabel)
        ax.set_ylabel(spec.ylabel)
        fig.savefig(path)
        plt.close(fig)


def render_figure(
    spec: FigureSpec,
    out_dir: Union[str, pathlib.Path],
    *,
    fmt: str = "auto",
) -> pathlib.Path:
    """Write one figure file; returns its path.

    ``fmt``: ``"svg"`` forces the built-in backend, ``"png"`` requires
    matplotlib, ``"auto"`` prefers matplotlib PNG and falls back to SVG.
    """
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    if fmt not in ("auto", "svg", "png"):
        raise ExperimentError(f"unknown figure format {fmt!r}")
    use_mpl = fmt == "png" or (fmt == "auto" and matplotlib_available())
    if fmt == "png" and not matplotlib_available():
        raise ExperimentError(
            "figure format 'png' requires matplotlib; use 'svg' "
            "(built-in renderer) instead"
        )
    if use_mpl:
        path = out_dir / f"{spec.name}.png"
        _render_matplotlib(spec, path)
        return path
    path = out_dir / f"{spec.name}.svg"
    path.write_text(render_svg(spec))
    return path
