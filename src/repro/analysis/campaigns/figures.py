"""Named-figure registry: campaign dataframes -> declarative figure specs.

Every entry in :data:`FIGURES` maps a figure name to a generator taking a
loaded :class:`~repro.analysis.campaigns.loader.CampaignData` and
returning a :class:`FigureSpec` — a *declarative* description (series,
axes, scales) that the rendering layer turns into matplotlib output when
available or a built-in SVG otherwise. Keeping specs declarative is what
lets the same figure definitions drive both backends and makes every
figure unit-testable without a plotting dependency.

The registry regenerates the paper's campaign-visible figures (the
accuracy-vs-scale curves of Figs. 3/6, the link-failure fallback of
Figs. 4/7) plus the dynamic-network figures the Minho papers motivate
(churn grid, partition-heal reconvergence, mass-drift floor). DESIGN.md
carries the full name -> columns -> paper-figure table.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.campaigns.frame import Frame
from repro.analysis.campaigns.loader import CampaignData
from repro.exceptions import ExperimentError
from repro.util.stats import finite_mean, finite_median


@dataclasses.dataclass
class Series:
    """One plotted series: numeric x/y for lines, category-aligned y for bars."""

    label: str
    y: List[Optional[float]]
    x: Optional[List[float]] = None  # line figures only


@dataclasses.dataclass
class FigureSpec:
    """Declarative figure: what to draw, not how to draw it."""

    name: str
    title: str
    kind: str  # "line" | "bar" | "heatmap"
    xlabel: str = ""
    ylabel: str = ""
    series: List[Series] = dataclasses.field(default_factory=list)
    categories: List[str] = dataclasses.field(default_factory=list)  # bar
    row_labels: List[str] = dataclasses.field(default_factory=list)  # heatmap
    col_labels: List[str] = dataclasses.field(default_factory=list)  # heatmap
    values: List[List[Optional[float]]] = dataclasses.field(
        default_factory=list
    )  # heatmap
    ylog: bool = False
    xlog: bool = False
    caption: str = ""
    paper_figure: str = ""


FigureGenerator = Callable[[CampaignData], FigureSpec]

#: The named-figure registry: ``python -m repro.experiments analyze`` and
#: the dashboard iterate this.
FIGURES: Dict[str, FigureGenerator] = {}

#: name -> (paper figure reproduced, source dataframe columns) — the
#: DESIGN.md table is generated from the same metadata.
FIGURE_INFO: Dict[str, Tuple[str, Tuple[str, ...]]] = {}


def register_figure(
    name: str, *, paper: str, columns: Tuple[str, ...]
) -> Callable[[FigureGenerator], FigureGenerator]:
    def wrap(func: FigureGenerator) -> FigureGenerator:
        if name in FIGURES:
            raise ExperimentError(f"figure {name!r} registered twice")
        FIGURES[name] = func
        FIGURE_INFO[name] = (paper, columns)
        return func

    return wrap


def _numbers(values: Sequence[object]) -> List[float]:
    return [float(v) for v in values if isinstance(v, (int, float))]


def _require_ok(data: CampaignData, name: str) -> Frame:
    ok = data.ok
    if len(ok) == 0:
        raise ExperimentError(
            f"figure {name!r}: campaign {data.name!r} has no successful cells"
        )
    return ok


def _fault_order(ok: Frame) -> List[str]:
    return [str(f) for f in ok.unique("fault")]


# ----------------------------------------------------------------------
# Paper figures, regenerated from campaign output
# ----------------------------------------------------------------------
@register_figure(
    "accuracy-vs-scale",
    paper="Figs. 3 & 6 (achievable accuracy vs problem size)",
    columns=("algorithm", "n", "final_error"),
)
def accuracy_vs_scale(data: CampaignData) -> FigureSpec:
    """Median final error against network size, one curve per algorithm."""
    ok = _require_ok(data, "accuracy-vs-scale")
    series: List[Series] = []
    for (algorithm,), group in ok.groupby("algorithm"):
        points: List[Tuple[float, float]] = []
        for (n,), sub in group.groupby("n"):
            if n is None:
                continue
            med = finite_median(_numbers(sub.column("final_error")))
            if med is not None:
                points.append((float(n), med))  # type: ignore[arg-type]
        if points:
            points.sort()
            series.append(
                Series(
                    label=str(algorithm),
                    x=[p[0] for p in points],
                    y=[p[1] for p in points],
                )
            )
    if not series:
        raise ExperimentError(
            "figure 'accuracy-vs-scale': no finite final_error values"
        )
    return FigureSpec(
        name="accuracy-vs-scale",
        title="Achievable accuracy vs network size",
        kind="line",
        xlabel="nodes n",
        ylabel="median final max error",
        series=series,
        ylog=True,
        caption=(
            "Median oracle-relative final error per algorithm and size, "
            "aggregated over seeds and fault scenarios (paper Figs. 3/6)."
        ),
        paper_figure="Figs. 3 & 6",
    )


@register_figure(
    "convergence-rounds",
    paper="Fig. 2 (cost of reaching tolerance, per scenario)",
    columns=("algorithm", "fault", "rounds_to_tolerance"),
)
def convergence_rounds(data: CampaignData) -> FigureSpec:
    """Mean rounds-to-tolerance per algorithm across fault scenarios."""
    ok = _require_ok(data, "convergence-rounds")
    faults = _fault_order(ok)
    series = []
    for (algorithm,), group in ok.groupby("algorithm"):
        row: List[Optional[float]] = []
        for fault in faults:
            sub = group.where(fault=fault)
            row.append(
                finite_mean(_numbers(sub.column("rounds_to_tolerance")))
            )
        series.append(Series(label=str(algorithm), y=row))
    return FigureSpec(
        name="convergence-rounds",
        title="Rounds to tolerance by fault scenario",
        kind="bar",
        xlabel="fault scenario",
        ylabel="mean rounds to ε",
        categories=faults,
        series=series,
        caption=(
            "Mean rounds until the max error first drops below the "
            "campaign ε; cells that never reach it are excluded."
        ),
        paper_figure="Fig. 2",
    )


@register_figure(
    "recovery-rounds",
    paper="Fig. 4 (PF fallback) vs Fig. 7 (PCF resilience)",
    columns=("algorithm", "fault", "recovery_rounds", "recovered"),
)
def recovery_rounds(data: CampaignData) -> FigureSpec:
    """Censored mean recovery cost after the fault event, per scenario."""
    ok = _require_ok(data, "recovery-rounds")
    with_event = ok.filter(lambda r: r["event_round"] is not None)
    if len(with_event) == 0:
        raise ExperimentError(
            "figure 'recovery-rounds': no cells carry a fault event "
            "(fault-free campaign?)"
        )
    faults = _fault_order(with_event)
    series = []
    unrecovered_total = 0
    for (algorithm,), group in with_event.groupby("algorithm"):
        row: List[Optional[float]] = []
        for fault in faults:
            sub = group.where(fault=fault)
            row.append(finite_mean(_numbers(sub.column("recovery_rounds"))))
            unrecovered_total += sum(
                1 for v in sub.column("recovered") if v is False
            )
        series.append(Series(label=str(algorithm), y=row))
    return FigureSpec(
        name="recovery-rounds",
        title="Recovery rounds after the fault event",
        kind="bar",
        xlabel="fault scenario",
        ylabel="mean recovery rounds (censored)",
        categories=faults,
        series=series,
        caption=(
            "Rounds to regain pre-event accuracy, censored at the "
            f"remaining budget when never regained ({unrecovered_total} "
            "unrecovered runs in this campaign) — the Fig. 4 vs Fig. 7 "
            "headline contrast."
        ),
        paper_figure="Figs. 4 & 7",
    )


@register_figure(
    "fallback-jump",
    paper="Figs. 4 & 7 (error jump at the failure instant)",
    columns=("algorithm", "fault", "jump_factor"),
)
def fallback_jump(data: CampaignData) -> FigureSpec:
    """Mean error jump factor at the fault event: PF large, PCF ~1."""
    ok = _require_ok(data, "fallback-jump")
    with_event = ok.filter(lambda r: r["event_round"] is not None)
    if len(with_event) == 0:
        raise ExperimentError(
            "figure 'fallback-jump': no cells carry a fault event"
        )
    faults = _fault_order(with_event)
    series = []
    for (algorithm,), group in with_event.groupby("algorithm"):
        row: List[Optional[float]] = []
        for fault in faults:
            sub = group.where(fault=fault)
            row.append(finite_mean(_numbers(sub.column("jump_factor"))))
        series.append(Series(label=str(algorithm), y=row))
    return FigureSpec(
        name="fallback-jump",
        title="Error jump factor at the fault event",
        kind="bar",
        xlabel="fault scenario",
        ylabel="mean jump factor",
        categories=faults,
        series=series,
        ylog=True,
        caption=(
            "How far the max error jumps when the fault lands (post/pre "
            "ratio): PF re-pays its convergence, PCF stays near 1."
        ),
        paper_figure="Figs. 4 & 7",
    )


# ----------------------------------------------------------------------
# Dynamic-network figures (Minho papers; ROADMAP item 3 results section)
# ----------------------------------------------------------------------
@register_figure(
    "churn-grid",
    paper="new (Flow-Updating Meets Mass-Distribution, churn regime)",
    columns=("algorithm", "fault", "converged"),
)
def churn_grid(data: CampaignData) -> FigureSpec:
    """Convergence-fraction heatmap: algorithm x fault scenario."""
    ok = _require_ok(data, "churn-grid")
    algorithms = [str(a) for a in ok.unique("algorithm")]
    faults = _fault_order(ok)
    values: List[List[Optional[float]]] = []
    for algorithm in algorithms:
        row: List[Optional[float]] = []
        for fault in faults:
            sub = ok.where(algorithm=algorithm, fault=fault)
            if len(sub) == 0:
                row.append(None)
            else:
                conv = [bool(v) for v in sub.column("converged")]
                row.append(sum(conv) / len(conv))
        values.append(row)
    return FigureSpec(
        name="churn-grid",
        title="Convergence fraction under dynamic faults",
        kind="heatmap",
        xlabel="fault scenario",
        ylabel="algorithm",
        row_labels=algorithms,
        col_labels=faults,
        values=values,
        caption=(
            "Fraction of seeds that reached the campaign ε per "
            "(algorithm, fault) — the churn robustness gradient: push-sum "
            "loses departed mass, PCF keeps a residual, PF reconverges."
        ),
        paper_figure="new (churn grid)",
    )


@register_figure(
    "partition-heal-reconvergence",
    paper="new (Dependability in Aggregation by Averaging, partition-heal)",
    columns=("algorithm", "fault", "dynamics", "recovery_rounds", "recovered"),
)
def partition_heal_reconvergence(data: CampaignData) -> FigureSpec:
    """Reconvergence cost after dynamic-topology events, per algorithm."""
    ok = _require_ok(data, "partition-heal-reconvergence")
    dynamic = ok.filter(
        lambda r: r["dynamics"] is not None and r["event_round"] is not None
    )
    if len(dynamic) == 0:
        raise ExperimentError(
            "figure 'partition-heal-reconvergence': campaign has no "
            "dynamic-topology cells (churn/partition/regional_outage)"
        )
    faults = _fault_order(dynamic)
    algorithms = [str(a) for a in dynamic.unique("algorithm")]
    series = []
    for fault in faults:
        row: List[Optional[float]] = []
        for algorithm in algorithms:
            sub = dynamic.where(algorithm=algorithm, fault=fault)
            row.append(finite_mean(_numbers(sub.column("recovery_rounds"))))
        series.append(Series(label=fault, y=row))
    unrecovered = sum(
        1 for v in dynamic.column("recovered") if v is False
    )
    return FigureSpec(
        name="partition-heal-reconvergence",
        title="Reconvergence after dynamic-topology events",
        kind="bar",
        xlabel="algorithm",
        ylabel="mean rounds to regain accuracy (censored)",
        categories=algorithms,
        series=series,
        caption=(
            "Rounds from the last topology transition until pre-event "
            f"accuracy returns ({unrecovered} runs never reconverged and "
            "are censored at the remaining budget)."
        ),
        paper_figure="new (partition heal)",
    )


@register_figure(
    "mass-drift-floor",
    paper="new (finding F4: orphaned mass under churn)",
    columns=("algorithm", "fault", "mass_drift_floor"),
)
def mass_drift_floor(data: CampaignData) -> FigureSpec:
    """Persistent mass-conservation drift floor per algorithm x fault."""
    ok = _require_ok(data, "mass-drift-floor")
    faults = _fault_order(ok)
    floor = 1e-16  # display clamp so exact-zero drift renders on a log axis
    series = []
    for (algorithm,), group in ok.groupby("algorithm"):
        row: List[Optional[float]] = []
        for fault in faults:
            sub = group.where(fault=fault)
            drifts = [
                abs(v)
                for v in _numbers(sub.column("mass_drift_floor"))
                if math.isfinite(v)
            ]
            row.append(max(max(drifts), floor) if drifts else None)
        series.append(Series(label=str(algorithm), y=row))
    return FigureSpec(
        name="mass-drift-floor",
        title="Persistent mass-drift floor",
        kind="bar",
        xlabel="fault scenario",
        ylabel="worst |mass drift floor|",
        categories=faults,
        series=series,
        ylog=True,
        caption=(
            "Worst tail-minimum of global mass drift per scenario "
            "(crossing spikes self-heal; a floor above ~1e-12 is genuine "
            "mass loss — push-sum under loss/churn, PCF's orphaned "
            "cancelled flows)."
        ),
        paper_figure="new (mass drift)",
    )


# ----------------------------------------------------------------------
# Distribution + observability figures
# ----------------------------------------------------------------------
@register_figure(
    "final-error-cdf",
    paper="Figs. 3 & 6 (error distributions, CDF form)",
    columns=("algorithm", "final_error"),
)
def final_error_cdf(data: CampaignData) -> FigureSpec:
    """Empirical CDF of final errors, one curve per algorithm."""
    ok = _require_ok(data, "final-error-cdf")
    floor = 1e-17
    series = []
    for (algorithm,), group in ok.groupby("algorithm"):
        errors = sorted(
            max(v, floor)
            for v in _numbers(group.column("final_error"))
            if math.isfinite(v)
        )
        if not errors:
            continue
        n = len(errors)
        series.append(
            Series(
                label=str(algorithm),
                x=errors,
                y=[(i + 1) / n for i in range(n)],
            )
        )
    if not series:
        raise ExperimentError(
            "figure 'final-error-cdf': no finite final_error values"
        )
    return FigureSpec(
        name="final-error-cdf",
        title="Final-error distribution",
        kind="line",
        xlabel="final max error",
        ylabel="fraction of runs ≤ x",
        series=series,
        xlog=True,
        caption="Empirical CDF over every successful cell of the campaign.",
        paper_figure="Figs. 3 & 6",
    )


@register_figure(
    "cell-wall-time",
    paper="new (observability: campaign cost profile)",
    columns=("algorithm", "engine", "wall_s"),
)
def cell_wall_time(data: CampaignData) -> FigureSpec:
    """Mean per-cell wall time by algorithm and engine."""
    ok = _require_ok(data, "cell-wall-time")
    algorithms = [str(a) for a in ok.unique("algorithm")]
    series = []
    for (engine,), group in ok.groupby("engine"):
        row: List[Optional[float]] = []
        for algorithm in algorithms:
            sub = group.where(algorithm=algorithm)
            row.append(finite_mean(_numbers(sub.column("wall_s"))))
        series.append(Series(label=str(engine), y=row))
    return FigureSpec(
        name="cell-wall-time",
        title="Per-cell wall time",
        kind="bar",
        xlabel="algorithm",
        ylabel="mean wall seconds per cell",
        categories=algorithms,
        series=series,
        caption=(
            "Execution cost per campaign cell — the number that sets "
            "sweep throughput and the dashboard's ETA."
        ),
        paper_figure="new (cost profile)",
    )


@register_figure(
    "kernel-time",
    paper="new (observability: kernel cost profile)",
    columns=("algorithm", "engine", "backend", "kernel_seconds"),
)
def kernel_time(data: CampaignData) -> FigureSpec:
    """Mean fused round-kernel wall time by algorithm and engine/backend.

    Only the vectorized/batched engines have a fused kernel; object-engine
    campaigns have no finite ``kernel_seconds`` and raise the standard
    data-requirement :class:`ExperimentError` (listed, not rendered).
    """
    ok = _require_ok(data, "kernel-time")
    with_kernel = ok.filter(
        lambda r: isinstance(r["kernel_seconds"], (int, float))
        and math.isfinite(float(r["kernel_seconds"]))  # type: ignore[arg-type]
    )
    if not len(with_kernel):
        raise ExperimentError(
            "figure 'kernel-time': no finite kernel_seconds values "
            "(object-engine campaigns have no fused kernel)"
        )
    algorithms = [str(a) for a in with_kernel.unique("algorithm")]
    series = []
    for key, group in with_kernel.groupby("engine", "backend"):
        engine, backend = key
        label = f"{engine}/{backend}" if backend else str(engine)
        row: List[Optional[float]] = []
        for algorithm in algorithms:
            sub = group.where(algorithm=algorithm)
            row.append(finite_mean(_numbers(sub.column("kernel_seconds"))))
        series.append(Series(label=label, y=row))
    return FigureSpec(
        name="kernel-time",
        title="Fused kernel time per cell",
        kind="bar",
        xlabel="algorithm",
        ylabel="mean kernel seconds per cell",
        categories=algorithms,
        series=series,
        caption=(
            "Wall time spent inside the fused round kernel, amortized "
            "per cell — the compute floor under the wall-time profile, "
            "split by engine and resolved backend."
        ),
        paper_figure="new (kernel cost profile)",
    )


def generate_figure(name: str, data: CampaignData) -> FigureSpec:
    """Look up and run one registered generator."""
    if name not in FIGURES:
        raise ExperimentError(
            f"unknown figure {name!r}; registered: {sorted(FIGURES)}"
        )
    return FIGURES[name](data)
