"""Campaign analytics: dataframe layer, figure registry, dashboards.

Public surface of the analysis stack built on top of the sweep output
(``results.jsonl`` + ``campaign.json``):

- :mod:`repro.analysis.campaigns.frame` — the dependency-free columnar
  :class:`Frame` (pandas is an optional export target, never required).
- :mod:`repro.analysis.campaigns.loader` — schema-versioned loading of
  mixed-era result records into a :class:`CampaignData`.
- :mod:`repro.analysis.campaigns.summary` — scenario/coverage/progress
  aggregations shared by the text report, dashboard, and metrics export.
- :mod:`repro.analysis.campaigns.figures` — the named-figure registry
  (``FIGURES``) mapping figure names to spec generators.
- :mod:`repro.analysis.campaigns.render` — publication matplotlib theme
  plus the built-in pure-stdlib SVG renderer.
- :mod:`repro.analysis.campaigns.dashboard` — self-contained HTML
  dashboards per campaign directory.
- :mod:`repro.analysis.campaigns.export` — campaign aggregates through
  the telemetry Prometheus/JSONL/CSV exporters.
"""

from repro.analysis.campaigns.dashboard import build_dashboard, write_dashboard
from repro.analysis.campaigns.export import (
    campaign_metrics_registry,
    export_campaign_metrics,
)
from repro.analysis.campaigns.figures import (
    FIGURE_INFO,
    FIGURES,
    FigureSpec,
    Series,
    generate_figure,
)
from repro.analysis.campaigns.frame import Frame, pandas_available
from repro.analysis.campaigns.loader import (
    COLUMNS,
    SCHEMA_VERSION,
    CampaignData,
    load_campaign,
    load_records,
    normalize_record,
    record_era,
)
from repro.analysis.campaigns.render import (
    PALETTE,
    PUBLICATION_RC,
    matplotlib_available,
    render_figure,
    render_svg,
)
from repro.analysis.campaigns.summary import (
    SCENARIO_COLUMNS,
    alert_summary,
    coverage_summary,
    flight_dump_index,
    progress_stats,
    scenario_summary,
)

__all__ = [
    "COLUMNS",
    "FIGURE_INFO",
    "FIGURES",
    "PALETTE",
    "PUBLICATION_RC",
    "SCENARIO_COLUMNS",
    "SCHEMA_VERSION",
    "CampaignData",
    "FigureSpec",
    "Frame",
    "Series",
    "alert_summary",
    "build_dashboard",
    "campaign_metrics_registry",
    "coverage_summary",
    "export_campaign_metrics",
    "flight_dump_index",
    "generate_figure",
    "load_campaign",
    "load_records",
    "matplotlib_available",
    "normalize_record",
    "pandas_available",
    "progress_stats",
    "record_era",
    "render_figure",
    "render_svg",
    "scenario_summary",
    "write_dashboard",
]
