"""A small columnar table for campaign analytics.

Campaign analysis wants dataframe ergonomics — column selection, row
filtering, group-by aggregation — but the repo must stay runnable in a
bare NumPy environment. :class:`Frame` is a deliberately tiny columnar
container covering exactly the operations the analysis layer uses; when
pandas *is* installed, :meth:`Frame.to_pandas` hands the same columns to a
real ``DataFrame`` for ad-hoc exploration. Every summary number the
analysis layer reports is computed on :class:`Frame` itself, so results
are identical with and without pandas.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.exceptions import ExperimentError


def pandas_available() -> bool:
    """True when pandas can be imported (checked lazily, never required)."""
    try:
        import pandas  # noqa: F401
    except ImportError:
        return False
    return True


class Frame:
    """An ordered mapping of equally long columns.

    Columns are plain Python lists (records carry mixed types — strings,
    bools, floats, None), which keeps construction cheap for the tens of
    thousands of rows a large campaign produces while staying trivially
    serializable.
    """

    def __init__(self, columns: Dict[str, List[object]]) -> None:
        lengths = {name: len(values) for name, values in columns.items()}
        if len(set(lengths.values())) > 1:
            raise ExperimentError(
                f"frame columns have unequal lengths: {lengths}"
            )
        self._columns: Dict[str, List[object]] = dict(columns)
        self._length = next(iter(lengths.values()), 0)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Sequence[Dict[str, object]],
        columns: Optional[Sequence[str]] = None,
    ) -> "Frame":
        """Build from row dicts; missing keys become None.

        ``columns`` fixes the column set and order; by default it is the
        union of keys in first-seen order, so mixed-era record sets still
        produce one rectangular table.
        """
        if columns is None:
            seen: Dict[str, None] = {}
            for record in records:
                for key in record:
                    seen.setdefault(key, None)
            columns = list(seen)
        data: Dict[str, List[object]] = {
            name: [record.get(name) for record in records]
            for name in columns
        }
        return cls(data)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def columns(self) -> Tuple[str, ...]:
        return tuple(self._columns)

    def column(self, name: str) -> List[object]:
        if name not in self._columns:
            raise ExperimentError(
                f"frame has no column {name!r}; columns: {self.columns}"
            )
        return self._columns[name]

    def row(self, index: int) -> Dict[str, object]:
        return {name: values[index] for name, values in self._columns.items()}

    def rows(self) -> Iterator[Dict[str, object]]:
        for index in range(self._length):
            yield self.row(index)

    def unique(self, name: str) -> List[object]:
        """Distinct values of a column, sorted by string form (stable)."""
        return sorted(set(self.column(name)), key=str)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def select(self, *names: str) -> "Frame":
        return Frame({name: self.column(name) for name in names})

    def with_column(self, name: str, values: Sequence[object]) -> "Frame":
        if len(values) != self._length:
            raise ExperimentError(
                f"column {name!r} has {len(values)} values, frame has "
                f"{self._length} rows"
            )
        data = dict(self._columns)
        data[name] = list(values)
        return Frame(data)

    def filter(self, predicate: Callable[[Dict[str, object]], bool]) -> "Frame":
        keep = [i for i in range(self._length) if predicate(self.row(i))]
        return self._take(keep)

    def where(self, **equals: object) -> "Frame":
        """Rows where every named column equals the given value."""
        cols = {name: self.column(name) for name in equals}
        keep = [
            i
            for i in range(self._length)
            if all(cols[name][i] == value for name, value in equals.items())
        ]
        return self._take(keep)

    def sort_by(self, *names: str) -> "Frame":
        """Rows ordered by the string form of the named columns (total order
        over the mixed types a record column may hold)."""
        cols = [self.column(name) for name in names]
        order = sorted(
            range(self._length),
            key=lambda i: tuple(str(col[i]) for col in cols),
        )
        return self._take(order)

    def _take(self, indices: Sequence[int]) -> "Frame":
        return Frame(
            {
                name: [values[i] for i in indices]
                for name, values in self._columns.items()
            }
        )

    def groupby(
        self, *names: str
    ) -> List[Tuple[Tuple[object, ...], "Frame"]]:
        """Group rows by the named columns; groups sorted by key strings."""
        cols = [self.column(name) for name in names]
        groups: Dict[Tuple[object, ...], List[int]] = {}
        for i in range(self._length):
            key = tuple(col[i] for col in cols)
            groups.setdefault(key, []).append(i)
        ordered = sorted(groups, key=lambda key: tuple(str(k) for k in key))
        return [(key, self._take(groups[key])) for key in ordered]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        for row in zip(*self._columns.values()) if self._columns else ():
            writer.writerow(["" if v is None else v for v in row])
        return buf.getvalue()

    def to_pandas(self):
        """The same columns as a pandas DataFrame (optional dependency)."""
        try:
            import pandas
        except ImportError:
            raise ExperimentError(
                "pandas is not installed; Frame itself covers every "
                "aggregation the analysis layer performs — to_pandas is "
                "only for ad-hoc exploration"
            ) from None
        return pandas.DataFrame(self._columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frame({self._length} rows x {len(self._columns)} cols)"
