"""Campaign-level metrics export through the telemetry exporters.

Long-running sweeps need to be observable *while still in flight*:
:func:`campaign_metrics_registry` folds campaign aggregates (coverage,
alert totals, throughput/ETA, per-scenario accuracy) into the existing
:class:`~repro.telemetry.registry.MetricsRegistry`, so its JSONL / CSV /
Prometheus exporters serve campaign progress exactly like per-run
telemetry. The runner re-exports into ``<out>/metrics/`` on an interval
as records land; point a Prometheus file scraper (or ``watch cat``) at
``metrics.prom`` to follow a million-cell sweep live.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Union

from repro.analysis.campaigns.frame import Frame
from repro.analysis.campaigns.loader import (
    CampaignData,
    expected_cell_count,
    load_campaign,
    normalize_record,
)
from repro.analysis.campaigns.summary import (
    alert_summary,
    coverage_summary,
    progress_stats,
    scenario_summary,
)
from repro.telemetry.registry import MetricsRegistry


def campaign_metrics_registry(data: CampaignData) -> MetricsRegistry:
    """Aggregate a loaded campaign into a metrics registry."""
    registry = MetricsRegistry()
    coverage = coverage_summary(data)
    cells = registry.gauge(
        "campaign_cells", "campaign cells by status (expected/recorded/ok/failed)"
    )
    for key in ("expected", "recorded", "ok", "failed", "missing", "duplicates"):
        value = coverage.get(key)
        if value is not None:
            cells.set(float(value), status=key, campaign=data.name)
    # Counter twin of campaign_cells{status="recorded"}: scrapers watching
    # a live sweep can assert/alert on monotone progress without gauge
    # reset heuristics.
    registry.counter(
        "campaign_cells_total", "cells recorded so far"
    ).inc(float(len(data.frame)), campaign=data.name)

    progress = progress_stats(data)
    gauges = {
        "campaign_progress_fraction": (
            None
            if not coverage["expected"]
            else coverage["recorded"] / coverage["expected"]
        ),
        "campaign_cells_per_sec": progress.get("cells_per_sec"),
        "campaign_eta_seconds": progress.get("eta_s"),
        "campaign_mean_cell_wall_seconds": progress.get("mean_wall_s"),
        "campaign_elapsed_seconds": progress.get("elapsed_s"),
    }
    for name, value in gauges.items():
        if value is not None:
            registry.gauge(name).set(float(value), campaign=data.name)

    alerts = registry.counter(
        "campaign_alerts_total", "anomaly-detector alerts across all cells"
    )
    for row in alert_summary(data.frame).rows():
        alerts.inc(
            float(row["alerts"]),  # type: ignore[arg-type]
            detector=str(row["detector"]),
            campaign=data.name,
        )
    dumps_total = sum(
        v
        for v in data.frame.column("n_flight_dumps")
        if isinstance(v, (int, float))
    )
    registry.counter(
        "campaign_flight_dumps_total", "black-box dumps across all cells"
    ).inc(float(dumps_total), campaign=data.name)

    converged = registry.gauge(
        "campaign_scenario_converged_runs", "converged seeds per scenario"
    )
    error = registry.gauge(
        "campaign_scenario_median_final_error",
        "median final max error per scenario",
    )
    recovery = registry.gauge(
        "campaign_scenario_mean_recovery_rounds",
        "censored mean recovery rounds per scenario",
    )
    for row in scenario_summary(data.ok).rows():
        labels = {
            "algorithm": str(row["algorithm"]),
            "topology": str(row["topology"]),
            "fault": str(row["fault"]),
        }
        k = str(row["converged"]).partition("/")[0]
        converged.set(float(k or 0), **labels)
        if row["median_final_error"] is not None:
            error.set(float(row["median_final_error"]), **labels)  # type: ignore[arg-type]
        if row["mean_recovery_rounds"] is not None:
            recovery.set(float(row["mean_recovery_rounds"]), **labels)  # type: ignore[arg-type]

    wall = registry.histogram(
        "campaign_cell_wall_seconds", "per-cell wall time distribution"
    )
    for value in data.frame.column("wall_s"):
        if isinstance(value, (int, float)):
            wall.observe(float(value), campaign=data.name)
    return registry


def export_campaign_metrics(
    directory: Union[str, pathlib.Path],
    out_dir: Optional[Union[str, pathlib.Path]] = None,
) -> pathlib.Path:
    """Load a campaign directory and dump metrics.{jsonl,csv,prom}."""
    data = load_campaign(directory)
    target = (
        pathlib.Path(out_dir)
        if out_dir is not None
        else data.directory / "metrics"
    )
    return campaign_metrics_registry(data).dump(target)


def export_records_metrics(
    records: List[Dict[str, object]],
    *,
    name: str,
    spec: Optional[Dict[str, object]],
    out_dir: Union[str, pathlib.Path],
    extra: Optional[Dict[str, object]] = None,
) -> pathlib.Path:
    """In-flight export for the runner: raw record dicts -> metrics dump.

    The runner holds the records it has appended so far in memory; this
    avoids re-reading results.jsonl on every export tick. ``extra`` is an
    optional :meth:`MetricsRegistry.snapshot` dict (the runner's merged
    worker registries: engine counters, detector alerts, kernel-time
    histograms) folded into the dump alongside the campaign aggregates.
    """
    frame = Frame.from_records(
        [normalize_record(dict(r)) for r in records],
    )
    data = CampaignData(
        directory=pathlib.Path(out_dir),
        frame=frame,
        spec=spec if spec is not None else {"name": name},
        expected_cells=expected_cell_count(spec),
        duplicates=0,
        skipped_lines=0,
    )
    registry = campaign_metrics_registry(data)
    if extra:
        registry.merge(extra)
    return registry.dump(out_dir)
