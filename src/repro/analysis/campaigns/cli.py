"""CLI: ``python -m repro.experiments analyze <campaign-dir>``.

Loads a campaign's ``results.jsonl``, prints the coverage / progress /
scenario summary, regenerates every registered figure (or a ``--figures``
subset) into ``<out>/``, writes the self-contained HTML dashboard, and
exports campaign-level metrics. Any registered figure that fails to
render makes the exit code 1 — the CI analyze-smoke job keys on that.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Dict, List, Optional

from repro.analysis.campaigns.dashboard import build_dashboard
from repro.analysis.campaigns.figures import FIGURE_INFO, FIGURES
from repro.analysis.campaigns.loader import load_campaign
from repro.analysis.campaigns.render import (
    matplotlib_available,
    render_figure,
    render_svg,
)
from repro.analysis.campaigns.summary import (
    SCENARIO_COLUMNS,
    coverage_summary,
    progress_lines,
    progress_stats,
    scenario_summary,
)
from repro.exceptions import ExperimentError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments analyze",
        description=(
            "Analyze a campaign result directory: summary tables, "
            "regenerated figures, HTML dashboard, metrics export."
        ),
    )
    parser.add_argument("path", nargs="?", help="campaign output directory")
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="analysis output directory (default: <path>/analysis)",
    )
    parser.add_argument(
        "--figures",
        metavar="NAMES",
        default=None,
        help=(
            "comma-separated figure names to regenerate "
            "(default: every registered figure)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("auto", "svg", "png"),
        default="auto",
        help=(
            "figure file format: auto prefers matplotlib PNG and falls "
            "back to the built-in SVG renderer (default: auto)"
        ),
    )
    parser.add_argument(
        "--no-dashboard",
        action="store_true",
        help="skip writing the HTML dashboard",
    )
    parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="skip the campaign metrics export",
    )
    parser.add_argument(
        "--allow-missing-data",
        action="store_true",
        help=(
            "exit 0 even when some registered figures cannot be produced "
            "from this campaign's data (they are listed either way)"
        ),
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="also write cells.csv and scenarios.csv next to the figures",
    )
    parser.add_argument(
        "--list-figures",
        action="store_true",
        help="list the registered figures and exit",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary tables"
    )
    return parser


def _list_figures() -> str:
    lines = ["Registered figures (name — reproduces — source columns):"]
    for name in FIGURES:
        paper, columns = FIGURE_INFO[name]
        lines.append(f"  {name:28s} {paper} [{', '.join(columns)}]")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_figures:
        print(_list_figures())
        return 0
    if args.path is None:
        parser.error("a campaign directory is required (or --list-figures)")

    directory = pathlib.Path(args.path)
    try:
        data = load_campaign(directory)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    out_dir = pathlib.Path(args.out) if args.out else directory / "analysis"
    out_dir.mkdir(parents=True, exist_ok=True)

    wanted = (
        [name.strip() for name in args.figures.split(",") if name.strip()]
        if args.figures is not None
        else list(FIGURES)
    )
    unknown = sorted(set(wanted) - set(FIGURES))
    if unknown:
        print(
            f"error: unknown figure(s) {unknown}; registered: "
            f"{sorted(FIGURES)}",
            file=sys.stderr,
        )
        return 2

    say = (lambda _msg: None) if args.quiet else print
    say(f"Campaign analysis — {data.name} ({directory})")
    coverage = coverage_summary(data)
    say(
        "coverage: "
        + ", ".join(f"{k}={v}" for k, v in coverage.items() if v is not None)
    )
    for line in progress_lines(progress_stats(data)):
        say("progress: " + line)
    scenarios = scenario_summary(data.ok)
    if not args.quiet and len(scenarios):
        from repro.experiments.tables import render_table

        say("")
        say(
            render_table(
                SCENARIO_COLUMNS,
                [[row[c] for c in SCENARIO_COLUMNS] for row in scenarios.rows()],
            )
        )
        say("")

    # Figures ------------------------------------------------------------
    svgs: Dict[str, str] = {}
    errors: Dict[str, str] = {}
    for name in wanted:
        try:
            spec = FIGURES[name](data)
            path = render_figure(spec, out_dir, fmt=args.format)
            svgs[name] = render_svg(spec)  # dashboard always embeds SVG
            say(f"figure {name}: {path}")
        except ExperimentError as exc:
            errors[name] = str(exc)
            print(f"figure {name}: NOT RENDERED — {exc}", file=sys.stderr)

    if args.csv:
        (out_dir / "cells.csv").write_text(data.frame.to_csv())
        (out_dir / "scenarios.csv").write_text(scenarios.to_csv())
        say(f"tables: {out_dir / 'cells.csv'}, {out_dir / 'scenarios.csv'}")

    if not args.no_dashboard:
        dashboard_path = out_dir / "dashboard.html"
        dashboard_path.write_text(
            build_dashboard(
                data,
                figure_svgs=svgs,
                figure_errors=errors,
                base_dir=out_dir,
            )
        )
        say(f"dashboard: {dashboard_path}")

    if not args.no_metrics:
        from repro.analysis.campaigns.export import campaign_metrics_registry

        metrics_dir = campaign_metrics_registry(data).dump(out_dir / "metrics")
        say(f"metrics: {metrics_dir} (jsonl/csv/prom)")

    if errors and not args.allow_missing_data:
        print(
            f"error: {len(errors)} registered figure(s) failed to render: "
            f"{sorted(errors)}",
            file=sys.stderr,
        )
        return 1
    if not matplotlib_available() and args.format == "auto":
        say(
            "note: matplotlib not installed — figures rendered with the "
            "built-in SVG backend"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
