"""Self-contained HTML summary dashboard for one campaign directory.

One file, no external assets: inline CSS, inline (built-in renderer) SVG
figures, and plain tables. Sections: header with the campaign spec,
coverage + live-progress tiles (throughput/ETA from record timestamps),
the scenario summary, every registered figure that renders from this
campaign's data, anomaly-alert totals with per-cell drill-down, flight
dump links, and the failure table.
"""

from __future__ import annotations

import html
import os
import pathlib
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis.campaigns.figures import FIGURES
from repro.analysis.campaigns.frame import Frame
from repro.analysis.campaigns.loader import CampaignData, load_campaign
from repro.analysis.campaigns.render import render_svg
from repro.analysis.campaigns.summary import (
    SCENARIO_COLUMNS,
    alert_summary,
    coverage_summary,
    flight_dump_index,
    progress_stats,
    scenario_summary,
)
from repro.exceptions import ExperimentError

_CSS = """
body { font-family: Georgia, 'Times New Roman', serif; margin: 2rem auto;
       max-width: 72rem; color: #1a1a1a; padding: 0 1rem; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #0072B2; padding-bottom: .3rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; color: #0b3d61; }
table { border-collapse: collapse; margin: .8rem 0; font-size: .85rem; }
th, td { border: 1px solid #ccc; padding: .25rem .6rem; text-align: left; }
th { background: #eef4f9; }
tr:nth-child(even) td { background: #fafafa; }
.tiles { display: flex; flex-wrap: wrap; gap: .8rem; margin: 1rem 0; }
.tile { border: 1px solid #ccc; border-radius: 6px; padding: .6rem 1rem;
        min-width: 8rem; background: #fafcfe; }
.tile .value { font-size: 1.4rem; font-weight: bold; color: #0b3d61; }
.tile .label { font-size: .75rem; color: #555; }
.figure { margin: 1.2rem 0; }
.figure .caption { font-size: .8rem; color: #555; max-width: 42rem; }
.warn { color: #b00020; font-weight: bold; }
.ok { color: #007020; }
code { font-family: monospace; background: #f4f4f4; padding: 0 .25rem; }
footer { margin-top: 2.5rem; font-size: .75rem; color: #888; }
"""


def _esc(value: object) -> str:
    return html.escape("-" if value is None else str(value))


def _fmt_number(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        from repro.experiments.tables import format_cell

        return format_cell(value)
    return str(value)


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    parts = ["<table><thead><tr>"]
    parts.extend(f"<th>{_esc(h)}</th>" for h in headers)
    parts.append("</tr></thead><tbody>")
    for row in rows:
        parts.append("<tr>")
        parts.extend(f"<td>{_esc(_fmt_number(cell))}</td>" for cell in row)
        parts.append("</tr>")
    parts.append("</tbody></table>")
    return "".join(parts)


def _frame_table(frame: Frame, columns: Sequence[str]) -> str:
    rows = [[row[c] for c in columns] for row in frame.rows()]
    return _table(columns, rows)


def _tile(label: str, value: object, *, warn: bool = False) -> str:
    cls = "value warn" if warn else "value"
    return (
        f'<div class="tile"><div class="{cls}">{_esc(_fmt_number(value))}'
        f'</div><div class="label">{_esc(label)}</div></div>'
    )


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 3600:
        return f"{value / 3600:.1f} h"
    if value >= 120:
        return f"{value / 60:.1f} min"
    return f"{value:.3g} s"


def _spec_block(data: CampaignData) -> str:
    if not data.spec:
        return "<p>No <code>campaign.json</code> found next to the results.</p>"
    spec = data.spec
    axes = [
        ("algorithms", spec.get("algorithms")),
        ("topologies", spec.get("topologies")),
        ("faults", [f.get("name", f) for f in spec.get("faults", [])
                    if isinstance(f, dict)] or spec.get("faults")),
        ("seeds", spec.get("seeds")),
    ]
    rows = [[axis, _esc(value)] for axis, value in axes]
    rows.extend(
        [key, spec.get(key)]
        for key in ("rounds", "epsilon", "engine", "aggregate", "data")
        if key in spec
    )
    return _table(["axis / key", "value"], rows)


def _relative_link(target: str, base: pathlib.Path) -> str:
    """Link text for a flight dump: relative to the dashboard when possible."""
    try:
        return os.path.relpath(target, base)
    except ValueError:  # different drive (Windows)
        return target


def build_dashboard(
    data: CampaignData,
    *,
    figure_svgs: Optional[Dict[str, str]] = None,
    figure_errors: Optional[Dict[str, str]] = None,
    base_dir: Optional[pathlib.Path] = None,
    auto_refresh_s: Optional[int] = None,
) -> str:
    """Assemble the dashboard HTML for a loaded campaign.

    ``figure_svgs`` maps figure name -> inline SVG markup; when omitted,
    every registered figure is generated and rendered here (generators
    whose data requirements the campaign cannot meet are listed with
    their reason instead — mirroring ``figure_errors`` from the CLI).
    ``auto_refresh_s`` adds a meta-refresh tag: the live metrics server
    sets it so a browser tab follows an in-flight sweep.
    """
    base = base_dir or data.directory
    if figure_svgs is None:
        figure_svgs = {}
        figure_errors = dict(figure_errors or {})
        for name, generator in FIGURES.items():
            try:
                figure_svgs[name] = render_svg(generator(data))
            except ExperimentError as exc:
                figure_errors[name] = str(exc)
    else:
        figure_errors = dict(figure_errors or {})

    coverage = coverage_summary(data)
    progress = progress_stats(data)
    scenarios = scenario_summary(data.ok)
    alerts = alert_summary(data.frame)
    dumps = flight_dump_index(data.frame)
    failed = data.failed

    out: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
    ]
    if auto_refresh_s is not None:
        out.append(
            f'<meta http-equiv="refresh" content="{int(auto_refresh_s)}">'
        )
    out += [
        f"<title>Campaign — {_esc(data.name)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Campaign dashboard — {_esc(data.name)}</h1>",
        f"<p>Source: <code>{_esc(data.directory)}</code> · schema v"
        f"{data.schema_version}</p>",
    ]

    # Coverage + progress tiles -------------------------------------------
    out.append("<h2>Coverage &amp; progress</h2>")
    out.append('<div class="tiles">')
    out.append(_tile("expected cells", coverage["expected"]))
    out.append(_tile("recorded", coverage["recorded"]))
    out.append(_tile("ok", coverage["ok"]))
    out.append(
        _tile("failed", coverage["failed"], warn=bool(coverage["failed"]))
    )
    if coverage["missing"]:
        out.append(_tile("missing", coverage["missing"], warn=True))
    if coverage["duplicates"]:
        out.append(_tile("resume-shadowed", coverage["duplicates"]))
    alerts_total = sum(
        v for v in data.frame.column("alerts_total")
        if isinstance(v, (int, float))
    )
    out.append(_tile("anomaly alerts", alerts_total, warn=alerts_total > 0))
    out.append(_tile("flight dumps", len(dumps), warn=len(dumps) > 0))
    out.append("</div>")
    out.append('<div class="tiles">')
    out.append(
        _tile("mean wall / cell", _fmt_seconds(progress.get("mean_wall_s")))
    )
    cps = progress.get("cells_per_sec")
    out.append(
        _tile("throughput", f"{cps:.3g} cells/s" if cps else "-")
    )
    out.append(_tile("elapsed", _fmt_seconds(progress.get("elapsed_s"))))
    out.append(_tile("ETA (remaining)", _fmt_seconds(progress.get("eta_s"))))
    out.append("</div>")

    # Spec ----------------------------------------------------------------
    out.append("<h2>Campaign spec</h2>")
    out.append(_spec_block(data))

    # Scenario summary ----------------------------------------------------
    out.append("<h2>Scenario summary</h2>")
    if len(scenarios):
        out.append(_frame_table(scenarios, SCENARIO_COLUMNS))
    else:
        out.append("<p>No successful cells recorded yet.</p>")

    # Figures -------------------------------------------------------------
    out.append("<h2>Figures</h2>")
    for name in FIGURES:
        if name in figure_svgs:
            out.append(f'<div class="figure" id="fig-{_esc(name)}">')
            out.append(figure_svgs[name])
            out.append("</div>")
        elif name in figure_errors:
            out.append(
                f'<p id="fig-{_esc(name)}">figure <code>{_esc(name)}</code> '
                f"not rendered: {_esc(figure_errors[name])}</p>"
            )

    # Alerts --------------------------------------------------------------
    out.append("<h2>Anomaly alerts</h2>")
    if len(alerts):
        out.append(_frame_table(alerts, ("detector", "alerts", "cells")))
        alert_cells = data.frame.filter(
            lambda r: bool(r["alerts_total"])
        )
        rows = [
            [r["cell_id"], r["alerts_total"],
             ", ".join(f"{k}={v}" for k, v in sorted(r["alerts"].items()))]
            for r in alert_cells.rows()
        ]
        out.append(_table(["cell", "alerts", "by detector"], rows))
    else:
        out.append('<p class="ok">No anomaly-detector alerts.</p>')

    # Flight dumps --------------------------------------------------------
    out.append("<h2>Flight-recorder dumps</h2>")
    if dumps:
        rows = []
        for entry in dumps:
            links = ", ".join(
                f'<a href="{html.escape(_relative_link(p, base), quote=True)}">'
                f"{_esc(pathlib.Path(p).name)}</a>"
                for p in entry["flight_dumps"]  # type: ignore[union-attr]
            )
            rows.append(
                f"<tr><td>{_esc(entry['cell_id'])}</td>"
                f"<td>{_esc(entry['status'])}</td><td>{links}</td></tr>"
            )
        out.append(
            "<table><thead><tr><th>cell</th><th>status</th>"
            "<th>black-box dumps</th></tr></thead><tbody>"
            + "".join(rows)
            + "</tbody></table>"
        )
    else:
        out.append('<p class="ok">No black-box dumps were written.</p>')

    # Failures ------------------------------------------------------------
    out.append("<h2>Failures</h2>")
    if len(failed):
        rows = [
            [r["cell_id"], r["attempts"], r["error"]]
            for r in failed.sort_by("cell_id").rows()
        ]
        out.append(_table(["cell", "attempts", "error"], rows))
    else:
        out.append('<p class="ok">Every recorded cell succeeded.</p>')

    out.append(
        "<footer>Generated by <code>python -m repro.experiments analyze"
        "</code> — repro campaign analytics.</footer>"
    )
    out.append("</body></html>")
    return "\n".join(out)


def write_dashboard(
    directory: Union[str, pathlib.Path],
    out_path: Optional[Union[str, pathlib.Path]] = None,
    *,
    figure_svgs: Optional[Dict[str, str]] = None,
    figure_errors: Optional[Dict[str, str]] = None,
) -> pathlib.Path:
    """Load a campaign directory and write its dashboard HTML."""
    data = load_campaign(directory)
    out_path = (
        pathlib.Path(out_path)
        if out_path is not None
        else data.directory / "dashboard.html"
    )
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(
        build_dashboard(
            data,
            figure_svgs=figure_svgs,
            figure_errors=figure_errors,
            base_dir=out_path.parent,
        )
    )
    return out_path
