"""Empirical convergence-rate estimation and theory comparison.

The paper's complexity claim — ``O(log n + log 1/eps)`` rounds on networks
admitting fast reductions — rests on the geometric decay of the gossip
error. These helpers fit the decay rate of a recorded error series and
compare it against the spectral-gap prediction of the topology, giving the
experiments a quantitative handle on "converges as fast as theory says".
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.topology.base import Topology
from repro.topology.properties import spectral_gap


@dataclasses.dataclass(frozen=True)
class RateFit:
    """Log-linear fit ``error(t) ~ C * rate^t`` over a series segment."""

    rate: float  # per-round error contraction factor (0 < rate < 1 is decay)
    log10_intercept: float
    rounds_used: int
    residual: float  # RMS residual of the fit in log10 space

    @property
    def rounds_per_decade(self) -> float:
        """Rounds needed to gain one decimal digit of accuracy."""
        if self.rate >= 1.0:
            return math.inf
        return -1.0 / math.log10(self.rate)

    def rounds_to(self, target: float, *, start: float = 1.0) -> float:
        """Predicted rounds to contract the error from ``start`` to ``target``."""
        if not 0 < target < start:
            raise ConfigurationError(
                f"need 0 < target < start, got target={target}, start={start}"
            )
        if self.rate >= 1.0:
            return math.inf
        return math.log(target / start) / math.log(self.rate)


def fit_decay_rate(
    errors: Sequence[float],
    *,
    skip: int = 10,
    floor: float = 1e-15,
) -> RateFit:
    """Fit the geometric decay rate of an error series.

    ``skip`` drops the initial transient; samples at/below ``floor`` (the
    converged plateau) are excluded so the fit captures the decay phase.
    """
    if len(errors) - skip < 4:
        raise ConfigurationError(
            f"need at least {skip + 4} samples, got {len(errors)}"
        )
    rounds = []
    logs = []
    for t in range(skip, len(errors)):
        err = errors[t]
        if err > floor and math.isfinite(err) and err > 0:
            rounds.append(t)
            logs.append(math.log10(err))
    if len(rounds) < 4:
        raise ConfigurationError(
            "fewer than 4 usable samples above the floor; lower `floor` or "
            "shorten the run"
        )
    slope, intercept = np.polyfit(rounds, logs, 1)
    predicted = np.polyval([slope, intercept], rounds)
    residual = float(np.sqrt(np.mean((np.asarray(logs) - predicted) ** 2)))
    return RateFit(
        rate=float(10.0 ** slope),
        log10_intercept=float(intercept),
        rounds_used=len(rounds),
        residual=residual,
    )


def spectral_rate_bound(topology: Topology) -> float:
    """Per-round contraction factor predicted by the spectral gap.

    For averaging dynamics driven by a doubly stochastic diffusion with
    second eigenvalue ``lambda_2``, the error contracts per round like
    ``lambda_2`` (Boyd et al. [5] up to constants); we use the Metropolis
    matrix of the topology as the reference diffusion.
    """
    gap = spectral_gap(topology)
    return float(max(0.0, min(1.0, 1.0 - gap)))


def predicted_rounds(
    topology: Topology, epsilon: float, *, safety: float = 4.0
) -> int:
    """A-priori round budget from the spectral bound, with a safety factor.

    Gossip (one random neighbor per node per round) mixes slower than the
    full diffusion the bound describes; ``safety`` absorbs the gap.
    """
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    rate = spectral_rate_bound(topology)
    if rate >= 1.0:
        raise ConfigurationError("topology does not mix (rate >= 1)")
    if rate <= 0.0:
        return 1
    rounds = math.log(epsilon) / math.log(rate)
    return int(math.ceil(safety * rounds)) + 1


def compare_to_theory(
    errors: Sequence[float], topology: Topology, **fit_kwargs
) -> dict:
    """Fit the measured rate and relate it to the spectral prediction."""
    fit = fit_decay_rate(errors, **fit_kwargs)
    bound = spectral_rate_bound(topology)
    return {
        "measured_rate": fit.rate,
        "spectral_rate_bound": bound,
        "measured_rounds_per_decade": fit.rounds_per_decade,
        "bound_rounds_per_decade": (
            -1.0 / math.log10(bound) if 0 < bound < 1 else math.inf
        ),
        "fit_residual": fit.residual,
    }
