"""Analytic equilibrium flows on tree topologies.

On a tree, the net flow an edge must carry to equalize the system is
*unique*: cutting the edge splits the tree in two, and the flow equals the
mass surplus of one side. This generalizes the paper's bus case study
(Sec. II-B / Fig. 2) — where the flows come out as ``f_{i,i+1} = n - i`` —
to arbitrary trees, and powers exact tests of PF's converged state.

With weights simulated, PF's fixed points form a family (every node ends
at the estimate pair ``(r * c_i, c_i)`` for execution-dependent ``c_i``),
but the *target-adjusted* flow

    g(u, v) = f_{u,v}.value - r * f_{u,v}.weight

is invariant across the family and must equal the analytic subtree surplus
exactly — see ``tests/integration/test_bus_equilibrium.py`` for the bus
instance.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import TopologyError
from repro.topology.base import Topology


def is_tree(topology: Topology) -> bool:
    """A connected graph is a tree iff it has n - 1 edges."""
    return topology.num_edges == topology.n - 1


def subtree_nodes(
    topology: Topology, root_side: int, cut_edge: Tuple[int, int]
) -> List[int]:
    """Nodes on ``root_side``'s side of the tree after cutting ``cut_edge``."""
    u, v = cut_edge
    if not topology.has_edge(u, v):
        raise TopologyError(f"edge {cut_edge} not in topology")
    if root_side not in (u, v):
        raise TopologyError(f"root_side {root_side} is not an endpoint of {cut_edge}")
    other = v if root_side == u else u
    seen = {root_side}
    stack = [root_side]
    while stack:
        node = stack.pop()
        for nbr in topology.neighbors(node):
            if (node, nbr) in ((u, v), (v, u)):
                continue
            if nbr not in seen:
                seen.add(nbr)
                stack.append(nbr)
    if other in seen:
        raise TopologyError(
            f"cutting {cut_edge} does not disconnect the graph; not a tree"
        )
    return sorted(seen)


def equilibrium_flows(
    topology: Topology,
    data: Sequence[float],
    weights: Sequence[float],
) -> Dict[Tuple[int, int], float]:
    """Target-adjusted equilibrium flow for every directed tree edge.

    Returns ``g(u, v)`` for every ordered edge: the mass surplus
    ``sum_{i in side(u)} (x_i - r * w_i)`` of ``u``'s side, where ``r`` is
    the global aggregate. Antisymmetric by construction
    (``g(u, v) = -g(v, u)``).
    """
    if not is_tree(topology):
        raise TopologyError(
            "equilibrium flows are only unique on trees "
            f"({topology.name!r} has {topology.num_edges} edges for "
            f"{topology.n} nodes)"
        )
    if len(data) != topology.n or len(weights) != topology.n:
        raise TopologyError("data/weights must have one entry per node")
    total_w = math.fsum(weights)
    if total_w <= 0:
        raise TopologyError("total weight must be positive")
    aggregate = math.fsum(data) / total_w

    flows: Dict[Tuple[int, int], float] = {}
    for (u, v) in topology.edges:
        side_u = subtree_nodes(topology, u, (u, v))
        surplus = math.fsum(
            data[i] - aggregate * weights[i] for i in side_u
        )
        flows[(u, v)] = surplus
        flows[(v, u)] = -surplus
    return flows


def max_equilibrium_flow(
    topology: Topology, data: Sequence[float], weights: Sequence[float]
) -> float:
    """Largest |equilibrium flow| — the quantity that dooms PF's accuracy.

    For the paper's bus workload this is ``n - 1``; for a star with the
    surplus at the hub it is O(1) per edge; the topology and data placement
    jointly decide how hard PF's cancellation problem bites.
    """
    flows = equilibrium_flows(topology, data, weights)
    return max(abs(value) for value in flows.values()) if flows else 0.0
