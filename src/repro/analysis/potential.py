"""Potential-function diagnostics for gossip convergence.

Kempe et al. analyze push-sum through a quadratic potential that contracts
geometrically in expectation. This module provides the analogous measured
quantities for any of the protocols here, as an engine observer:

- the **disagreement potential**: the weighted variance of the per-node
  estimates around the true aggregate, the quantity whose geometric decay
  underlies the O(log 1/eps) term;
- the **weight dispersion**: how unevenly the normalization mass is spread
  (push-style protocols have heavy-tailed weight fluctuations, which set
  the transient error floor of the flow algorithms — cf. EXPERIMENTS.md).

These are *global* oracle quantities for analysis; the nodes themselves
never see them.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List

import numpy as np

from repro.simulation.observers import Observer

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.engine import SynchronousEngine


def disagreement_potential(estimates: List[float], truth: float) -> float:
    """Mean squared relative deviation of the estimates from the truth."""
    if not estimates:
        raise ValueError("no estimates")
    scale = abs(truth) if truth != 0 else 1.0
    arr = np.asarray(estimates, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        return float("inf")
    return float(np.mean(((arr - truth) / scale) ** 2))


def weight_dispersion(weights: List[float]) -> float:
    """Coefficient of variation of the per-node weight estimates."""
    arr = np.asarray(weights, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("no weights")
    mean = float(np.mean(arr))
    if mean == 0.0:
        return float("inf")
    return float(np.std(arr) / abs(mean))


class PotentialHistory(Observer):
    """Records the disagreement potential and weight dispersion per round."""

    def __init__(self, truth: float) -> None:
        self._truth = float(truth)
        self.potentials: List[float] = []
        self.weight_dispersions: List[float] = []

    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        live = engine.live_nodes()
        pairs = [engine.algorithms[i].estimate_pair() for i in live]
        estimates = [float(np.atleast_1d(p.ratio())[0]) for p in pairs]
        weights = [p.weight for p in pairs]
        self.potentials.append(disagreement_potential(estimates, self._truth))
        self.weight_dispersions.append(weight_dispersion(weights))

    def contraction_factors(self, *, skip: int = 5) -> List[float]:
        """Per-round potential ratios (values < 1 are contraction)."""
        factors = []
        for prev, curr in zip(
            self.potentials[skip:], self.potentials[skip + 1 :]
        ):
            if prev > 0 and math.isfinite(prev) and math.isfinite(curr):
                factors.append(curr / prev)
        return factors
