"""Convergence analysis: rate fits, spectral bounds, potentials, tree flows."""

from repro.analysis.potential import (
    PotentialHistory,
    disagreement_potential,
    weight_dispersion,
)
from repro.analysis.rates import (
    RateFit,
    compare_to_theory,
    fit_decay_rate,
    predicted_rounds,
    spectral_rate_bound,
)
from repro.analysis.tree_flows import (
    equilibrium_flows,
    is_tree,
    max_equilibrium_flow,
    subtree_nodes,
)

__all__ = [
    "RateFit",
    "fit_decay_rate",
    "spectral_rate_bound",
    "predicted_rounds",
    "compare_to_theory",
    "PotentialHistory",
    "disagreement_potential",
    "weight_dispersion",
    "equilibrium_flows",
    "max_equilibrium_flow",
    "subtree_nodes",
    "is_tree",
]
