"""Live observability plane: a dependency-free HTTP metrics server.

The paper's evaluation hinges on watching failure signatures *during* a
run (Figs. 2-4: flow blow-up, restart regressions), but the telemetry
stack was purely post-hoc and file-based. :class:`MetricsServer` is a
stdlib :class:`~http.server.ThreadingHTTPServer` on a daemon thread that
serves a campaign — in flight or finished — over five endpoints:

- ``GET /metrics``   Prometheus text: the campaign aggregates
  (``campaign_*``) merged with the live worker registries (engine
  counters, detector alerts, kernel-time histograms);
- ``GET /healthz``   JSON liveness: ``ok``, or ``degraded`` while
  in-flight metric exports have failed;
- ``GET /progress``  JSON: cells done/total, throughput, ETA and
  per-scenario coverage via the analysis summary aggregations;
- ``GET /alerts``    JSON: per-detector alert totals + flight-dump paths;
- ``GET /dashboard`` the self-contained HTML dashboard, regenerated on
  demand with a meta-refresh so a browser tab follows the sweep.

Two sources feed it: :class:`CampaignLiveSource` (attached by
``run_campaign(metrics_port=...)`` to the in-memory record stream and
the parent's merged registry) and :class:`DirectorySource` (post-hoc:
``python -m repro.experiments serve <dir>`` re-reads results.jsonl per
request, so a finished — or still-appending — directory serves the same
endpoints). Analysis imports are lazy and per-request: this module must
stay importable from the runner without the analytics stack loaded.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Union

from repro.exceptions import ExperimentError
from repro.telemetry.registry import MetricsRegistry

#: Seconds between dashboard auto-refreshes when served live.
DASHBOARD_REFRESH_S = 5


def _jsonable(value: object) -> object:
    """Recursively replace non-finite floats with None (strict JSON)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class CampaignLiveSource:
    """Serves a campaign straight from the runner's in-memory state.

    ``add_record`` is called from the runner loop; every endpoint builds
    a fresh :class:`CampaignData` from the records seen so far, so the
    live numbers are computed by exactly the same summary code the
    post-hoc ``repro.analysis`` CLI uses. Thread-safe: the HTTP handlers
    run on server threads while the runner keeps appending.
    """

    def __init__(
        self,
        *,
        name: str,
        spec: Optional[Dict[str, object]],
        out_dir: Union[str, pathlib.Path],
        registry: MetricsRegistry,
    ) -> None:
        self.name = name
        self._spec = spec
        self._out_dir = pathlib.Path(out_dir)
        self._registry = registry
        self._records: List[Dict[str, object]] = []
        self._lock = threading.Lock()

    def add_record(self, record: Dict[str, object]) -> None:
        with self._lock:
            self._records.append(dict(record))

    def _data(self):
        from repro.analysis.campaigns.frame import Frame
        from repro.analysis.campaigns.loader import (
            COLUMNS,
            CampaignData,
            expected_cell_count,
            normalize_record,
        )

        with self._lock:
            records = [normalize_record(r) for r in self._records]
        return CampaignData(
            directory=self._out_dir,
            frame=Frame.from_records(records, columns=COLUMNS),
            spec=self._spec if self._spec is not None else {"name": self.name},
            expected_cells=expected_cell_count(self._spec),
            duplicates=0,
            skipped_lines=0,
        )

    def _export_errors(self) -> float:
        for metric in self._registry.metrics():
            if metric.name == "campaign_export_errors_total":
                return sum(float(v) for _, v in metric.samples())  # type: ignore[arg-type]
        return 0.0

    def metrics_text(self) -> str:
        from repro.analysis.campaigns.export import campaign_metrics_registry

        registry = campaign_metrics_registry(self._data())
        registry.merge(self._registry.snapshot())
        return registry.to_prometheus()

    def health(self) -> Dict[str, object]:
        with self._lock:
            recorded = len(self._records)
        export_errors = self._export_errors()
        return {
            "status": "degraded" if export_errors else "ok",
            "campaign": self.name,
            "cells_recorded": recorded,
            "export_errors": export_errors,
        }

    def progress(self) -> Dict[str, object]:
        from repro.analysis.campaigns.summary import (
            coverage_summary,
            progress_stats,
            scenario_summary,
        )

        data = self._data()
        return {
            "campaign": data.name,
            "coverage": coverage_summary(data),
            "progress": progress_stats(data, now=time.time()),
            "scenarios": list(scenario_summary(data.ok).rows()),
        }

    def alerts(self) -> Dict[str, object]:
        from repro.analysis.campaigns.summary import (
            alert_summary,
            flight_dump_index,
        )

        data = self._data()
        return {
            "campaign": data.name,
            "alerts": list(alert_summary(data.frame).rows()),
            "flight_dumps": flight_dump_index(data.frame),
        }

    def dashboard_html(self) -> str:
        from repro.analysis.campaigns.dashboard import build_dashboard

        return build_dashboard(
            self._data(), auto_refresh_s=DASHBOARD_REFRESH_S
        )


class DirectorySource:
    """Post-hoc serving: every request re-reads the campaign directory.

    Re-reading per request keeps the source valid for a directory that is
    *still being appended to* by a concurrently running sweep.
    """

    def __init__(self, directory: Union[str, pathlib.Path]) -> None:
        self._directory = pathlib.Path(directory)
        # Fail fast on a non-campaign directory instead of 500ing later.
        self._load()

    def _load(self):
        from repro.analysis.campaigns.loader import load_campaign

        return load_campaign(self._directory)

    def metrics_text(self) -> str:
        from repro.analysis.campaigns.export import campaign_metrics_registry

        return campaign_metrics_registry(self._load()).to_prometheus()

    def health(self) -> Dict[str, object]:
        data = self._load()
        return {
            "status": "ok",
            "campaign": data.name,
            "cells_recorded": len(data.frame),
            "export_errors": 0,
        }

    def progress(self) -> Dict[str, object]:
        from repro.analysis.campaigns.summary import (
            coverage_summary,
            progress_stats,
            scenario_summary,
        )

        data = self._load()
        return {
            "campaign": data.name,
            "coverage": coverage_summary(data),
            "progress": progress_stats(data, now=time.time()),
            "scenarios": list(scenario_summary(data.ok).rows()),
        }

    def alerts(self) -> Dict[str, object]:
        from repro.analysis.campaigns.summary import (
            alert_summary,
            flight_dump_index,
        )

        data = self._load()
        return {
            "campaign": data.name,
            "alerts": list(alert_summary(data.frame).rows()),
            "flight_dumps": flight_dump_index(data.frame),
        }

    def dashboard_html(self) -> str:
        from repro.analysis.campaigns.dashboard import build_dashboard

        return build_dashboard(
            self._load(), auto_refresh_s=DASHBOARD_REFRESH_S
        )


class MetricsServer:
    """ThreadingHTTPServer wrapper around a campaign source.

    ``port=0`` binds an ephemeral port (read it back from ``.port`` /
    ``.url`` after construction). The listener threads are daemons: an
    exiting sweep never hangs on the server, but call :meth:`close` for
    a deterministic shutdown (the runner does, in a ``finally``).
    """

    def __init__(
        self,
        source,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._source = source
        handler = _make_handler(source)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]  # type: ignore[return-value]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                # Tight poll so close() doesn't stall a finishing campaign
                # on the stdlib's default 0.5 s shutdown latency.
                target=lambda: self._httpd.serve_forever(poll_interval=0.05),
                name="repro-metrics-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def _make_handler(source):
    class _Handler(BaseHTTPRequestHandler):
        def log_message(self, format, *args):  # noqa: A002 - stdlib signature
            pass  # scrapes must not spam the campaign log

        def _send(self, status: int, content_type: str, body: str) -> None:
            payload = body.encode()
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_json(self, payload: Dict[str, object]) -> None:
            self._send(
                200,
                "application/json",
                json.dumps(_jsonable(payload), sort_keys=True) + "\n",
            )

        def do_GET(self) -> None:  # noqa: N802 - stdlib hook name
            path = self.path.split("?", 1)[0]
            # Dispatch on what the source provides: campaign sources carry
            # progress/alerts/dashboard, the reduction-daemon source
            # carries jobs — each serves its own plane and 404s the rest.
            try:
                if path == "/metrics" and hasattr(source, "metrics_text"):
                    self._send(
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        source.metrics_text(),
                    )
                elif path == "/healthz" and hasattr(source, "health"):
                    self._send_json(source.health())
                elif path == "/progress" and hasattr(source, "progress"):
                    self._send_json(source.progress())
                elif path == "/alerts" and hasattr(source, "alerts"):
                    self._send_json(source.alerts())
                elif path == "/jobs" and hasattr(source, "jobs"):
                    self._send_json(source.jobs())
                elif path in ("/", "/dashboard") and hasattr(
                    source, "dashboard_html"
                ):
                    self._send(
                        200,
                        "text/html; charset=utf-8",
                        source.dashboard_html(),
                    )
                else:
                    self._send(404, "text/plain", f"unknown path {path}\n")
            except Exception as exc:  # noqa: BLE001 - a scrape must not kill the server
                self._send(
                    500, "text/plain", f"{type(exc).__name__}: {exc}\n"
                )

    return _Handler


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.experiments serve <dir>``: post-hoc serving."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description=(
            "Serve a campaign directory's metrics, progress, alerts and "
            "dashboard over HTTP (works mid-flight: the directory is "
            "re-read on every request)."
        ),
    )
    parser.add_argument("directory", help="campaign --out directory")
    parser.add_argument(
        "--port", type=int, default=0, help="port to bind (0 = ephemeral)"
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="address to bind (default: %(default)s)"
    )
    args = parser.parse_args(argv)

    try:
        source = DirectorySource(args.directory)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    server = MetricsServer(source, host=args.host, port=args.port)
    server.start()
    print(f"serving {args.directory} at {server.url}")
    print("endpoints: /metrics /healthz /progress /alerts /dashboard")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
