"""Label-aware metrics registry with JSONL/CSV/Prometheus exporters.

A deliberately small, dependency-free subset of the Prometheus client
model: a :class:`MetricsRegistry` owns named metric families, each family
holds one sample per distinct label set, and three instrument types cover
the telemetry layer's needs:

- :class:`Counter` — monotonically increasing totals (messages, faults);
- :class:`Gauge` — last-written values (flow magnitudes, mass drift);
- :class:`Histogram` — bucketed distributions (phase wall-times).

A registry constructed with ``enabled=False`` hands out shared no-op
instruments, so instrumented code never branches on "is telemetry on" —
disabled updates are a single short-circuited method call.

Cross-process aggregation: :meth:`MetricsRegistry.snapshot` serializes a
registry into a plain JSON-able dict (the ``RegistrySnapshot`` wire
format) and :meth:`MetricsRegistry.merge` folds such a snapshot into
another registry — counters sum, gauges last-write-wins by timestamp,
histograms merge bucket-wise (identical bucket bounds asserted). Campaign
workers ship their per-cell registries home over the existing result
channel and the parent holds the authoritative aggregate. Every
instrument takes a per-family lock around its mutations, so a live HTTP
scrape (:mod:`repro.telemetry.server`) never sees torn state.
"""

from __future__ import annotations

import csv
import io
import json
import math
import pathlib
import re
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError

LabelKey = Tuple[Tuple[str, str], ...]

#: Version tag of the :meth:`MetricsRegistry.snapshot` wire format.
SNAPSHOT_FORMAT = 1

#: Default histogram buckets: wall-times from 1 microsecond to 10 seconds.
DEFAULT_TIME_BUCKETS = tuple(
    round(base * 10.0**exp, 12)
    for exp in range(-6, 1)
    for base in (1.0, 2.5, 5.0)
) + (10.0,)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _finite_or_none(value: float) -> Optional[float]:
    return value if math.isfinite(value) else None


class Metric:
    """Base of all metric families: a name, a help string, label samples.

    Every family carries its own lock: ``inc``/``set``/``observe`` are
    read-modify-write sequences, and the metrics server scrapes from a
    separate thread, so mutations and reads both take ``self._lock``.
    """

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def samples(self) -> Iterator[Tuple[Dict[str, str], object]]:
        raise NotImplementedError  # pragma: no cover


class Counter(Metric):
    """Monotonically increasing float total, one per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[Tuple[Dict[str, str], object]]:
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            yield dict(key), value


class Gauge(Metric):
    """Last-written float value, one per label set.

    Each write records a wall-clock timestamp so cross-process merges can
    apply last-write-wins semantics (:meth:`MetricsRegistry.merge`).
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}
        self._stamps: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)
            self._stamps[key] = time.time()

    def set_at(self, value: float, ts: float, **labels: str) -> None:
        """Timestamped write: kept only if at least as new as the current one."""
        key = _label_key(labels)
        with self._lock:
            if ts >= self._stamps.get(key, float("-inf")):
                self._values[key] = float(value)
                self._stamps[key] = float(ts)

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), float("nan"))

    def stamp(self, **labels: str) -> Optional[float]:
        """Wall-clock time of the last write for this label set."""
        with self._lock:
            return self._stamps.get(_label_key(labels))

    def samples(self) -> Iterator[Tuple[Dict[str, str], object]]:
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            yield dict(key), value


class _HistSlot:
    """Accumulator for one label set of a histogram."""

    __slots__ = ("count", "sum", "max", "buckets")

    def __init__(self, n_bounds: int) -> None:
        self.count = 0
        self.sum = 0.0
        self.max = float("-inf")
        self.buckets = [0] * (n_bounds + 1)  # +Inf overflow bucket


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus semantics), one per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {self.name} needs >= 1 bucket")
        self._bounds = bounds
        self._data: Dict[LabelKey, "_HistSlot"] = {}

    def _slot(self, key: LabelKey) -> "_HistSlot":
        slot = self._data.get(key)
        if slot is None:
            slot = _HistSlot(len(self._bounds))
            self._data[key] = slot
        return slot

    @property
    def bounds(self) -> List[float]:
        """The finite bucket bounds (the implicit +Inf bucket excluded)."""
        return list(self._bounds)

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            slot = self._slot(key)
            slot.count += 1
            slot.sum += value
            if value > slot.max:
                slot.max = value
            for i, bound in enumerate(self._bounds):
                if value <= bound:
                    slot.buckets[i] += 1
                    return
            slot.buckets[-1] += 1

    def merge_slot(
        self,
        labels: Dict[str, str],
        *,
        count: int,
        sum: float,
        max: float,
        buckets: Sequence[int],
    ) -> None:
        """Fold another registry's raw (non-cumulative) slot into this one."""
        if len(buckets) != len(self._bounds) + 1:
            raise ConfigurationError(
                f"histogram {self.name}: cannot merge a slot with "
                f"{len(buckets)} buckets into {len(self._bounds) + 1}"
            )
        key = _label_key(labels)
        with self._lock:
            slot = self._slot(key)
            slot.count += int(count)
            slot.sum += float(sum)
            if float(max) > slot.max:
                slot.max = float(max)
            for i, extra in enumerate(buckets):
                slot.buckets[i] += int(extra)

    def _snapshot_locked(self, key: LabelKey) -> Dict[str, object]:
        slot = self._slot(key)
        cumulative: List[Tuple[object, int]] = []
        acc = 0
        for bound, count in zip(list(self._bounds) + ["+Inf"], slot.buckets):
            acc += count
            cumulative.append((bound, acc))
        return {
            "count": slot.count,
            "sum": slot.sum,
            "max": slot.max if slot.count else 0.0,
            "buckets": cumulative,
        }

    def snapshot(self, **labels: str) -> Dict[str, object]:
        """``{count, sum, max, buckets: [(le, cumulative_count), ...]}``."""
        with self._lock:
            return self._snapshot_locked(_label_key(labels))

    def raw_slots(self) -> List[Tuple[Dict[str, str], Dict[str, object]]]:
        """Per-label raw accumulators (non-cumulative buckets), for snapshots."""
        out: List[Tuple[Dict[str, str], Dict[str, object]]] = []
        with self._lock:
            for key in sorted(self._data):
                slot = self._data[key]
                out.append(
                    (
                        dict(key),
                        {
                            "count": slot.count,
                            "sum": slot.sum,
                            "max": slot.max if slot.count else 0.0,
                            "buckets": list(slot.buckets),
                        },
                    )
                )
        return out

    def samples(self) -> Iterator[Tuple[Dict[str, str], object]]:
        with self._lock:
            snaps = [
                (dict(key), self._snapshot_locked(key))
                for key in sorted(self._data)
            ]
        return iter(snaps)


class _NullInstrument(Counter, Gauge, Histogram):
    """Shared no-op instrument a disabled registry hands out."""

    kind = "null"

    def __init__(self) -> None:  # pylint: disable=super-init-not-called
        Metric.__init__(self, "null")

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def set(self, value: float, **labels: str) -> None:
        pass

    def set_at(self, value: float, ts: float, **labels: str) -> None:
        pass

    def observe(self, value: float, **labels: str) -> None:
        pass

    def merge_slot(self, labels, *, count, sum, max, buckets) -> None:
        pass

    def samples(self) -> Iterator[Tuple[Dict[str, str], object]]:
        return iter(())


_NULL = _NullInstrument()


class MetricsRegistry:
    """Owns metric families; re-requesting a name returns the same family."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[str, Metric] = {}

    def _get(self, cls: type, name: str, help: str, **kwargs) -> Metric:
        if not self.enabled:
            return _NULL
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get(  # type: ignore[return-value]
            Histogram, name, help, buckets=buckets
        )

    def metrics(self) -> List[Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    # ------------------------------------------------------------------
    # Cross-process aggregation (the RegistrySnapshot wire format)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Serialize every family into a plain JSON-able dict.

        Counters and gauges carry ``samples: [{labels, value[, ts]}]``;
        histograms carry their bucket ``bounds`` plus raw (non-cumulative)
        per-slot accumulators, so :meth:`merge` can fold them bucket-wise.
        A disabled registry snapshots to an empty metric list.
        """
        metrics: List[Dict[str, object]] = []
        if self.enabled:
            for metric in self.metrics():
                entry: Dict[str, object] = {
                    "name": metric.name,
                    "kind": metric.kind,
                    "help": metric.help,
                }
                if isinstance(metric, Histogram):
                    entry["bounds"] = metric.bounds
                    entry["samples"] = [
                        {"labels": labels, **slot}
                        for labels, slot in metric.raw_slots()
                    ]
                elif isinstance(metric, Gauge):
                    entry["samples"] = [
                        {
                            "labels": labels,
                            "value": value,
                            "ts": metric.stamp(**labels),
                        }
                        for labels, value in metric.samples()
                    ]
                else:
                    entry["samples"] = [
                        {"labels": labels, "value": value}
                        for labels, value in metric.samples()
                    ]
                metrics.append(entry)
        return {"format": SNAPSHOT_FORMAT, "metrics": metrics}

    def merge(self, snapshot: Optional[Dict[str, object]]) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Counters sum, gauges apply last-write-wins by timestamp, and
        histograms add raw bucket counts element-wise — which is only
        meaningful when both sides bucket identically, so differing bounds
        raise :class:`ConfigurationError` rather than silently mis-binning.
        No-op on a disabled registry or an empty/None snapshot.
        """
        if not self.enabled or not snapshot:
            return
        fmt = snapshot.get("format")
        if fmt != SNAPSHOT_FORMAT:
            raise ConfigurationError(
                f"cannot merge registry snapshot format {fmt!r} "
                f"(expected {SNAPSHOT_FORMAT})"
            )
        for entry in snapshot.get("metrics", []):
            name = entry["name"]
            kind = entry["kind"]
            help = entry.get("help", "")
            samples = entry.get("samples", [])
            if kind == "counter":
                counter = self.counter(name, help)
                for sample in samples:
                    counter.inc(float(sample["value"]), **sample["labels"])
            elif kind == "gauge":
                gauge = self.gauge(name, help)
                for sample in samples:
                    ts = sample.get("ts")
                    gauge.set_at(
                        float(sample["value"]),
                        float(ts) if ts is not None else time.time(),
                        **sample["labels"],
                    )
            elif kind == "histogram":
                bounds = [float(b) for b in entry["bounds"]]
                hist = self.histogram(name, help, buckets=bounds)
                if hist.bounds != bounds:
                    raise ConfigurationError(
                        f"histogram {name}: snapshot bucket bounds "
                        f"{bounds} differ from registered {hist.bounds}; "
                        "bucket-wise merge needs identical bounds"
                    )
                for sample in samples:
                    hist.merge_slot(
                        sample["labels"],
                        count=sample["count"],
                        sum=sample["sum"],
                        max=sample["max"],
                        buckets=sample["buckets"],
                    )
            else:
                raise ConfigurationError(
                    f"cannot merge metric {name!r} of unknown kind {kind!r}"
                )

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per sample; non-finite floats become null."""
        lines = []
        for metric in self.metrics():
            for labels, value in metric.samples():
                record = {
                    "name": metric.name,
                    "type": metric.kind,
                    "labels": labels,
                }
                if isinstance(value, dict):  # histogram snapshot
                    record["count"] = value["count"]
                    record["sum"] = _finite_or_none(float(value["sum"]))
                    record["max"] = _finite_or_none(float(value["max"]))
                    record["buckets"] = [
                        [str(le), count] for le, count in value["buckets"]
                    ]
                else:
                    record["value"] = _finite_or_none(float(value))
                lines.append(json.dumps(record, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_csv(self) -> str:
        """Flat table: histogram samples become count/sum/mean/max columns."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["name", "type", "labels", "value", "count", "sum", "max"])
        for metric in self.metrics():
            for labels, value in metric.samples():
                label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                if isinstance(value, dict):
                    writer.writerow(
                        [
                            metric.name,
                            metric.kind,
                            label_text,
                            "",
                            value["count"],
                            repr(float(value["sum"])),
                            repr(float(value["max"])),
                        ]
                    )
                else:
                    writer.writerow(
                        [metric.name, metric.kind, label_text, repr(float(value)), "", "", ""]
                    )
        return buf.getvalue()

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (histograms with _bucket/_sum).

        Non-finite sample values are dropped (same sanitization policy as
        :meth:`to_jsonl`): a NaN gauge or an Inf histogram sum would be
        rejected by strict scrape parsers, so those lines are omitted
        while the finite bucket/count lines still ship.
        """
        out: List[str] = []
        for metric in self.metrics():
            if metric.help:
                out.append(f"# HELP {metric.name} {metric.help}")
            out.append(f"# TYPE {metric.name} {metric.kind}")
            for labels, value in metric.samples():
                if isinstance(value, dict):
                    for le, count in value["buckets"]:
                        le_text = "+Inf" if le == "+Inf" else repr(float(le))
                        bucket_labels = dict(labels, le=le_text)
                        out.append(
                            f"{metric.name}_bucket"
                            f"{_prom_labels(bucket_labels)} {count}"
                        )
                    total = _finite_or_none(float(value["sum"]))
                    if total is not None:
                        out.append(
                            f"{metric.name}_sum{_prom_labels(labels)} "
                            f"{_prom_float(total)}"
                        )
                    out.append(
                        f"{metric.name}_count{_prom_labels(labels)} "
                        f"{value['count']}"
                    )
                else:
                    scalar = _finite_or_none(float(value))
                    if scalar is None:
                        continue
                    out.append(
                        f"{metric.name}{_prom_labels(labels)} "
                        f"{_prom_float(scalar)}"
                    )
        return "\n".join(out) + ("\n" if out else "")

    def dump(self, directory: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write metrics.jsonl / metrics.csv / metrics.prom under ``directory``."""
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "metrics.jsonl").write_text(self.to_jsonl())
        (directory / "metrics.csv").write_text(self.to_csv())
        (directory / "metrics.prom").write_text(self.to_prometheus())
        return directory


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    escaped = {
        k: str(v).replace("\\", "\\\\").replace('"', '\\"')
        for k, v in labels.items()
    }
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(escaped.items()))
    return "{" + inner + "}"


def _prom_float(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


_PROM_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>\S+)(?: (?P<ts>-?\d+))?$"
)
_PROM_LABEL = re.compile(r'^(?P<k>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<v>(?:[^"\\]|\\.)*)"$')


def parse_prometheus_text(
    text: str,
) -> List[Tuple[str, Dict[str, str], float]]:
    """Strictly parse Prometheus exposition text into (name, labels, value).

    Raises :class:`ValueError` on any line that is not a comment, blank,
    or a well-formed sample with a finite-or-special float value. Used by
    tests and CI to assert scrapes are ingestible.
    """
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        match = _PROM_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed Prometheus line {lineno}: {line!r}")
        labels: Dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for part in _split_prom_labels(raw, lineno, line):
                lmatch = _PROM_LABEL.match(part)
                if lmatch is None:
                    raise ValueError(
                        f"malformed label on line {lineno}: {part!r}"
                    )
                value = lmatch.group("v")
                labels[lmatch.group("k")] = (
                    value.replace('\\"', '"').replace("\\\\", "\\")
                )
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError as exc:
            raise ValueError(
                f"non-numeric value on line {lineno}: {raw_value!r}"
            ) from exc
        samples.append((match.group("name"), labels, value))
    return samples


def _split_prom_labels(raw: str, lineno: int, line: str) -> List[str]:
    """Split `k1="v1",k2="v2"` on commas outside quoted values."""
    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for ch in raw:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if in_quotes:
        raise ValueError(f"unterminated label quote on line {lineno}: {line!r}")
    if current:
        parts.append("".join(current))
    return parts


#: Registry handed to collectors when telemetry is off.
NULL_REGISTRY = MetricsRegistry(enabled=False)
