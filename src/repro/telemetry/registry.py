"""Label-aware metrics registry with JSONL/CSV/Prometheus exporters.

A deliberately small, dependency-free subset of the Prometheus client
model: a :class:`MetricsRegistry` owns named metric families, each family
holds one sample per distinct label set, and three instrument types cover
the telemetry layer's needs:

- :class:`Counter` — monotonically increasing totals (messages, faults);
- :class:`Gauge` — last-written values (flow magnitudes, mass drift);
- :class:`Histogram` — bucketed distributions (phase wall-times).

A registry constructed with ``enabled=False`` hands out shared no-op
instruments, so instrumented code never branches on "is telemetry on" —
disabled updates are a single short-circuited method call.
"""

from __future__ import annotations

import csv
import io
import json
import math
import pathlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets: wall-times from 1 microsecond to 10 seconds.
DEFAULT_TIME_BUCKETS = tuple(
    round(base * 10.0**exp, 12)
    for exp in range(-6, 1)
    for base in (1.0, 2.5, 5.0)
) + (10.0,)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _finite_or_none(value: float) -> Optional[float]:
    return value if math.isfinite(value) else None


class Metric:
    """Base of all metric families: a name, a help string, label samples."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def samples(self) -> Iterator[Tuple[Dict[str, str], object]]:
        raise NotImplementedError  # pragma: no cover


class Counter(Metric):
    """Monotonically increasing float total, one per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[Tuple[Dict[str, str], object]]:
        for key, value in sorted(self._values.items()):
            yield dict(key), value


class Gauge(Metric):
    """Last-written float value, one per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(labels)] = float(value)

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), float("nan"))

    def samples(self) -> Iterator[Tuple[Dict[str, str], object]]:
        for key, value in sorted(self._values.items()):
            yield dict(key), value


class _HistSlot:
    """Accumulator for one label set of a histogram."""

    __slots__ = ("count", "sum", "max", "buckets")

    def __init__(self, n_bounds: int) -> None:
        self.count = 0
        self.sum = 0.0
        self.max = float("-inf")
        self.buckets = [0] * (n_bounds + 1)  # +Inf overflow bucket


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus semantics), one per label set."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {self.name} needs >= 1 bucket")
        self._bounds = bounds
        self._data: Dict[LabelKey, "_HistSlot"] = {}

    def _slot(self, key: LabelKey) -> "_HistSlot":
        slot = self._data.get(key)
        if slot is None:
            slot = _HistSlot(len(self._bounds))
            self._data[key] = slot
        return slot

    def observe(self, value: float, **labels: str) -> None:
        slot = self._slot(_label_key(labels))
        slot.count += 1
        slot.sum += value
        if value > slot.max:
            slot.max = value
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                slot.buckets[i] += 1
                return
        slot.buckets[-1] += 1

    def snapshot(self, **labels: str) -> Dict[str, object]:
        """``{count, sum, max, buckets: [(le, cumulative_count), ...]}``."""
        slot = self._slot(_label_key(labels))
        cumulative: List[Tuple[object, int]] = []
        acc = 0
        for bound, count in zip(list(self._bounds) + ["+Inf"], slot.buckets):
            acc += count
            cumulative.append((bound, acc))
        return {
            "count": slot.count,
            "sum": slot.sum,
            "max": slot.max if slot.count else 0.0,
            "buckets": cumulative,
        }

    def samples(self) -> Iterator[Tuple[Dict[str, str], object]]:
        for key in sorted(self._data):
            yield dict(key), self.snapshot(**dict(key))


class _NullInstrument(Counter, Gauge, Histogram):
    """Shared no-op instrument a disabled registry hands out."""

    kind = "null"

    def __init__(self) -> None:  # pylint: disable=super-init-not-called
        Metric.__init__(self, "null")

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def set(self, value: float, **labels: str) -> None:
        pass

    def observe(self, value: float, **labels: str) -> None:
        pass

    def samples(self) -> Iterator[Tuple[Dict[str, str], object]]:
        return iter(())


_NULL = _NullInstrument()


class MetricsRegistry:
    """Owns metric families; re-requesting a name returns the same family."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[str, Metric] = {}

    def _get(self, cls: type, name: str, help: str, **kwargs) -> Metric:
        if not self.enabled:
            return _NULL
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get(  # type: ignore[return-value]
            Histogram, name, help, buckets=buckets
        )

    def metrics(self) -> List[Metric]:
        return [self._metrics[name] for name in sorted(self._metrics)]

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per sample; non-finite floats become null."""
        lines = []
        for metric in self.metrics():
            for labels, value in metric.samples():
                record = {
                    "name": metric.name,
                    "type": metric.kind,
                    "labels": labels,
                }
                if isinstance(value, dict):  # histogram snapshot
                    record["count"] = value["count"]
                    record["sum"] = _finite_or_none(float(value["sum"]))
                    record["max"] = _finite_or_none(float(value["max"]))
                    record["buckets"] = [
                        [str(le), count] for le, count in value["buckets"]
                    ]
                else:
                    record["value"] = _finite_or_none(float(value))
                lines.append(json.dumps(record, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_csv(self) -> str:
        """Flat table: histogram samples become count/sum/mean/max columns."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["name", "type", "labels", "value", "count", "sum", "max"])
        for metric in self.metrics():
            for labels, value in metric.samples():
                label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                if isinstance(value, dict):
                    writer.writerow(
                        [
                            metric.name,
                            metric.kind,
                            label_text,
                            "",
                            value["count"],
                            repr(float(value["sum"])),
                            repr(float(value["max"])),
                        ]
                    )
                else:
                    writer.writerow(
                        [metric.name, metric.kind, label_text, repr(float(value)), "", "", ""]
                    )
        return buf.getvalue()

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (histograms with _bucket/_sum)."""
        out: List[str] = []
        for metric in self.metrics():
            if metric.help:
                out.append(f"# HELP {metric.name} {metric.help}")
            out.append(f"# TYPE {metric.name} {metric.kind}")
            for labels, value in metric.samples():
                if isinstance(value, dict):
                    for le, count in value["buckets"]:
                        le_text = "+Inf" if le == "+Inf" else repr(float(le))
                        bucket_labels = dict(labels, le=le_text)
                        out.append(
                            f"{metric.name}_bucket"
                            f"{_prom_labels(bucket_labels)} {count}"
                        )
                    out.append(
                        f"{metric.name}_sum{_prom_labels(labels)} "
                        f"{_prom_float(float(value['sum']))}"
                    )
                    out.append(
                        f"{metric.name}_count{_prom_labels(labels)} "
                        f"{value['count']}"
                    )
                else:
                    out.append(
                        f"{metric.name}{_prom_labels(labels)} "
                        f"{_prom_float(float(value))}"
                    )
        return "\n".join(out) + ("\n" if out else "")

    def dump(self, directory: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write metrics.jsonl / metrics.csv / metrics.prom under ``directory``."""
        directory = pathlib.Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "metrics.jsonl").write_text(self.to_jsonl())
        (directory / "metrics.csv").write_text(self.to_csv())
        (directory / "metrics.prom").write_text(self.to_prometheus())
        return directory


def _prom_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    escaped = {
        k: str(v).replace("\\", "\\\\").replace('"', '\\"')
        for k, v in labels.items()
    }
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(escaped.items()))
    return "{" + inner + "}"


def _prom_float(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


#: Registry handed to collectors when telemetry is off.
NULL_REGISTRY = MetricsRegistry(enabled=False)
