"""Engine-hook → metrics bridge.

:class:`TelemetryCollector` is an :class:`~repro.simulation.observers.Observer`
that translates every engine hook into updates on a shared
:class:`~repro.telemetry.registry.MetricsRegistry`. Because all three
engines drive the same hook set (per-message hooks on the object engines,
the batched ``on_round_messages`` hook on the vectorized ones), one
collector yields the same metric names regardless of backend:

- ``repro_rounds_total{engine=}`` — completed rounds;
- ``repro_messages_sent_total{engine=}`` — messages handed to transport;
- ``repro_messages_dropped_total{engine=,reason=}`` — transport drops,
  by reason (``dead_edge`` / ``dead_node`` / ``injector`` / ``stale``);
- ``repro_faults_injected_total{engine=,kind=}`` — fault activations;
- ``repro_link_handlings_total{engine=}`` — permanent-failure handlings;
- ``repro_runs_total{engine=}`` — completed ``run()`` calls.

Phase wall-times are recorded by the companion
:class:`~repro.telemetry.phase.PhaseTimer` observer (one histogram,
``repro_phase_seconds{engine=,phase=}``) so they are not double-counted
when both observers share a registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.simulation.observers import Observer
from repro.telemetry.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.engine import SynchronousEngine
    from repro.simulation.messages import Message


class TelemetryCollector(Observer):
    """Feeds a metrics registry from engine hooks.

    ``engine_kind`` labels every sample so one registry can hold metrics
    from several engines of one experiment; it defaults to the engine
    class name at call time when not given.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        engine_kind: Optional[str] = None,
    ) -> None:
        self.registry = registry
        self._kind = engine_kind
        self._rounds = registry.counter(
            "repro_rounds_total", "Completed gossip rounds"
        )
        self._runs = registry.counter(
            "repro_runs_total", "Completed engine run() calls"
        )
        self._sent = registry.counter(
            "repro_messages_sent_total", "Messages handed to the transport"
        )
        self._dropped = registry.counter(
            "repro_messages_dropped_total", "Messages swallowed by transport"
        )
        self._faults = registry.counter(
            "repro_faults_injected_total", "Fault activations by kind"
        )
        self._handlings = registry.counter(
            "repro_link_handlings_total", "Permanent link-failure handlings"
        )

    def _engine_kind(self, engine: object) -> str:
        return self._kind or type(engine).__name__

    def wants_detail(self, round_index: int) -> bool:
        # The collector never *needs* the per-message hooks: its totals stay
        # exact either way, because rounds where no observer requests detail
        # deliver their message counts through the batched
        # on_round_messages hook instead (the two paths are mutually
        # exclusive per round).
        return False

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_run_end(self, engine: "SynchronousEngine", rounds_executed: int) -> None:
        self._runs.inc(engine=self._engine_kind(engine))

    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        self._rounds.inc(engine=self._engine_kind(engine))

    def on_message_sent(self, engine: "SynchronousEngine", message: "Message") -> None:
        self._sent.inc(engine=self._engine_kind(engine))

    def on_message_dropped(
        self, engine: "SynchronousEngine", message: "Message", reason: str
    ) -> None:
        self._dropped.inc(engine=self._engine_kind(engine), reason=reason)

    def on_fault_injected(
        self, engine: "SynchronousEngine", round_index: int, kind: str, detail: str
    ) -> None:
        self._faults.inc(engine=self._engine_kind(engine), kind=kind)

    def on_link_handled(
        self, engine: "SynchronousEngine", round_index: int, u: int, v: int
    ) -> None:
        self._handlings.inc(engine=self._engine_kind(engine))

    def on_round_messages(
        self,
        engine: "SynchronousEngine",
        round_index: int,
        sent: int,
        delivered: int,
    ) -> None:
        kind = self._engine_kind(engine)
        self._sent.inc(sent, engine=kind)
        if sent > delivered:
            # The vectorized transports model i.i.d. loss only, so every
            # batched drop is an injector drop by construction.
            self._dropped.inc(sent - delivered, engine=kind, reason="injector")
