"""Phase profiling: where do gossip rounds spend their wall-clock time?

:class:`PhaseTimer` aggregates the ``on_phase_end`` hook every engine emits
(synchronous engine: ``send`` / ``transport`` / ``deliver`` / ``handle``
per round; async engine: ``send`` / ``deliver`` per event; vectorized
engines: ``send`` / ``deliver`` per round) into per-phase totals and — when
given a registry — the ``repro_phase_seconds{engine=,phase=}`` histogram.

It can also time arbitrary code blocks outside an engine via
:meth:`PhaseTimer.time`, which is built on the repo's stopwatch
:class:`repro.util.timer.Timer`.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.simulation.observers import Observer
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sampling import RoundSampler, resolve_sampler
from repro.util.timer import Timer

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.engine import SynchronousEngine


class PhaseTimer(Observer):
    """Collects phase wall-times from engine hooks (or manual blocks).

    ``sampler`` thins the profile: the timer requests engine phase timing
    (via ``wants_detail``) only on sampled rounds, so a sampled profile
    costs a fraction of a full one. Default is every round, the
    historical behavior.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        engine_kind: Optional[str] = None,
        sampler: Optional[RoundSampler] = None,
        metric: str = "repro_phase_seconds",
        help: str = "Engine phase wall time",
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        self._kind = engine_kind
        self._sampler = resolve_sampler(sampler)
        self._labels = dict(labels or {})
        self._hist = (
            registry.histogram(metric, help) if registry is not None else None
        )
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self.maxima: Dict[str, float] = {}

    def _record(self, engine_kind: str, phase: str, seconds: float) -> None:
        self.totals[phase] = self.totals.get(phase, 0.0) + seconds
        self.counts[phase] = self.counts.get(phase, 0) + 1
        if seconds > self.maxima.get(phase, 0.0):
            self.maxima[phase] = seconds
        if self._hist is not None:
            if self._labels:
                self._hist.observe(
                    seconds, engine=engine_kind, phase=phase, **self._labels
                )
            else:
                self._hist.observe(seconds, engine=engine_kind, phase=phase)

    def record(
        self, phase: str, seconds: float, *, engine_kind: Optional[str] = None
    ) -> None:
        """Record an externally measured duration as a named phase."""
        self._record(engine_kind or self._kind or "manual", phase, seconds)

    # ------------------------------------------------------------------
    # Engine hook
    # ------------------------------------------------------------------
    def wants_detail(self, round_index: int) -> bool:
        return self._sampler.sample(round_index)

    def on_phase_end(
        self, engine: "SynchronousEngine", phase: str, seconds: float
    ) -> None:
        self._record(self._kind or type(engine).__name__, phase, seconds)

    # ------------------------------------------------------------------
    # Manual instrumentation
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def time(self, phase: str, *, engine_kind: str = "manual") -> Iterator[Timer]:
        """Time a code block as a named phase (outside any engine)."""
        with Timer() as timer:
            yield timer
        self._record(engine_kind, phase, timer.elapsed)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> List[Tuple[str, float, int, float, float]]:
        """Rows ``(phase, total_s, count, mean_s, max_s)``, slowest first."""
        rows = []
        for phase, total in self.totals.items():
            count = self.counts[phase]
            rows.append(
                (phase, total, count, total / count, self.maxima[phase])
            )
        rows.sort(key=lambda row: row[1], reverse=True)
        return rows
