"""Process-wide telemetry capture sessions.

The experiment harness constructs engines many layers below the CLI, so
telemetry is attached ambiently: while a :func:`capture` session is
active, every engine constructed (synchronous, asynchronous or
vectorized) asks :func:`session_observers` for instrumentation and gets a
fresh collector + phase timer + probe set bound to the session's shared
:class:`~repro.telemetry.registry.MetricsRegistry`. With no active
session the lookup returns ``[]`` and engines run with zero telemetry
overhead (they skip hook dispatch and phase timing entirely).

On session exit the dump directory receives:

- ``metrics.jsonl`` / ``metrics.csv`` / ``metrics.prom`` — final registry
  contents in three formats;
- ``trace.jsonl`` — per-round records from every instrumented engine
  (round snapshots, probe samples, invariant violations, fault events),
  each line tagged with ``run`` (engine construction index), ``engine``
  and ``algorithm``.

``python -m repro.telemetry.report <dir>`` summarizes such a dump.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import math
import pathlib
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Union

from repro.simulation.observers import Observer
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.phase import PhaseTimer
from repro.telemetry.probes import (
    FaultTimelineProbe,
    FlowMagnitudeProbe,
    MassConservationProbe,
    PCFCancellationProbe,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sampling import DEFAULT_SAMPLE_EVERY, RoundSampler

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.trace import TraceRecorder


def _algorithm_label(engine: object) -> str:
    algorithms = getattr(engine, "algorithms", None)
    if algorithms:
        return type(algorithms[0]).__name__
    return type(engine).__name__


def _sanitize(record: Dict[str, object]) -> Dict[str, object]:
    clean = {}
    for key, value in record.items():
        if isinstance(value, float) and not math.isfinite(value):
            clean[key] = None
        else:
            clean[key] = value
    return clean


@dataclasses.dataclass
class _InstrumentedRun:
    """Bookkeeping for one engine instrumented by the session."""

    run: int
    engine_kind: str
    algorithm: str
    trace: "TraceRecorder"
    flow: FlowMagnitudeProbe
    mass: MassConservationProbe
    pcf: PCFCancellationProbe
    faults: FaultTimelineProbe
    detectors: List[Observer]


class TelemetrySession:
    """Shared registry + per-engine probes for one capture window.

    ``sample_every`` / ``sample_rate`` configure the shared
    :class:`~repro.telemetry.sampling.RoundSampler` that thins the whole
    telemetry path — per-round trace records, probe samples and the
    engines' own instrumentation cost (phase timing, per-message hook
    dispatch). Metric *totals* stay exact under any rate. ``trace_every``
    is the historical name for ``sample_every`` and is kept as an alias.
    ``mass_tolerance`` configures the conservation probe; ``detectors``
    enables the online anomaly detectors from
    :mod:`repro.tracing.anomaly` on every instrumented engine.
    """

    def __init__(
        self,
        directory: Optional[Union[str, pathlib.Path]] = None,
        *,
        sample_every: Optional[int] = None,
        sample_rate: Optional[float] = None,
        trace_every: Optional[int] = None,
        mass_tolerance: float = 1e-6,
        detectors: bool = True,
    ) -> None:
        self.directory = (
            pathlib.Path(directory) if directory is not None else None
        )
        self.registry = MetricsRegistry()
        if sample_every is None and sample_rate is None:
            sample_every = (
                int(trace_every) if trace_every is not None
                else DEFAULT_SAMPLE_EVERY
            )
        elif trace_every is not None:
            raise ValueError(
                "pass either trace_every (alias) or sample_every/sample_rate"
            )
        self.sampler = RoundSampler(every=sample_every, rate=sample_rate)
        self.mass_tolerance = float(mass_tolerance)
        self.detectors_enabled = bool(detectors)
        self.runs: List[_InstrumentedRun] = []

    @property
    def trace_every(self) -> int:
        """Alias for the sampler stride (historical name)."""
        return self.sampler.stride

    # ------------------------------------------------------------------
    # Engine attachment
    # ------------------------------------------------------------------
    def observers_for(
        self, engine: object, *, engine_kind: str
    ) -> List[Observer]:
        """Fresh instrumentation for one engine (collector, timer, probes)."""
        from repro.simulation.trace import TraceRecorder

        detectors: List[Observer] = []
        if self.detectors_enabled:
            from repro.tracing.anomaly import default_detectors

            detectors = list(
                default_detectors(
                    sampler=self.sampler, registry=self.registry
                )
            )
        run = _InstrumentedRun(
            run=len(self.runs),
            engine_kind=engine_kind,
            algorithm=_algorithm_label(engine),
            trace=TraceRecorder(sampler=self.sampler),
            flow=FlowMagnitudeProbe(
                sampler=self.sampler, registry=self.registry
            ),
            mass=MassConservationProbe(
                tolerance=self.mass_tolerance,
                sampler=self.sampler,
                registry=self.registry,
            ),
            pcf=PCFCancellationProbe(
                sampler=self.sampler, registry=self.registry
            ),
            faults=FaultTimelineProbe(),
            detectors=detectors,
        )
        self.runs.append(run)
        return [
            TelemetryCollector(self.registry, engine_kind=engine_kind),
            PhaseTimer(
                self.registry, engine_kind=engine_kind, sampler=self.sampler
            ),
            run.trace,
            run.flow,
            run.mass,
            run.pcf,
            run.faults,
            *detectors,
        ]

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------
    def trace_lines(self) -> Iterator[str]:
        """All per-round records and events as tagged JSON lines."""
        for run in self.runs:
            tag = {
                "run": run.run,
                "engine": run.engine_kind,
                "algorithm": run.algorithm,
            }
            for record in run.trace.records:
                payload = dict(tag, type="round", **dataclasses.asdict(record))
                yield json.dumps(_sanitize(payload))
            for probe in (run.flow, run.mass, run.pcf):
                for sample in probe.records:
                    yield json.dumps(_sanitize(dict(tag, **sample)))
                for violation in probe.violations:
                    yield json.dumps(_sanitize(dict(tag, **violation)))
            for event in run.faults.events:
                yield json.dumps(_sanitize(dict(tag, **event)))
            for detector in run.detectors:
                for alert in detector.alerts:
                    yield json.dumps(_sanitize(dict(tag, **alert)))

    def dump(
        self, directory: Optional[Union[str, pathlib.Path]] = None
    ) -> pathlib.Path:
        """Write metrics (all formats) + trace.jsonl; returns the directory."""
        target = pathlib.Path(directory) if directory else self.directory
        if target is None:
            raise ValueError("no dump directory configured")
        self.registry.dump(target)
        lines = list(self.trace_lines())
        (target / "trace.jsonl").write_text(
            "\n".join(lines) + ("\n" if lines else "")
        )
        return target


_CURRENT: Optional[TelemetrySession] = None


def current() -> Optional[TelemetrySession]:
    """The active capture session, if any."""
    return _CURRENT


def session_observers(engine: object, *, engine_kind: str) -> List[Observer]:
    """Instrumentation for a newly constructed engine (``[]`` when off).

    Called by every engine constructor; the no-session path is a single
    ``None`` check so disabled telemetry costs nothing measurable.
    """
    if _CURRENT is None:
        return []
    return _CURRENT.observers_for(engine, engine_kind=engine_kind)


@contextlib.contextmanager
def capture(
    directory: Optional[Union[str, pathlib.Path]] = None,
    **kwargs: object,
) -> Iterator[TelemetrySession]:
    """Activate a telemetry session; dumps to ``directory`` on exit.

    Sessions nest: an inner capture shadows the outer one for engines
    constructed inside it, then the outer session resumes.
    """
    global _CURRENT
    session = TelemetrySession(directory, **kwargs)  # type: ignore[arg-type]
    previous = _CURRENT
    _CURRENT = session
    try:
        yield session
    finally:
        _CURRENT = previous
        if session.directory is not None:
            session.dump()
