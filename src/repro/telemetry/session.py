"""Process-wide telemetry capture sessions.

The experiment harness constructs engines many layers below the CLI, so
telemetry is attached ambiently: while a :func:`capture` session is
active, every engine constructed (synchronous, asynchronous or
vectorized) asks :func:`session_observers` for instrumentation and gets a
fresh collector + phase timer + probe set bound to the session's shared
:class:`~repro.telemetry.registry.MetricsRegistry`. With no active
session the lookup returns ``[]`` and engines run with zero telemetry
overhead (they skip hook dispatch and phase timing entirely).

On session exit the dump directory receives:

- ``metrics.jsonl`` / ``metrics.csv`` / ``metrics.prom`` — final registry
  contents in three formats;
- ``trace.jsonl`` — per-round records from every instrumented engine
  (round snapshots, probe samples, invariant violations, fault events),
  each line tagged with ``run`` (engine construction index), ``engine``
  and ``algorithm``.

``python -m repro.telemetry.report <dir>`` summarizes such a dump.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import math
import pathlib
from typing import Dict, Iterator, List, Optional, Union

from repro.simulation.observers import Observer
from repro.simulation.trace import TraceRecorder
from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.phase import PhaseTimer
from repro.telemetry.probes import (
    FaultTimelineProbe,
    FlowMagnitudeProbe,
    MassConservationProbe,
    PCFCancellationProbe,
)
from repro.telemetry.registry import MetricsRegistry


def _algorithm_label(engine: object) -> str:
    algorithms = getattr(engine, "algorithms", None)
    if algorithms:
        return type(algorithms[0]).__name__
    return type(engine).__name__


def _sanitize(record: Dict[str, object]) -> Dict[str, object]:
    clean = {}
    for key, value in record.items():
        if isinstance(value, float) and not math.isfinite(value):
            clean[key] = None
        else:
            clean[key] = value
    return clean


@dataclasses.dataclass
class _InstrumentedRun:
    """Bookkeeping for one engine instrumented by the session."""

    run: int
    engine_kind: str
    algorithm: str
    trace: TraceRecorder
    flow: FlowMagnitudeProbe
    mass: MassConservationProbe
    pcf: PCFCancellationProbe
    faults: FaultTimelineProbe


class TelemetrySession:
    """Shared registry + per-engine probes for one capture window.

    ``trace_every`` thins the per-round records (metrics are unaffected);
    ``mass_tolerance`` configures the conservation probe.
    """

    def __init__(
        self,
        directory: Optional[Union[str, pathlib.Path]] = None,
        *,
        trace_every: int = 8,
        mass_tolerance: float = 1e-6,
    ) -> None:
        self.directory = (
            pathlib.Path(directory) if directory is not None else None
        )
        self.registry = MetricsRegistry()
        self.trace_every = int(trace_every)
        self.mass_tolerance = float(mass_tolerance)
        self.runs: List[_InstrumentedRun] = []

    # ------------------------------------------------------------------
    # Engine attachment
    # ------------------------------------------------------------------
    def observers_for(
        self, engine: object, *, engine_kind: str
    ) -> List[Observer]:
        """Fresh instrumentation for one engine (collector, timer, probes)."""
        run = _InstrumentedRun(
            run=len(self.runs),
            engine_kind=engine_kind,
            algorithm=_algorithm_label(engine),
            trace=TraceRecorder(every=self.trace_every),
            flow=FlowMagnitudeProbe(
                every=self.trace_every, registry=self.registry
            ),
            mass=MassConservationProbe(
                tolerance=self.mass_tolerance,
                every=self.trace_every,
                registry=self.registry,
            ),
            pcf=PCFCancellationProbe(
                every=self.trace_every, registry=self.registry
            ),
            faults=FaultTimelineProbe(),
        )
        self.runs.append(run)
        return [
            TelemetryCollector(self.registry, engine_kind=engine_kind),
            PhaseTimer(self.registry, engine_kind=engine_kind),
            run.trace,
            run.flow,
            run.mass,
            run.pcf,
            run.faults,
        ]

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------
    def trace_lines(self) -> Iterator[str]:
        """All per-round records and events as tagged JSON lines."""
        for run in self.runs:
            tag = {
                "run": run.run,
                "engine": run.engine_kind,
                "algorithm": run.algorithm,
            }
            for record in run.trace.records:
                payload = dict(tag, type="round", **dataclasses.asdict(record))
                yield json.dumps(_sanitize(payload))
            for probe in (run.flow, run.mass, run.pcf):
                for sample in probe.records:
                    yield json.dumps(_sanitize(dict(tag, **sample)))
                for violation in probe.violations:
                    yield json.dumps(_sanitize(dict(tag, **violation)))
            for event in run.faults.events:
                yield json.dumps(_sanitize(dict(tag, **event)))

    def dump(
        self, directory: Optional[Union[str, pathlib.Path]] = None
    ) -> pathlib.Path:
        """Write metrics (all formats) + trace.jsonl; returns the directory."""
        target = pathlib.Path(directory) if directory else self.directory
        if target is None:
            raise ValueError("no dump directory configured")
        self.registry.dump(target)
        lines = list(self.trace_lines())
        (target / "trace.jsonl").write_text(
            "\n".join(lines) + ("\n" if lines else "")
        )
        return target


_CURRENT: Optional[TelemetrySession] = None


def current() -> Optional[TelemetrySession]:
    """The active capture session, if any."""
    return _CURRENT


def session_observers(engine: object, *, engine_kind: str) -> List[Observer]:
    """Instrumentation for a newly constructed engine (``[]`` when off).

    Called by every engine constructor; the no-session path is a single
    ``None`` check so disabled telemetry costs nothing measurable.
    """
    if _CURRENT is None:
        return []
    return _CURRENT.observers_for(engine, engine_kind=engine_kind)


@contextlib.contextmanager
def capture(
    directory: Optional[Union[str, pathlib.Path]] = None,
    **kwargs: object,
) -> Iterator[TelemetrySession]:
    """Activate a telemetry session; dumps to ``directory`` on exit.

    Sessions nest: an inner capture shadows the outer one for engines
    constructed inside it, then the outer session resumes.
    """
    global _CURRENT
    session = TelemetrySession(directory, **kwargs)  # type: ignore[arg-type]
    previous = _CURRENT
    _CURRENT = session
    try:
        yield session
    finally:
        _CURRENT = previous
        if session.directory is not None:
            session.dump()
