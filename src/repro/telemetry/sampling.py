"""Shared round-sampling policy for the whole telemetry path.

Full telemetry costs 2.3–4.9× engine throughput (see ``BENCH_engine.json``),
which makes always-on observability too expensive. A :class:`RoundSampler`
is the one knob that thins every telemetry consumer consistently: the
per-round trace, the invariant probes, the anomaly detectors, the metrics
collector's per-message accounting, and the engines' own instrumentation
cost (phase timing and per-message hook dispatch are skipped entirely on
unsampled rounds — see :meth:`repro.simulation.observers.Observer.wants_detail`).

Sampling is deterministic (a stride over round indices, always including
round 0), not random: two runs with the same configuration sample the same
rounds, so sampled traces stay diff-able across algorithms — the same
paired-comparison property the engines guarantee for schedules and faults.

The policy accepts either configuration style and normalizes them:

- ``every=N`` — record one round in ``N`` (the historical ``TraceRecorder``
  thinning knob);
- ``rate=r`` — a target sampling rate in ``(0, 1]``, realized as the
  stride ``round(1/r)``.

Totals are never lost to sampling: engines report message counts of
unsampled rounds through the batched ``on_round_messages`` hook, so
counters stay exact while per-message detail is thinned.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import ConfigurationError

#: Stride used when sampling is requested without an explicit rate — one
#: sampled round in eight keeps the telemetry slowdown within the 1.5×
#: budget the benchmarks gate on (vs ~4.9× unsampled on the vectorized
#: engine) while still catching every paper failure signature, all of
#: which persist for tens of rounds.
DEFAULT_SAMPLE_EVERY = 8


class RoundSampler:
    """Deterministic stride sampling over round indices.

    ``sample(round_index)`` is True on rounds ``0, stride, 2*stride, ...``.
    A sampler with ``stride == 1`` samples everything (the no-thinning
    default of historical telemetry observers).
    """

    __slots__ = ("stride",)

    def __init__(
        self, *, every: Optional[int] = None, rate: Optional[float] = None
    ) -> None:
        if every is not None and rate is not None:
            raise ConfigurationError(
                "pass either every=N or rate=r, not both"
            )
        if rate is not None:
            rate = float(rate)
            if not 0.0 < rate <= 1.0:
                raise ConfigurationError(
                    f"sample rate must be in (0, 1], got {rate}"
                )
            every = max(1, round(1.0 / rate))
        if every is None:
            every = 1
        every = int(every)
        if every < 1:
            raise ConfigurationError(f"every must be >= 1, got {every}")
        self.stride = every

    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """The effective sampling rate (1/stride)."""
        return 1.0 / self.stride

    def sample(self, round_index: int) -> bool:
        """Whether ``round_index`` is a sampled (detailed) round."""
        return round_index % self.stride == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoundSampler(every={self.stride})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RoundSampler) and other.stride == self.stride

    def __hash__(self) -> int:
        return hash((RoundSampler, self.stride))


#: Shared sampler that samples every round (full detail).
ALWAYS = RoundSampler(every=1)


def resolve_sampler(
    sampler: Optional[RoundSampler] = None,
    *,
    every: Optional[int] = None,
    rate: Optional[float] = None,
) -> RoundSampler:
    """One sampler from whichever configuration style the caller used.

    Precedence: an explicit ``sampler`` wins; otherwise ``every``/``rate``
    build one; with nothing given the result samples every round.
    """
    if sampler is not None:
        if every is not None or rate is not None:
            raise ConfigurationError(
                "pass either a sampler or every/rate, not both"
            )
        return sampler
    return RoundSampler(every=every, rate=rate)
