"""Paper-grounded invariant probes, implemented as engine observers.

Each probe watches one quantity the paper argues about (see DESIGN.md for
the section mapping):

- :class:`FlowMagnitudeProbe` — per-round max/mean flow magnitude and the
  flow-to-weight ratio. This is the Figs. 2–3 blow-up signal: push-flow's
  flows grow ~linearly with ``n`` while its estimates stay O(1), so the
  estimate subtraction cancels catastrophically; PCF's stay bounded.
- :class:`MassConservationProbe` — checks that the summed
  (value, weight) mass of the live nodes stays within a configurable
  relative tolerance of the conserved total (Sec. II: flow conservation
  implies global mass conservation). Transient drift after message loss or
  between a failure and its handling is exactly what the probe surfaces;
  drift that persists (push-sum under loss, PCF deadlock mass drain) is
  flagged as a violation.
- :class:`PCFCancellationProbe` — cancellation-handshake progress
  (Sec. III-A): passive-flow magnitude (driven to zero each era), the era
  counters, and the cumulative cancel/swap counts.

Probes duck-type over all engines: the object engines expose
``algorithms`` (whose flow protocols implement ``max_flow_magnitude`` /
``conserved_mass``), the vectorized engines expose array-level
equivalents (``node_flow_magnitudes`` / ``estimate_pairs``). Engines
without the relevant state (e.g. push-sum and the flow probe) are
silently skipped, so a probe can be attached to any run.

Every probe appends plain-dict ``records`` (one per sampled round, with a
``type`` tag) and ``violations``; the telemetry session merges these into
its ``trace.jsonl`` dump.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.state import MassPair
from repro.simulation.observers import Observer
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sampling import RoundSampler, resolve_sampler

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.engine import SynchronousEngine

_TINY = 1e-300


class _SamplingProbe(Observer):
    """Shared thinning + record/violation storage for the probes.

    ``sampler`` is the telemetry-wide round sampler; ``every`` builds one
    (both default to sampling every round).
    """

    def __init__(
        self,
        *,
        every: Optional[int] = None,
        sampler: Optional[RoundSampler] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._sampler = resolve_sampler(sampler, every=every)
        self._registry = registry
        self.records: List[Dict[str, object]] = []
        self.violations: List[Dict[str, object]] = []

    def wants_detail(self, round_index: int) -> bool:
        # Probes sample engine state at round boundaries only.
        return False

    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        if self._sampler.sample(round_index):
            self.sample(engine, round_index)

    def on_run_end(self, engine: "SynchronousEngine", rounds_executed: int) -> None:
        # Always capture the final state, even on thinned traces.
        last = self.records[-1]["round"] if self.records else None
        final_round = _engine_round(engine) - 1
        if final_round >= 0 and last != final_round:
            self.sample(engine, final_round)

    def sample(self, engine: "SynchronousEngine", round_index: int) -> None:
        raise NotImplementedError  # pragma: no cover


def _engine_round(engine: object) -> int:
    rounds = getattr(engine, "round", None)
    if rounds is not None:
        return int(rounds)
    now = getattr(engine, "now", None)  # async engine: rounds-equivalents
    return int(now) if now is not None else 0


def _conserved_total(algorithms) -> Tuple[MassPair, int]:
    total: Optional[MassPair] = None
    for alg in algorithms:
        conserved = alg.conserved_mass()
        total = conserved if total is None else total + conserved
    assert total is not None
    return total, len(algorithms)


def _object_algorithms(engine: object):
    algorithms = getattr(engine, "algorithms", None)
    if algorithms is None:
        return None
    live = getattr(engine, "live_nodes", None)
    if live is not None:
        return [algorithms[i] for i in live()]
    return list(algorithms)


def _live_node_ids(engine: object) -> Optional[frozenset]:
    """The live-node id set of an object engine (None when not exposed)."""
    live = getattr(engine, "live_nodes", None)
    return frozenset(live()) if live is not None else None


def flow_stats(engine: object) -> Optional[Tuple[float, float, float]]:
    """``(max_flow, mean_flow, flow_weight_ratio)`` for any engine.

    Duck-types over the vectorized flow engines (``node_flow_magnitudes``)
    and the object engines (per-algorithm ``max_flow_magnitude``); returns
    None when the run carries no flow state (e.g. push-sum). Shared by
    :class:`FlowMagnitudeProbe` and the blow-up detector in
    :mod:`repro.tracing.anomaly`.
    """
    node_mags = getattr(engine, "node_flow_magnitudes", None)
    if node_mags is not None:  # vectorized flow engine
        mags = np.asarray(node_mags())
        _, weights = engine.estimate_pairs()  # type: ignore[attr-defined]
        mean_weight = float(np.mean(np.abs(weights)))
    else:
        algorithms = _object_algorithms(engine)
        if algorithms is None:
            return None
        flow_algs = [
            alg for alg in algorithms if hasattr(alg, "max_flow_magnitude")
        ]
        if not flow_algs:
            return None
        mags = np.array([alg.max_flow_magnitude() for alg in flow_algs])
        weights = [abs(alg.estimate_pair().weight) for alg in algorithms]
        mean_weight = float(np.mean(weights)) if weights else 0.0
    if mags.size == 0:
        return None
    max_flow = float(np.max(mags))
    mean_flow = float(np.mean(mags))
    ratio = max_flow / max(mean_weight, _TINY)
    return max_flow, mean_flow, ratio


def pcf_stats(engine: object) -> Optional[Tuple[float, int, int, int]]:
    """``(passive_flow, era_max, cancellations, swaps)`` for any engine.

    None when the run carries no PCF handshake state. Shared by
    :class:`PCFCancellationProbe` and the cancellation-stall detector in
    :mod:`repro.tracing.anomaly`.
    """
    cancels = getattr(engine, "cancellations", None)
    if cancels is not None:  # vectorized PCF engine
        swaps = int(getattr(engine, "swaps", getattr(engine, "catch_ups", 0)))
        passive = float(engine.passive_flow_magnitude())  # type: ignore[attr-defined]
        era = int(engine.max_era())  # type: ignore[attr-defined]
        return passive, era, int(cancels), swaps
    algorithms = _object_algorithms(engine)
    if algorithms is None:
        return None
    pcf_algs = [
        alg
        for alg in algorithms
        if hasattr(alg, "cancellations") and hasattr(alg, "edge_state")
    ]
    if not pcf_algs:
        return None
    passive = 0.0
    era = 0
    total_cancels = 0
    total_swaps = 0
    for alg in pcf_algs:
        total_cancels += alg.cancellations
        total_swaps += int(getattr(alg, "swaps", getattr(alg, "catch_ups", 0)))
        for neighbor in alg.neighbors:
            edge = alg.edge_state(neighbor)
            passive = max(passive, edge.passive_flow().magnitude())
            era = max(era, edge.era)
    return passive, era, total_cancels, total_swaps


class FlowMagnitudeProbe(_SamplingProbe):
    """Per-round flow-magnitude statistics (the Figs. 2–3 signal).

    Records ``max_flow`` (largest stored flow magnitude anywhere),
    ``mean_flow`` (mean over nodes of each node's largest flow) and
    ``flow_weight_ratio`` — ``max_flow`` divided by the mean live weight
    mass. Estimates keep weights O(1), so a growing ratio is precisely
    the "flows grow with n while estimates do not" diagnosis.
    """

    record_type = "flow"

    def __init__(
        self,
        *,
        every: Optional[int] = None,
        sampler: Optional[RoundSampler] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(every=every, sampler=sampler, registry=registry)
        if registry is not None:
            self._g_max = registry.gauge(
                "repro_flow_magnitude_max", "Largest stored flow magnitude"
            )
            self._g_mean = registry.gauge(
                "repro_flow_magnitude_mean", "Mean per-node max flow magnitude"
            )
            self._g_ratio = registry.gauge(
                "repro_flow_weight_ratio", "Max flow / mean weight mass"
            )

    def sample(self, engine: "SynchronousEngine", round_index: int) -> None:
        stats = flow_stats(engine)
        if stats is None:
            return
        max_flow, mean_flow, ratio = stats
        self.records.append(
            {
                "type": self.record_type,
                "round": round_index,
                "max_flow": max_flow,
                "mean_flow": mean_flow,
                "flow_weight_ratio": ratio,
            }
        )
        if self._registry is not None:
            self._g_max.set(max_flow)
            self._g_mean.set(mean_flow)
            self._g_ratio.set(ratio)

    def max_flow_series(self) -> List[float]:
        """The recorded ``max_flow`` trajectory (probe's headline output)."""
        return [float(r["max_flow"]) for r in self.records]


class MassDriftTracker:
    """Stateful relative mass-drift computation, shared across consumers.

    Captures the conserved-mass baseline at run start (``start``) and
    reports the relative deviation of the current live totals from it
    (``drift``), duck-typed over vectorized and object engines. The
    object-engine baseline is re-based whenever the live-node *membership*
    changes (not merely the count, so a same-round leave-plus-join under
    churn still re-bases), since fail-stop removal and dynamic-topology
    churn both legitimately move mass. A rejoining node re-enters with its
    initial conserved share, so post-rejoin drift measures exactly the
    mass the protocol failed to restore — zero for push-flow, the
    orphaned cancelled-flow residual for PCF. Used by
    :class:`MassConservationProbe` for violation records and by
    :class:`repro.tracing.flight.FlightRecorder` for its black-box
    trigger, so both agree on what "drift" means.
    """

    def __init__(self) -> None:
        self._baseline: Optional[Tuple[np.ndarray, float]] = None
        self._obj_baseline: Optional[MassPair] = None
        self._obj_members: Optional[frozenset] = None

    def start(self, engine: object) -> None:
        """Capture the baseline from a freshly constructed engine."""
        pairs = getattr(engine, "estimate_pairs", None)
        if pairs is not None:  # vectorized engine: flows start at zero
            values, weights = pairs()
            self._baseline = (
                np.sum(np.asarray(values), axis=0),
                float(np.sum(weights)),
            )
            return
        algorithms = _object_algorithms(engine)
        if algorithms:
            self._obj_baseline = _conserved_total(algorithms)[0]
            members = _live_node_ids(engine)
            self._obj_members = (
                members
                if members is not None
                else frozenset(range(len(algorithms)))
            )

    def drift(self, engine: object) -> Optional[float]:
        """Relative deviation from the baseline; inf when non-finite."""
        pairs = getattr(engine, "estimate_pairs", None)
        if pairs is not None:  # vectorized engine
            values, weights = pairs()
            current = (
                np.sum(np.asarray(values), axis=0),
                float(np.sum(weights)),
            )
            if self._baseline is None:
                self._baseline = current
                return 0.0
            if not (
                np.all(np.isfinite(current[0])) and math.isfinite(current[1])
            ):
                return float("inf")
            exp_v, exp_w = self._baseline
            scale = max(float(np.max(np.abs(exp_v))), abs(exp_w), _TINY)
            deviation = max(
                float(np.max(np.abs(current[0] - exp_v))),
                abs(current[1] - exp_w),
            )
            return deviation / scale
        algorithms = _object_algorithms(engine)
        if not algorithms:
            return None
        members = _live_node_ids(engine)
        if members is None:
            members = frozenset(range(len(algorithms)))
        if self._obj_baseline is None or members != self._obj_members:
            # First sample, or the live membership changed (fail-stop or
            # churn): (re-)base the expected total on the survivors'
            # conserved shares.
            self._obj_baseline = _conserved_total(algorithms)[0]
            self._obj_members = members
        expected = self._obj_baseline
        current_pair: Optional[MassPair] = None
        for alg in algorithms:
            estimate = alg.estimate_pair()
            current_pair = (
                estimate if current_pair is None else current_pair + estimate
            )
        assert current_pair is not None
        if not current_pair.is_finite():
            return float("inf")
        deviation = (current_pair - expected).magnitude()
        return deviation / max(expected.magnitude(), _TINY)


class MassConservationProbe(_SamplingProbe):
    """Checks global mass conservation within a relative tolerance.

    The expected mass is the sum over live nodes of ``conserved_mass()``,
    captured as a baseline at run start (so push-sum's silent mass leak
    under message loss is caught instead of compared against itself) and
    re-based whenever the live-node set changes (fail-stop legitimately
    removes mass). The observed quantity is the sum of the live estimate
    pairs; their relative deviation is the *drift*, and sampled rounds
    where it exceeds ``tolerance`` become violations.

    Two kinds of over-tolerance drift are *expected* and self-healing, and
    show up as transient spikes rather than persistent offsets: a lost
    flow-carrying message (healed by the next successful exchange on the
    edge), and a PF message crossing — both endpoints of an edge gossiping
    with each other in one round overwrite each other's virtual send, so
    pairwise antisymmetry breaks until the edge is next exchanged cleanly.
    Persistent drift is the fault signal (push-sum under loss, PF's
    flow-zeroing estimate jump on link failure, PCF deadlock mass drain).
    """

    record_type = "mass"

    def __init__(
        self,
        *,
        tolerance: float = 1e-9,
        every: Optional[int] = None,
        sampler: Optional[RoundSampler] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(every=every, sampler=sampler, registry=registry)
        if tolerance <= 0:
            raise ValueError(f"tolerance must be > 0, got {tolerance}")
        self.tolerance = float(tolerance)
        self._tracker = MassDriftTracker()
        if registry is not None:
            self._g_drift = registry.gauge(
                "repro_mass_drift_relative", "Relative global mass drift"
            )
            self._c_violations = registry.counter(
                "repro_invariant_violations_total",
                "Invariant-probe violations",
            )

    def on_run_start(self, engine: "SynchronousEngine") -> None:
        self._tracker.start(engine)

    def _drift(self, engine: object) -> Optional[float]:
        return self._tracker.drift(engine)

    def sample(self, engine: "SynchronousEngine", round_index: int) -> None:
        drift = self._drift(engine)
        if drift is None:
            return
        violated = drift > self.tolerance
        self.records.append(
            {
                "type": self.record_type,
                "round": round_index,
                "drift": drift,
                "violated": violated,
            }
        )
        if violated:
            self.violations.append(
                {
                    "type": "violation",
                    "probe": "mass_conservation",
                    "round": round_index,
                    "drift": drift,
                    "tolerance": self.tolerance,
                }
            )
        if self._registry is not None:
            self._g_drift.set(drift)
            if violated:
                self._c_violations.inc(probe="mass_conservation")

    def worst_drift(self) -> float:
        return max(
            (float(r["drift"]) for r in self.records), default=0.0
        )


class PCFCancellationProbe(_SamplingProbe):
    """Cancellation-handshake progress of the PCF protocols (Sec. III-A).

    Tracks the largest passive-flow magnitude (cooperatively driven to
    zero once per era), the highest era counter reached, and the
    cumulative cancel / role-swap (or catch-up, for the hardened
    handshake) counts.
    """

    record_type = "pcf"

    def __init__(
        self,
        *,
        every: Optional[int] = None,
        sampler: Optional[RoundSampler] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(every=every, sampler=sampler, registry=registry)
        if registry is not None:
            self._g_passive = registry.gauge(
                "repro_pcf_passive_flow_magnitude",
                "Largest passive-slot flow magnitude",
            )
            self._g_era = registry.gauge(
                "repro_pcf_era_max", "Highest role-swap era reached"
            )
            self._g_cancels = registry.gauge(
                "repro_pcf_cancellations_total", "Cumulative cancel events"
            )
            self._g_swaps = registry.gauge(
                "repro_pcf_role_swaps_total",
                "Cumulative role swaps / catch-ups",
            )

    def sample(self, engine: "SynchronousEngine", round_index: int) -> None:
        stats = pcf_stats(engine)
        if stats is None:
            return
        passive, era, cancels, swaps = stats
        self.records.append(
            {
                "type": self.record_type,
                "round": round_index,
                "passive_flow": passive,
                "era_max": era,
                "cancellations": cancels,
                "swaps": swaps,
            }
        )
        if self._registry is not None:
            self._g_passive.set(passive)
            self._g_era.set(era)
            self._g_cancels.set(cancels)
            self._g_swaps.set(swaps)


class FaultTimelineProbe(Observer):
    """Records every fault activation, drop and handling as timeline events.

    The observability companion to the fault injectors: the resulting
    event list (merged into ``trace.jsonl`` by the session) is the "how do
    faults propagate" record the report tool renders as a timeline.
    """

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []

    def on_fault_injected(
        self, engine: "SynchronousEngine", round_index: int, kind: str, detail: str
    ) -> None:
        self.events.append(
            {
                "type": "fault",
                "round": round_index,
                "kind": kind,
                "detail": detail,
            }
        )

    def on_link_handled(
        self, engine: "SynchronousEngine", round_index: int, u: int, v: int
    ) -> None:
        self.events.append(
            {
                "type": "fault",
                "round": round_index,
                "kind": "link_handled",
                "detail": f"link({u},{v})",
            }
        )
