"""Telemetry: metrics registry, engine collectors, invariant probes.

The observability layer for the reduction engines. Three pieces compose:

- :mod:`repro.telemetry.registry` — a label-aware Counter/Gauge/Histogram
  registry with JSONL, CSV and Prometheus text exporters;
- :mod:`repro.telemetry.collector` / :mod:`repro.telemetry.phase` /
  :mod:`repro.telemetry.probes` — observers translating engine hooks into
  metrics, phase wall-time profiles, and the paper-grounded invariant
  probes (flow-magnitude growth, mass conservation, PCF cancellation
  progress);
- :mod:`repro.telemetry.session` — ambient capture
  (``with telemetry.capture(path): ...``) that auto-instruments every
  engine constructed inside the window and dumps metrics + trace JSONL,
  summarized by ``python -m repro.telemetry.report``.
"""

from repro.telemetry.collector import TelemetryCollector
from repro.telemetry.phase import PhaseTimer
from repro.telemetry.probes import (
    FaultTimelineProbe,
    FlowMagnitudeProbe,
    MassConservationProbe,
    PCFCancellationProbe,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    SNAPSHOT_FORMAT,
    parse_prometheus_text,
)
from repro.telemetry.sampling import (
    ALWAYS,
    DEFAULT_SAMPLE_EVERY,
    RoundSampler,
    resolve_sampler,
)
from repro.telemetry.session import TelemetrySession, capture, current

__all__ = [
    "ALWAYS",
    "DEFAULT_SAMPLE_EVERY",
    "RoundSampler",
    "resolve_sampler",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "SNAPSHOT_FORMAT",
    "parse_prometheus_text",
    "TelemetryCollector",
    "PhaseTimer",
    "FlowMagnitudeProbe",
    "MassConservationProbe",
    "PCFCancellationProbe",
    "FaultTimelineProbe",
    "TelemetrySession",
    "capture",
    "current",
]
