"""Summarize a telemetry dump: ``python -m repro.telemetry.report <dir>``.

Reads the ``metrics.jsonl`` + ``trace.jsonl`` written by a telemetry
session (``--telemetry`` on the experiments CLI, or
:func:`repro.telemetry.capture`) and prints four ASCII tables:

1. **Phase profile** — where rounds spend wall-clock time, slowest first;
2. **Counters** — messages sent/dropped (by reason), faults, rounds;
3. **Flow-magnitude trajectory** — per instrumented run, the first/peak/
   final max-flow the probe saw plus the final flow/weight ratio (PF's
   blow-up reads as peak >> final estimates; PCF's stays flat);
4. **Invariant violations & fault timeline** — mass-conservation drift
   events and the injected-fault record.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError
from repro.experiments.tables import render_table


def _read_jsonl(path: pathlib.Path) -> List[Dict[str, object]]:
    if not path.exists():
        raise ExperimentError(f"telemetry dump is missing {path.name} ({path})")
    records = []
    for line_no, line in enumerate(path.read_text().splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ExperimentError(
                f"{path}:{line_no}: invalid JSON line: {exc}"
            ) from exc
    return records


def _none_to_nan(value: object) -> float:
    return float("nan") if value is None else float(value)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def phase_profile(metrics: Sequence[Dict[str, object]]) -> str:
    rows: List[List[object]] = []
    for sample in metrics:
        if sample.get("name") != "repro_phase_seconds":
            continue
        labels = sample.get("labels", {})
        count = int(sample.get("count", 0))
        total = _none_to_nan(sample.get("sum"))
        rows.append(
            [
                labels.get("engine", "?"),
                labels.get("phase", "?"),
                count,
                total,
                total / count if count else 0.0,
                _none_to_nan(sample.get("max")),
            ]
        )
    rows.sort(key=lambda r: (r[3] != r[3], -r[3] if r[3] == r[3] else 0.0))
    if not rows:
        return "Phase profile: no phase timings recorded."
    return "Phase profile (top phases by total wall time)\n" + render_table(
        ["engine", "phase", "count", "total_s", "mean_s", "max_s"], rows
    )


def counter_summary(metrics: Sequence[Dict[str, object]]) -> str:
    rows: List[List[object]] = []
    for sample in metrics:
        if sample.get("type") != "counter":
            continue
        labels: Dict[str, object] = sample.get("labels", {})  # type: ignore[assignment]
        label_text = ",".join(
            f"{k}={v}" for k, v in sorted(labels.items())
        )
        rows.append(
            [sample.get("name"), label_text, _none_to_nan(sample.get("value"))]
        )
    if not rows:
        return "Counters: none recorded."
    rows.sort(key=lambda r: (str(r[0]), str(r[1])))
    return "Counters\n" + render_table(["counter", "labels", "value"], rows)


def flow_trajectories(trace: Sequence[Dict[str, object]]) -> str:
    by_run: Dict[Tuple[int, str, str], List[Dict[str, object]]] = {}
    for record in trace:
        if record.get("type") != "flow":
            continue
        key = (
            int(record.get("run", -1)),  # type: ignore[arg-type]
            str(record.get("algorithm", "?")),
            str(record.get("engine", "?")),
        )
        by_run.setdefault(key, []).append(record)
    if not by_run:
        return "Flow-magnitude trajectory: no flow probe samples."
    rows: List[List[object]] = []
    for (run, algorithm, engine), samples in sorted(by_run.items()):
        samples.sort(key=lambda r: int(r.get("round", 0)))  # type: ignore[arg-type]
        flows = [_none_to_nan(s.get("max_flow")) for s in samples]
        rows.append(
            [
                run,
                algorithm,
                engine,
                len(samples),
                flows[0],
                max(flows),
                flows[-1],
                _none_to_nan(samples[-1].get("flow_weight_ratio")),
            ]
        )
    return "Flow-magnitude trajectory (per instrumented run)\n" + render_table(
        [
            "run",
            "algorithm",
            "engine",
            "samples",
            "first_max_flow",
            "peak_max_flow",
            "final_max_flow",
            "final_flow/weight",
        ],
        rows,
    )


def violation_summary(trace: Sequence[Dict[str, object]]) -> str:
    violations = [r for r in trace if r.get("type") == "violation"]
    if not violations:
        return "Invariant violations: none."
    # Final drift per run discriminates persistent non-conservation (a real
    # fault signal) from self-healing spikes (loss, PF message crossings).
    final_drift: Dict[int, float] = {}
    for record in trace:
        if record.get("type") == "mass":
            run = int(record.get("run", -1))  # type: ignore[arg-type]
            final_drift[run] = _none_to_nan(record.get("drift"))
    by_run: Dict[Tuple[int, str, str], List[Dict[str, object]]] = {}
    for record in violations:
        key = (
            int(record.get("run", -1)),  # type: ignore[arg-type]
            str(record.get("algorithm", "?")),
            str(record.get("probe", "?")),
        )
        by_run.setdefault(key, []).append(record)
    rows: List[List[object]] = []
    for (run, algorithm, probe), records in sorted(by_run.items()):
        drifts = [_none_to_nan(r.get("drift")) for r in records]
        rounds = [int(r.get("round", 0)) for r in records]  # type: ignore[arg-type]
        rows.append(
            [
                run,
                algorithm,
                probe,
                len(records),
                max(drifts),
                final_drift.get(run, float("nan")),
                min(rounds),
                max(rounds),
            ]
        )
    return "Invariant violations\n" + render_table(
        [
            "run",
            "algorithm",
            "probe",
            "events",
            "worst_drift",
            "final_drift",
            "first",
            "last",
        ],
        rows,
    )


def fault_timeline(
    trace: Sequence[Dict[str, object]], *, max_rows: int = 40
) -> str:
    faults = [r for r in trace if r.get("type") == "fault"]
    if not faults:
        return "Fault timeline: no faults recorded."
    faults.sort(
        key=lambda r: (
            int(r.get("run", -1)),  # type: ignore[arg-type]
            int(r.get("round", 0)),  # type: ignore[arg-type]
        )
    )
    rows: List[List[object]] = [
        [
            record.get("run"),
            record.get("round"),
            record.get("kind"),
            record.get("detail"),
            record.get("algorithm"),
        ]
        for record in faults[:max_rows]
    ]
    table = render_table(
        ["run", "round", "kind", "detail", "algorithm"], rows
    )
    suffix = (
        f"\n... {len(faults) - max_rows} more fault events"
        if len(faults) > max_rows
        else ""
    )
    return f"Fault timeline ({len(faults)} events)\n" + table + suffix


def render_report(directory: pathlib.Path, *, max_rows: int = 40) -> str:
    metrics = _read_jsonl(directory / "metrics.jsonl")
    trace = _read_jsonl(directory / "trace.jsonl")
    sections = [
        f"Telemetry report — {directory}",
        phase_profile(metrics),
        counter_summary(metrics),
        flow_trajectories(trace),
        violation_summary(trace),
        fault_timeline(trace, max_rows=max_rows),
    ]
    return "\n\n".join(sections)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Summarize a telemetry dump (metrics.jsonl + trace.jsonl).",
    )
    parser.add_argument("path", help="telemetry dump directory")
    parser.add_argument(
        "--max-fault-rows",
        type=int,
        default=40,
        help="cap the fault-timeline table (default: 40)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        print(render_report(pathlib.Path(args.path), max_rows=args.max_fault_rows))
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. `report ... | head`
        sys.stderr.close()  # suppress the interpreter's epilogue warning
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
