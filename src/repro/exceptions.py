"""Exception hierarchy for the :mod:`repro` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class TopologyError(ReproError):
    """Raised for invalid or inconsistent network topologies."""


class ConfigurationError(ReproError):
    """Raised when an algorithm/engine/experiment is misconfigured."""


class SimulationError(ReproError):
    """Raised when a simulation reaches an inconsistent internal state."""


class ProtocolError(SimulationError):
    """Raised when an algorithm receives a message violating its protocol.

    Under fault injection protocol violations are expected and are *not*
    raised; this error only fires for programming mistakes (e.g. delivering
    a message from a node that is not a neighbor of the receiver).
    """


class ConvergenceError(ReproError):
    """Raised when a computation fails to reach its required accuracy."""


class LinalgError(ReproError):
    """Raised for distributed linear-algebra specific failures."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for unknown/invalid specs."""


class ServiceError(ReproError):
    """Base class for reduction-daemon failures (:mod:`repro.service`)."""


class QueueFullError(ServiceError):
    """Admission refused: the daemon's pending queue is at capacity.

    Backpressure, not failure — the caller should retry after draining
    some of its in-flight jobs.
    """


class QuotaExceededError(ServiceError):
    """Admission refused: the tenant is at its in-flight job quota."""


class JobFailedError(ServiceError):
    """A submitted job exhausted its retries or deadline without a result."""
