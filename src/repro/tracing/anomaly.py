"""Online anomaly detectors for the paper's failure signatures.

Each detector is an observer that watches one pathology the paper (or this
reproduction's findings) documents, and raises a structured *alert* when
its signature appears — into its ``alerts`` list, the shared metrics
registry (``repro_anomaly_alerts_total{detector=}``), and the causal trace
when a :class:`~repro.tracing.tracer.CausalTracer` is attached. DESIGN.md
maps each detector to its paper figure; the thresholds were tuned on the
repo's own reproduction runs (see the class docstrings).

- :class:`FlowBlowupDetector` — Figs. 2–3: push-flow's stored flows grow
  ~linearly with ``n`` while estimates stay O(1), so the estimate
  subtraction cancels catastrophically. Signature: the flow-to-weight
  ratio stays above ``ratio_threshold`` for ``patience`` consecutive
  samples. On the Fig. 2 bus case study (n=32) PF sustains a ratio of
  23–27 while (hardened) PCF stays below ~12 after the initial transient.
- :class:`RestartRegressionDetector` — Fig. 4: PF's link-failure handling
  zeroes the failed link's flows, throwing the estimates back to
  near-initial error; PCF restores flows cooperatively and barely moves.
  Signature: estimate spread within ``window`` rounds after a handled
  failure exceeds ``regression_factor`` times the pre-failure spread
  (hypercube n=64 reproduction: PF regresses ~1000x, PCF ~2.5x).
- :class:`PCFCancellationStallDetector` — the Fig. 5 handshake's
  message-crossing deadlock (reproduction finding F1): a stalled edge
  swallows every half-estimate "sent" into it, so the global weight mass
  drains toward zero while healthy PCF keeps it at O(n). Signature: live
  weight mass below ``drain_fraction`` of its baseline for ``patience``
  consecutive samples (bus n=64: plain PCF drains 78 -> 0.003 by round
  20000; the hardened handshake stays at ~80).
- :class:`PartitionHealDetector` — dynamic networks (repro.dynamics): a
  partition or regional outage opens an *episode*; the detector alerts
  ``never_healed`` when no restoring topology event arrives within
  ``heal_window`` rounds, and ``no_reconvergence`` when the estimate
  spread fails to collapse back down within ``reconverge_window`` rounds
  after the heal (push-flow reconverges exactly; a diverged component
  that never reconnects keeps the global spread pinned at the gap
  between the component averages).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.simulation.observers import Observer
from repro.telemetry.probes import flow_stats, pcf_stats
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sampling import RoundSampler, resolve_sampler

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.engine import SynchronousEngine
    from repro.tracing.tracer import CausalTracer


def _live_weight_mass(engine: object) -> Optional[float]:
    """Summed live weight mass, duck-typed over all engines."""
    pairs = getattr(engine, "estimate_pairs", None)
    if pairs is not None:  # vectorized engine
        _, weights = pairs()
        return float(np.sum(weights))
    algorithms = getattr(engine, "algorithms", None)
    if algorithms is None:
        return None
    live = getattr(engine, "live_nodes", None)
    nodes = live() if live is not None else range(len(algorithms))
    return float(sum(algorithms[i].estimate_pair().weight for i in nodes))


def _estimate_spread(engine: object) -> Optional[float]:
    """Max-min over live node estimates (inf when any is non-finite)."""
    try:
        estimates = np.array(
            [
                float(np.max(np.atleast_1d(np.asarray(e, dtype=np.float64))))
                for e in engine.estimates()  # type: ignore[attr-defined]
            ]
        )
    except (AttributeError, TypeError, ValueError):
        return None
    if estimates.size == 0:
        return None
    if not np.all(np.isfinite(estimates)):
        return float("inf")
    return float(estimates.max() - estimates.min())


class AnomalyDetector(Observer):
    """Base: sampled observation + structured alert plumbing."""

    name = "anomaly"

    def __init__(
        self,
        *,
        sampler: Optional[RoundSampler] = None,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional["CausalTracer"] = None,
    ) -> None:
        self._sampler = resolve_sampler(sampler)
        self._tracer = tracer
        self.alerts: List[Dict[str, object]] = []
        self._counter = (
            registry.counter(
                "repro_anomaly_alerts_total", "Anomaly-detector alerts"
            )
            if registry is not None
            else None
        )

    def wants_detail(self, round_index: int) -> bool:
        # Detectors read engine state at round boundaries only.
        return False

    @property
    def fired(self) -> bool:
        return bool(self.alerts)

    def attach_tracer(self, tracer: "CausalTracer") -> None:
        """Route future alerts into ``tracer`` as causal alert events."""
        self._tracer = tracer

    def _alert(self, round_index: int, **detail: object) -> None:
        self.alerts.append(
            {
                "type": "alert",
                "detector": self.name,
                "round": round_index,
                **detail,
            }
        )
        if self._counter is not None:
            self._counter.inc(detector=self.name)
        if self._tracer is not None:
            self._tracer.record_alert(round_index, self.name, dict(detail))

    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        if self._sampler.sample(round_index):
            self.observe(engine, round_index)

    def observe(self, engine: "SynchronousEngine", round_index: int) -> None:
        raise NotImplementedError  # pragma: no cover


class FlowBlowupDetector(AnomalyDetector):
    """Figs. 2–3: flows growing far beyond the weight scale, sustained."""

    name = "flow_blowup"

    def __init__(
        self,
        *,
        ratio_threshold: float = 15.0,
        patience: int = 3,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self.ratio_threshold = float(ratio_threshold)
        self.patience = int(patience)
        self._over = 0
        self._last_ratio = 0.0

    def observe(self, engine: "SynchronousEngine", round_index: int) -> None:
        stats = flow_stats(engine)
        if stats is None:
            return
        max_flow, _, ratio = stats
        self._last_ratio = ratio
        if ratio >= self.ratio_threshold:
            self._over += 1
            if self._over == self.patience:  # alert once per excursion
                self._alert(
                    round_index,
                    flow_weight_ratio=ratio,
                    max_flow=max_flow,
                    threshold=self.ratio_threshold,
                    sustained_samples=self._over,
                )
        else:
            self._over = 0


class RestartRegressionDetector(AnomalyDetector):
    """Fig. 4: estimate spread regressing after a handled link failure."""

    name = "restart_regression"

    def __init__(
        self,
        *,
        regression_factor: float = 50.0,
        min_spread: float = 1e-9,
        window: int = 64,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self.regression_factor = float(regression_factor)
        self.min_spread = float(min_spread)
        self.window = int(window)
        self._last_spread: Optional[float] = None
        # (event_round, pre-failure spread) for each unalerted handling.
        self._pending: List[Tuple[int, float]] = []

    def on_link_handled(
        self, engine: "SynchronousEngine", round_index: int, u: int, v: int
    ) -> None:
        if self._last_spread is not None and self._last_spread > 0:
            self._pending.append((round_index, self._last_spread))

    def observe(self, engine: "SynchronousEngine", round_index: int) -> None:
        spread = _estimate_spread(engine)
        if spread is None:
            return
        still_pending: List[Tuple[int, float]] = []
        for event_round, pre_spread in self._pending:
            if round_index - event_round > self.window:
                continue  # expired without regression
            if (
                spread > self.regression_factor * pre_spread
                and spread > self.min_spread
            ):
                self._alert(
                    round_index,
                    event_round=event_round,
                    pre_spread=pre_spread,
                    post_spread=spread,
                    regression=spread / pre_spread,
                )
            else:
                still_pending.append((event_round, pre_spread))
        self._pending = still_pending
        self._last_spread = spread


class PCFCancellationStallDetector(AnomalyDetector):
    """Finding F1: crossing-deadlocked handshake draining the weight mass."""

    name = "pcf_stall"

    def __init__(
        self,
        *,
        drain_fraction: float = 0.5,
        patience: int = 3,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self.drain_fraction = float(drain_fraction)
        self.patience = int(patience)
        self._baseline: Optional[float] = None
        self._live_count: Optional[int] = None
        self._under = 0

    def observe(self, engine: "SynchronousEngine", round_index: int) -> None:
        if pcf_stats(engine) is None:
            return  # not a PCF run
        mass = _live_weight_mass(engine)
        if mass is None:
            return
        live = getattr(engine, "live_nodes", None)
        count = len(live()) if live is not None else None
        if self._baseline is None or count != self._live_count:
            # First sample, or fail-stop legitimately removed mass.
            self._baseline = mass
            self._live_count = count
            self._under = 0
            return
        if abs(mass) < self.drain_fraction * abs(self._baseline):
            self._under += 1
            if self._under == self.patience:  # alert once per drain
                self._alert(
                    round_index,
                    weight_mass=mass,
                    baseline=self._baseline,
                    drain_fraction=self.drain_fraction,
                )
        else:
            self._under = 0


class PartitionHealDetector(AnomalyDetector):
    """Dynamic networks: partitions that never heal, or heal without
    the estimates reconverging.

    A topology event labelled ``partition`` or ``outage`` opens an
    episode and snapshots the pre-partition estimate spread; any
    restoring event (``edge_up`` / ``node_join``) marks the heal. The
    detector alerts ``never_healed`` when the heal does not arrive
    within ``heal_window`` rounds, and ``no_reconvergence`` when, after
    the heal, the spread stays above
    ``max(reconverge_factor * pre_spread, spread_floor)`` for
    ``reconverge_window`` rounds. One episode is tracked at a time
    (overlapping cuts extend the open episode).
    """

    name = "partition_heal"

    #: Topology-event labels that open an episode. Per-node churn is
    #: excluded on purpose: individual leave/join pairs are routine, the
    #: detector watches *correlated* cuts.
    partition_labels = ("partition", "outage")

    def __init__(
        self,
        *,
        heal_window: int = 60,
        reconverge_window: int = 60,
        reconverge_factor: float = 10.0,
        spread_floor: float = 1e-6,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self.heal_window = int(heal_window)
        self.reconverge_window = int(reconverge_window)
        self.reconverge_factor = float(reconverge_factor)
        self.spread_floor = float(spread_floor)
        self._last_spread: Optional[float] = None
        self._episode: Optional[Dict[str, object]] = None

    def on_topology_event(
        self,
        engine: "SynchronousEngine",
        round_index: int,
        kind: str,
        detail: Dict[str, object],
    ) -> None:
        label = str(detail.get("label", ""))
        if kind in ("edge_down", "node_leave") and label in self.partition_labels:
            if self._episode is None:
                self._episode = {
                    "open_round": round_index,
                    "pre_spread": self._last_spread,
                    "heal_round": None,
                }
        elif kind in ("edge_up", "node_join"):
            if self._episode is not None and self._episode["heal_round"] is None:
                self._episode["heal_round"] = round_index

    def observe(self, engine: "SynchronousEngine", round_index: int) -> None:
        spread = _estimate_spread(engine)
        if spread is not None:
            self._last_spread = spread
        episode = self._episode
        if episode is None:
            return
        open_round = int(episode["open_round"])  # type: ignore[arg-type]
        heal_round = episode["heal_round"]
        if heal_round is None:
            if round_index - open_round > self.heal_window:
                self._alert(
                    round_index,
                    reason="never_healed",
                    partition_round=open_round,
                    heal_window=self.heal_window,
                    spread=spread,
                )
                self._episode = None
            return
        if spread is None:
            return
        pre = episode["pre_spread"]
        target = max(
            self.reconverge_factor * float(pre) if pre is not None else 0.0,
            self.spread_floor,
        )
        if spread <= target:
            self._episode = None  # reconverged after the heal
        elif round_index - int(heal_round) > self.reconverge_window:  # type: ignore[arg-type]
            self._alert(
                round_index,
                reason="no_reconvergence",
                partition_round=open_round,
                heal_round=int(heal_round),  # type: ignore[arg-type]
                pre_spread=pre,
                post_spread=spread,
                target_spread=target,
            )
            self._episode = None


def default_detectors(
    *,
    sampler: Optional[RoundSampler] = None,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional["CausalTracer"] = None,
) -> List[AnomalyDetector]:
    """The standard detector set a telemetry session attaches per engine."""
    kwargs = {"sampler": sampler, "registry": registry, "tracer": tracer}
    return [
        FlowBlowupDetector(**kwargs),  # type: ignore[arg-type]
        RestartRegressionDetector(**kwargs),  # type: ignore[arg-type]
        PCFCancellationStallDetector(**kwargs),  # type: ignore[arg-type]
        PartitionHealDetector(**kwargs),  # type: ignore[arg-type]
    ]
