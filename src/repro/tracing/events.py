"""Causal trace event model.

A trace is an append-only sequence of :class:`TraceEvent` records forming a
DAG: every event names the events that causally precede it (``parents``).
The :class:`~repro.tracing.tracer.CausalTracer` builds this DAG from engine
observer hooks using the happens-before structure of gossip itself —

- a node's *frontier* is the last event that touched its local state;
- a ``send`` is caused by the sender's frontier (the virtual send mutates
  sender state, so it also advances the frontier);
- a ``deliver`` is caused by the receiver's frontier *and* the matching
  ``send`` (the cross-node edge that makes the trace causal rather than
  merely chronological);
- fault events and link handlings advance the frontier of every node whose
  protocol state they mutate.

Following ``parents`` backwards from any node's frontier therefore answers
"which sends/faults produced this estimate" — the provenance query of
:meth:`~repro.tracing.tracer.CausalTracer.provenance`.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, Optional, Tuple

from repro.simulation.trace import sanitize_record

#: Event kinds a tracer may emit.
EVENT_KINDS = (
    "run_start",
    "round",
    "send",
    "deliver",
    "drop",
    "fault",
    "link_handled",
    "topology",
    "alert",
    "run_end",
)


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One node in the causal DAG of a run.

    ``eid`` is unique and monotone within one tracer; ``parents`` holds the
    eids of the events that happen-before this one. ``node`` is the node
    whose state the event touched (None for global events such as round
    markers). ``detail`` is a small JSON-safe payload whose shape depends
    on ``kind`` (e.g. ``{"receiver": 3}`` for sends, ``{"reason": ...}``
    for drops, detector fields for alerts).
    """

    eid: int
    kind: str
    round: int
    node: Optional[int]
    parents: Tuple[int, ...]
    detail: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        return {
            "eid": self.eid,
            "kind": self.kind,
            "round": self.round,
            "node": self.node,
            "parents": list(self.parents),
            "detail": dict(self.detail),
        }

    def to_json(self) -> str:
        return json.dumps(sanitize_record(self.to_dict()))


def event_from_dict(payload: Dict[str, object]) -> TraceEvent:
    """Inverse of :meth:`TraceEvent.to_dict` (for reading events.jsonl)."""
    return TraceEvent(
        eid=int(payload["eid"]),  # type: ignore[arg-type]
        kind=str(payload["kind"]),
        round=int(payload["round"]),  # type: ignore[arg-type]
        node=None if payload.get("node") is None else int(payload["node"]),  # type: ignore[arg-type]
        parents=tuple(int(p) for p in payload.get("parents", ())),  # type: ignore[union-attr]
        detail=dict(payload.get("detail", {})),  # type: ignore[arg-type]
    )
