"""Causal tracer: builds the happens-before DAG of a run from engine hooks.

Attach a :class:`CausalTracer` to any engine (sync, async or vectorized)
and it records :class:`~repro.tracing.events.TraceEvent` records linked by
causal parent edges — see :mod:`repro.tracing.events` for the model. On
the object engines every send and delivery becomes an event, so an
estimate can be traced back through the exact message chain that produced
it (:meth:`CausalTracer.provenance`); the vectorized engines have no
per-message hooks, so there the trace carries round markers, faults and
alerts only.

The tracer honours the telemetry-wide sampling contract: with a thinned
:class:`~repro.telemetry.sampling.RoundSampler` it requests per-message
detail only on sampled rounds (causal chains then have gaps — fine for
dashboards, not for provenance; the ``trace`` CLI uses full sampling).
"""

from __future__ import annotations

import itertools
import json
import pathlib
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.simulation.observers import Observer
from repro.telemetry.sampling import RoundSampler, resolve_sampler
from repro.tracing.events import TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.engine import SynchronousEngine
    from repro.simulation.messages import Message


def _estimate_summary(engine: object) -> Dict[str, object]:
    """Cheap global estimate snapshot (same view TraceRecorder samples)."""
    try:
        estimates = [
            float(np.max(np.atleast_1d(np.asarray(e, dtype=np.float64))))
            for e in engine.estimates()  # type: ignore[attr-defined]
        ]
    except (AttributeError, TypeError, ValueError):
        return {}
    arr = np.asarray(estimates)
    finite = bool(np.all(np.isfinite(arr))) if arr.size else True
    return {
        "live": int(arr.size),
        "finite": finite,
        "estimate_min": float(arr.min()) if arr.size and finite else None,
        "estimate_max": float(arr.max()) if arr.size and finite else None,
        "messages_sent": int(getattr(engine, "messages_sent", 0)),
    }


class CausalTracer(Observer):
    """Records the causal event DAG of one engine run.

    ``max_events`` bounds memory: when exceeded, the oldest events are
    pruned (provenance walks simply stop at pruned parents; the count is
    kept in ``pruned_events``).
    """

    def __init__(
        self,
        *,
        sampler: Optional[RoundSampler] = None,
        max_events: int = 200_000,
    ) -> None:
        self._sampler = resolve_sampler(sampler)
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self._max_events = int(max_events)
        self._eids = itertools.count()
        self.events: Dict[int, TraceEvent] = {}
        self.pruned_events = 0
        # Per-node frontier: the last event that touched this node's state.
        self._frontier: Dict[int, int] = {}
        # In-flight sends: message identity -> send eid, with a per-channel
        # fallback because fault injectors may substitute a corrupted copy
        # (a different object) between send and delivery.
        self._inflight: Dict[int, int] = {}
        self._channel: Dict[Tuple[int, int], int] = {}
        self._fault_eids: Dict[str, int] = {}
        self._run_start_eid: Optional[int] = None

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------
    def _emit(
        self,
        kind: str,
        round_index: int,
        node: Optional[int],
        parents: Tuple[int, ...],
        detail: Dict[str, object],
    ) -> int:
        eid = next(self._eids)
        self.events[eid] = TraceEvent(
            eid=eid,
            kind=kind,
            round=round_index,
            node=node,
            parents=parents,
            detail=detail,
        )
        if len(self.events) > self._max_events:
            oldest = next(iter(self.events))
            del self.events[oldest]
            self.pruned_events += 1
        return eid

    def _node_parent(self, node: int) -> Tuple[int, ...]:
        parent = self._frontier.get(node, self._run_start_eid)
        return (parent,) if parent is not None else ()

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def wants_detail(self, round_index: int) -> bool:
        return self._sampler.sample(round_index)

    def on_run_start(self, engine: "SynchronousEngine") -> None:
        self._run_start_eid = self._emit(
            "run_start",
            0,
            None,
            (),
            {"engine": type(engine).__name__},
        )

    def on_message_sent(self, engine: "SynchronousEngine", message: "Message") -> None:
        eid = self._emit(
            "send",
            message.round,
            message.sender,
            self._node_parent(message.sender),
            {"receiver": message.receiver},
        )
        # The virtual send mutates sender state, so it advances the frontier.
        self._frontier[message.sender] = eid
        self._inflight[id(message)] = eid
        self._channel[(message.sender, message.receiver)] = eid

    def _send_eid(self, message: "Message") -> Optional[int]:
        eid = self._inflight.pop(id(message), None)
        if eid is None:
            eid = self._channel.get((message.sender, message.receiver))
        return eid if eid in self.events else None

    def on_message_delivered(
        self, engine: "SynchronousEngine", message: "Message"
    ) -> None:
        parents = self._node_parent(message.receiver)
        send_eid = self._send_eid(message)
        detail: Dict[str, object] = {"sender": message.sender}
        if send_eid is not None:
            # Name the matched send explicitly: the receiver's frontier
            # parent can itself be a send event, so parent *kind* alone
            # cannot identify which edge is the message arrow.
            detail["send_eid"] = send_eid
            if send_eid not in parents:
                parents = parents + (send_eid,)
        eid = self._emit(
            "deliver",
            message.round,
            message.receiver,
            parents,
            detail,
        )
        self._frontier[message.receiver] = eid

    def on_message_dropped(
        self, engine: "SynchronousEngine", message: "Message", reason: str
    ) -> None:
        send_eid = self._send_eid(message)
        self._emit(
            "drop",
            message.round,
            None,
            (send_eid,) if send_eid is not None else (),
            {
                "sender": message.sender,
                "receiver": message.receiver,
                "reason": reason,
            },
        )

    def on_fault_injected(
        self, engine: "SynchronousEngine", round_index: int, kind: str, detail: str
    ) -> None:
        eid = self._emit(
            "fault", round_index, None, (), {"kind": kind, "detail": detail}
        )
        self._fault_eids[detail] = eid

    def on_link_handled(
        self, engine: "SynchronousEngine", round_index: int, u: int, v: int
    ) -> None:
        parents = tuple(
            dict.fromkeys(self._node_parent(u) + self._node_parent(v))
        )
        fault_eid = self._fault_eids.get(f"link({u},{v})")
        if fault_eid is not None and fault_eid in self.events:
            parents = parents + (fault_eid,)
        # Handling mutates both endpoints' protocol state (flow zeroing /
        # cancellation), so the event becomes both nodes' new frontier.
        eid = self._emit(
            "link_handled", round_index, None, parents, {"u": u, "v": v}
        )
        self._frontier[u] = eid
        self._frontier[v] = eid

    def on_topology_event(
        self,
        engine: "SynchronousEngine",
        round_index: int,
        kind: str,
        detail: Dict[str, object],
    ) -> None:
        # Joins reset the node's protocol state and leaves/edge-downs run
        # the link-failure recovery on the named endpoints, so the event
        # becomes the new frontier of every directly named node. (Survivor
        # neighbours mutated by a leave get their own link_handled events.)
        edge = detail.get("edge")
        if edge is not None:
            affected: Tuple[int, ...] = (int(edge[0]), int(edge[1]))  # type: ignore[index]
        elif detail.get("node") is not None:
            affected = (int(detail["node"]),)  # type: ignore[arg-type]
        else:
            affected = ()
        parents: Tuple[int, ...] = ()
        for node in affected:
            parents = tuple(dict.fromkeys(parents + self._node_parent(node)))
        eid = self._emit(
            "topology", round_index, None, parents, dict(detail, kind=kind)
        )
        for node in affected:
            self._frontier[node] = eid

    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        if not self._sampler.sample(round_index):
            return
        self._emit(
            "round", round_index, None, (), _estimate_summary(engine)
        )

    def on_run_end(self, engine: "SynchronousEngine", rounds_executed: int) -> None:
        self._emit(
            "run_end",
            rounds_executed,
            None,
            (),
            _estimate_summary(engine),
        )

    # ------------------------------------------------------------------
    # Alerts (fed by the anomaly detectors)
    # ------------------------------------------------------------------
    def record_alert(
        self,
        round_index: int,
        detector: str,
        detail: Dict[str, object],
        *,
        node: Optional[int] = None,
    ) -> int:
        """Insert an alert event, parented to ``node``'s frontier if given."""
        parents = self._node_parent(node) if node is not None else ()
        return self._emit(
            "alert",
            round_index,
            node,
            parents,
            dict(detail, detector=detector),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def frontier(self, node: int) -> Optional[TraceEvent]:
        """The last recorded event that touched ``node``'s state."""
        eid = self._frontier.get(node)
        return self.events.get(eid) if eid is not None else None

    def provenance(self, node: int, *, limit: int = 200) -> List[TraceEvent]:
        """Causal history of ``node``'s current estimate, newest first.

        Walks parent edges breadth-first from the node's frontier —
        the sends, deliveries, faults and handlings that produced the
        estimate — up to ``limit`` events (pruned parents end the walk).
        """
        start = self._frontier.get(node)
        if start is None or start not in self.events:
            return []
        seen = {start}
        queue = [start]
        collected: List[TraceEvent] = []
        while queue and len(collected) < limit:
            eid = queue.pop(0)
            event = self.events.get(eid)
            if event is None:
                continue  # pruned
            collected.append(event)
            for parent in event.parents:
                if parent not in seen:
                    seen.add(parent)
                    queue.append(parent)
        collected.sort(key=lambda e: e.eid, reverse=True)
        return collected

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def dump_jsonl(self, path: Union[str, pathlib.Path]) -> int:
        """Write all events as JSON lines; returns the event count."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [event.to_json() for event in self.events.values()]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return len(lines)


def load_events(path: Union[str, pathlib.Path]) -> List[TraceEvent]:
    """Read an ``events.jsonl`` file back into :class:`TraceEvent` records."""
    from repro.tracing.events import event_from_dict

    events = []
    for line in pathlib.Path(path).read_text().splitlines():
        if line.strip():
            events.append(event_from_dict(json.loads(line)))
    return events
