"""Causal tracing, flight recording and anomaly detection.

The deep-observability layer on top of :mod:`repro.telemetry`:

- :mod:`repro.tracing.events` / :mod:`repro.tracing.tracer` — the causal
  span/event model: every send, delivery, fault and handling becomes an
  event in a happens-before DAG, so an estimate can be traced back through
  the message chain that produced it;
- :mod:`repro.tracing.chrome` — Chrome trace-event JSON export
  (Perfetto / ``chrome://tracing`` loadable) with per-node threads and
  message flow arrows;
- :mod:`repro.tracing.flight` — a bounded flight recorder that dumps a
  "black box" of recent events on non-finite estimates, mass drift,
  link-failure handling or an escaped exception;
- :mod:`repro.tracing.anomaly` — online detectors for the paper's failure
  signatures (Figs. 2–4 and the Fig. 5 crossing deadlock);
- :mod:`repro.tracing.cli` — ``python -m repro.experiments trace
  run|diff|query|validate``.
"""

from repro.tracing.anomaly import (
    AnomalyDetector,
    FlowBlowupDetector,
    PCFCancellationStallDetector,
    RestartRegressionDetector,
    default_detectors,
)
from repro.tracing.chrome import export_chrome_trace, validate_chrome_trace
from repro.tracing.events import TraceEvent
from repro.tracing.flight import FlightRecorder
from repro.tracing.tracer import CausalTracer, load_events

__all__ = [
    "AnomalyDetector",
    "CausalTracer",
    "FlightRecorder",
    "FlowBlowupDetector",
    "PCFCancellationStallDetector",
    "RestartRegressionDetector",
    "TraceEvent",
    "default_detectors",
    "export_chrome_trace",
    "load_events",
    "validate_chrome_trace",
]
