"""``python -m repro.experiments trace`` — causal-trace tooling.

Subcommands:

- ``trace run`` — execute one fully traced cell (algorithm x topology x
  fault x seed) and export ``events.jsonl`` (the causal DAG),
  ``chrome_trace.json`` (Perfetto-loadable), ``alerts.json`` and any
  flight-recorder dumps into ``--out``;
- ``trace diff`` — compare two exported traces (same seed/topology, e.g.
  PF vs PCF): per-kind event counts, alerts, and the first round where
  the estimate snapshots diverge;
- ``trace query`` — provenance of one node's estimate: the causal chain
  of sends/deliveries/handlings that produced it;
- ``trace validate`` — structurally validate an exported Chrome trace
  file (CI runs this on the smoke trace).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError


def _parse_fault(text: str) -> Dict[str, object]:
    """Fault shorthand: 'none', 'link_failure@75', 'message_loss@0.05'.

    A JSON object string (full :mod:`repro.faults.specs` grammar) is also
    accepted for anything the shorthand cannot express.
    """
    text = text.strip()
    if text.startswith("{"):
        return json.loads(text)
    if text == "none":
        return {"kind": "none"}
    if "@" not in text:
        raise ConfigurationError(
            f"fault shorthand must be 'kind@value' or 'none', got {text!r}"
        )
    kind, value = text.split("@", 1)
    if kind in ("link_failure", "node_failure"):
        return {"kind": kind, "round": int(value)}
    if kind == "message_loss":
        return {"kind": kind, "rate": float(value)}
    raise ConfigurationError(f"unsupported fault shorthand kind {kind!r}")


def run_traced_cell(
    *,
    algorithm: str,
    topology_family: str,
    n: int,
    rounds: int,
    seed: int = 0,
    fault: Optional[Dict[str, object]] = None,
    data_kind: str = "uniform",
    aggregate: str = "average",
    out_dir: pathlib.Path,
    sample_every: int = 1,
) -> Dict[str, object]:
    """Run one fully traced cell; returns a JSON-safe summary dict.

    The traced artifacts land in ``out_dir``: ``events.jsonl``,
    ``chrome_trace.json``, ``alerts.json``, plus flight-recorder dumps.
    ``sample_every=1`` (default) records full causality; larger strides
    thin per-message events the way sampled telemetry does.
    """
    from repro.algorithms.aggregates import (
        AggregateKind,
        initial_mass_pairs,
        true_aggregate,
    )
    from repro.algorithms.registry import instantiate
    from repro.campaigns.runner import _make_data
    from repro.faults.specs import build_faults
    from repro.metrics.history import ErrorHistory
    from repro.simulation.engine import SynchronousEngine
    from repro.simulation.schedule import UniformGossipSchedule
    from repro.telemetry.sampling import RoundSampler
    from repro.topology import registry as topology_registry
    from repro.tracing.anomaly import default_detectors
    from repro.tracing.chrome import export_chrome_trace
    from repro.tracing.flight import FlightRecorder
    from repro.tracing.tracer import CausalTracer

    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    topology = topology_registry.build(topology_family, n, seed=seed)
    data = _make_data(data_kind, topology.n, seed)
    kind = AggregateKind(aggregate)
    truth = true_aggregate(kind, list(data))
    initial = initial_mass_pairs(kind, list(data))
    algorithms = instantiate(algorithm, topology, initial)
    built = build_faults(fault or {"kind": "none"}, seed=seed)

    sampler = RoundSampler(every=sample_every)
    tracer = CausalTracer(sampler=sampler)
    flight = FlightRecorder(out_dir)
    detectors = default_detectors(sampler=sampler, tracer=tracer)
    history = ErrorHistory(truth)
    engine = SynchronousEngine(
        topology,
        algorithms,
        UniformGossipSchedule(topology.n, seed + 1000),
        message_fault=built.message_fault,
        fault_plan=built.fault_plan,
        observers=[history, tracer, flight, *detectors] + built.observers,
    )
    with flight.watch(engine):
        engine.run(rounds)

    events_path = out_dir / "events.jsonl"
    tracer.dump_jsonl(events_path)
    chrome_path = export_chrome_trace(
        tracer.events.values(),
        out_dir / "chrome_trace.json",
        run_name=f"{algorithm}/{topology_family}{n}/seed{seed}",
    )
    alerts = [alert for d in detectors for alert in d.alerts]
    (out_dir / "alerts.json").write_text(json.dumps(alerts, indent=1))
    summary = {
        "algorithm": algorithm,
        "topology": f"{topology_family}(n={n})",
        "fault": built.name,
        "seed": seed,
        "rounds": engine.round,
        "final_error": None
        if not history.max_errors
        else (
            history.final_max_error()
            if np.isfinite(history.final_max_error())
            else None
        ),
        "events": len(tracer.events),
        "pruned_events": tracer.pruned_events,
        "alerts": alerts,
        "flight_dumps": [str(p) for p in flight.dump_paths],
        "events_path": str(events_path),
        "chrome_path": str(chrome_path),
    }
    (out_dir / "summary.json").write_text(json.dumps(summary, indent=1))
    return summary


# ----------------------------------------------------------------------
# diff / query helpers (operate on exported events.jsonl)
# ----------------------------------------------------------------------
def diff_traces(
    dir_a: pathlib.Path, dir_b: pathlib.Path, *, tolerance: float = 1e-9
) -> Dict[str, object]:
    """Compare two exported traces; returns a JSON-safe report."""
    from repro.tracing.tracer import load_events

    reports = []
    rounds: List[Dict[int, Dict[str, object]]] = []
    for directory in (dir_a, dir_b):
        events = load_events(pathlib.Path(directory) / "events.jsonl")
        counts: Dict[str, int] = {}
        for event in events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        rounds.append(
            {e.round: e.detail for e in events if e.kind == "round"}
        )
        alerts = [
            dict(e.detail, round=e.round) for e in events if e.kind == "alert"
        ]
        reports.append(
            {"dir": str(directory), "counts": counts, "alerts": alerts}
        )
    shared = sorted(set(rounds[0]) & set(rounds[1]))
    first_divergence = None
    for r in shared:
        a, b = rounds[0][r], rounds[1][r]
        if a.get("finite") != b.get("finite"):
            first_divergence = {"round": r, "field": "finite"}
            break
        ea, eb = a.get("estimate_max"), b.get("estimate_max")
        if ea is not None and eb is not None and abs(ea - eb) > tolerance:
            first_divergence = {
                "round": r,
                "field": "estimate_max",
                "a": ea,
                "b": eb,
                "delta": abs(ea - eb),
            }
            break
    return {
        "a": reports[0],
        "b": reports[1],
        "compared_rounds": len(shared),
        "tolerance": tolerance,
        "first_divergence": first_divergence,
    }


def query_provenance(
    directory: pathlib.Path, node: int, *, limit: int = 50
) -> List[Dict[str, object]]:
    """Provenance of ``node``'s final state from an exported events.jsonl."""
    from repro.tracing.tracer import load_events

    events = load_events(pathlib.Path(directory) / "events.jsonl")
    by_eid = {e.eid: e for e in events}
    frontier = None
    for event in events:  # eid-ordered on export
        if event.node == node and event.kind in ("send", "deliver"):
            frontier = event.eid
        elif event.kind == "link_handled" and node in (
            event.detail.get("u"),
            event.detail.get("v"),
        ):
            frontier = event.eid
    if frontier is None:
        return []
    seen = {frontier}
    queue = [frontier]
    collected = []
    while queue and len(collected) < limit:
        eid = queue.pop(0)
        event = by_eid.get(eid)
        if event is None:
            continue
        collected.append(event)
        for parent in event.parents:
            if parent not in seen:
                seen.add(parent)
                queue.append(parent)
    collected.sort(key=lambda e: e.eid, reverse=True)
    return [e.to_dict() for e in collected]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments trace",
        description="Causal-trace tooling: run, diff, query, validate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one fully traced cell")
    run_p.add_argument("--algorithm", required=True)
    run_p.add_argument("--topology", default="hypercube")
    run_p.add_argument("--n", type=int, default=64)
    run_p.add_argument("--rounds", type=int, default=200)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--fault",
        default="none",
        help="'none', 'link_failure@R', 'node_failure@R', "
        "'message_loss@RATE', or a JSON fault spec",
    )
    run_p.add_argument(
        "--data", default="uniform", choices=["uniform", "spike", "log_uniform"]
    )
    run_p.add_argument("--out", required=True, metavar="DIR")
    run_p.add_argument(
        "--sample-every",
        type=int,
        default=1,
        metavar="N",
        help="thin per-message trace events to one round in N (default: 1)",
    )

    diff_p = sub.add_parser("diff", help="compare two exported traces")
    diff_p.add_argument("dir_a")
    diff_p.add_argument("dir_b")
    diff_p.add_argument("--tolerance", type=float, default=1e-9)

    query_p = sub.add_parser("query", help="provenance of a node's estimate")
    query_p.add_argument("directory")
    query_p.add_argument("--node", type=int, required=True)
    query_p.add_argument("--limit", type=int, default=50)

    val_p = sub.add_parser("validate", help="validate a Chrome trace file")
    val_p.add_argument("path")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        if args.sample_every < 1:
            print(f"--sample-every must be >= 1, got {args.sample_every}")
            return 2
        summary = run_traced_cell(
            algorithm=args.algorithm,
            topology_family=args.topology,
            n=args.n,
            rounds=args.rounds,
            seed=args.seed,
            fault=_parse_fault(args.fault),
            data_kind=args.data,
            out_dir=pathlib.Path(args.out),
            sample_every=args.sample_every,
        )
        print(json.dumps(summary, indent=1))
        return 0
    if args.command == "diff":
        report = diff_traces(
            pathlib.Path(args.dir_a),
            pathlib.Path(args.dir_b),
            tolerance=args.tolerance,
        )
        print(json.dumps(report, indent=1))
        return 0
    if args.command == "query":
        chain = query_provenance(
            pathlib.Path(args.directory), args.node, limit=args.limit
        )
        if not chain:
            print(f"no events recorded for node {args.node}")
            return 1
        for event in chain:
            print(json.dumps(event))
        return 0
    if args.command == "validate":
        from repro.tracing.chrome import validate_chrome_trace

        try:
            counts = validate_chrome_trace(args.path)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            print(f"INVALID: {exc}")
            return 1
        print(f"OK: {sum(counts.values())} events {counts}")
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
