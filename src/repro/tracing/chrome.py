"""Chrome trace-event export (Perfetto / ``chrome://tracing`` loadable).

Maps the causal event DAG onto the Trace Event Format's JSON object form:
one *thread* per node, one millisecond of trace time per gossip round
(simulated rounds have no wall-clock duration, so the scale is arbitrary
but uniform), and

- sends/deliveries as duration (``ph: "X"``) slices on the sender's /
  receiver's thread, linked by flow arrows (``ph: "s"`` / ``"f"``) so the
  viewer draws the causal message edge;
- faults, link handlings, drops and detector alerts as instant events
  (``ph: "i"``);
- round markers as instants on the global scope.

:func:`validate_chrome_trace` is the structural checker CI runs on an
exported file — JSON validity, required keys per phase type, and flow
arrow pairing.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Iterable, List, Union

from repro.simulation.trace import sanitize_record
from repro.tracing.events import TraceEvent

#: Trace-time microseconds per simulated round (1 ms/round).
US_PER_ROUND = 1000

#: Fraction of the round a send/deliver slice occupies.
_SLICE_US = 400


def _slice(
    name: str, ts: int, tid: int, args: Dict[str, object]
) -> Dict[str, object]:
    return {
        "name": name,
        "ph": "X",
        "ts": ts,
        "dur": _SLICE_US,
        "pid": 0,
        "tid": tid,
        "args": args,
    }


def _instant(
    name: str, ts: int, tid: int, args: Dict[str, object], scope: str = "t"
) -> Dict[str, object]:
    return {
        "name": name,
        "ph": "i",
        "ts": ts,
        "pid": 0,
        "tid": tid,
        "s": scope,
        "args": args,
    }


def chrome_events(events: Iterable[TraceEvent]) -> List[Dict[str, object]]:
    """Translate trace events into Chrome trace-event dicts."""
    events = list(events)
    # A delivery names its matched send in detail["send_eid"]; older
    # exports without it fall back to the send-kind parent. Either way the
    # arrow must bind to a *send* — the receiver's previous frontier parent
    # is not a flow start and would fail strict pairing validation.
    kind_of = {event.eid: event.kind for event in events}
    out: List[Dict[str, object]] = []
    for event in events:
        ts = event.round * US_PER_ROUND
        args: Dict[str, object] = dict(event.detail, eid=event.eid)
        if event.kind == "send":
            tid = event.node if event.node is not None else 0
            out.append(
                _slice(f"send->{event.detail.get('receiver')}", ts, tid, args)
            )
            out.append(
                {
                    "name": "message",
                    "cat": "message",
                    "ph": "s",
                    "id": event.eid,
                    "ts": ts,
                    "pid": 0,
                    "tid": tid,
                }
            )
        elif event.kind == "deliver":
            tid = event.node if event.node is not None else 0
            out.append(
                _slice(
                    f"recv<-{event.detail.get('sender')}",
                    ts + _SLICE_US,
                    tid,
                    args,
                )
            )
            # Bind the flow arrow to the send that produced this delivery.
            send_eid = event.detail.get("send_eid")
            if send_eid is None:
                send_eid = next(
                    (
                        parent
                        for parent in event.parents
                        if kind_of.get(parent) == "send"
                    ),
                    None,
                )
            if send_eid is not None and kind_of.get(send_eid) == "send":
                out.append(
                    {
                        "name": "message",
                        "cat": "message",
                        "ph": "f",
                        "bp": "e",
                        "id": send_eid,
                        "ts": ts + _SLICE_US,
                        "pid": 0,
                        "tid": tid,
                    }
                )
        elif event.kind == "round":
            out.append(_instant("round", ts, 0, args, scope="g"))
        elif event.kind in ("run_start", "run_end"):
            out.append(_instant(event.kind, ts, 0, args, scope="g"))
        elif event.kind == "alert":
            name = f"ALERT:{event.detail.get('detector', 'unknown')}"
            tid = event.node if event.node is not None else 0
            out.append(_instant(name, ts, tid, args, scope="g"))
        else:  # fault, link_handled, drop
            tid = event.node if event.node is not None else 0
            out.append(_instant(event.kind, ts, tid, args))
    return out


def export_chrome_trace(
    events: Iterable[TraceEvent],
    path: Union[str, pathlib.Path],
    *,
    run_name: str = "repro",
) -> pathlib.Path:
    """Write a Chrome trace JSON file for ``events``; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": [sanitize_record(e) for e in chrome_events(events)],
        "displayTimeUnit": "ms",
        "otherData": {"run": run_name},
    }
    path.write_text(json.dumps(payload))
    return path


def validate_chrome_trace(path: Union[str, pathlib.Path]) -> Dict[str, int]:
    """Structurally validate an exported Chrome trace file.

    Checks strict-JSON validity, the ``traceEvents`` envelope, per-event
    required keys, and that every flow-finish arrow has a matching start.
    Returns event counts by phase; raises ``ValueError`` on any problem.
    """
    text = pathlib.Path(path).read_text()
    payload = json.loads(text, parse_constant=_reject_constant)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("missing traceEvents envelope")
    trace_events = payload["traceEvents"]
    if not isinstance(trace_events, list) or not trace_events:
        raise ValueError("traceEvents must be a non-empty list")
    counts: Dict[str, int] = {}
    flow_starts = set()
    flow_ends = set()
    for i, event in enumerate(trace_events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {i} missing required key {key!r}")
        ph = event["ph"]
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "X" and "dur" not in event:
            raise ValueError(f"duration event {i} missing 'dur'")
        if ph in ("s", "f"):
            if "id" not in event:
                raise ValueError(f"flow event {i} missing 'id'")
            (flow_starts if ph == "s" else flow_ends).add(event["id"])
    unmatched = flow_ends - flow_starts
    if unmatched:
        raise ValueError(
            f"{len(unmatched)} flow-finish arrows have no matching start "
            f"(e.g. id={next(iter(unmatched))})"
        )
    return counts


def _reject_constant(name: str) -> float:
    raise ValueError(f"non-strict JSON constant {name!r} in trace file")
