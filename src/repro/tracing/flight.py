"""Flight recorder: a bounded black box dumped when a run goes wrong.

A :class:`FlightRecorder` keeps the last ``capacity`` engine events in a
ring buffer at O(1) cost per hook, and writes the whole buffer to a JSON
"black box" file the moment a failure signature appears:

- estimates staying non-finite for ``nonfinite_window`` consecutive
  rounds (``reason="non_finite"``) — a node whose effective weight
  crosses zero makes its estimate momentarily inf during early mixing
  (healthy hypercube-64 runs show streaks up to 4 rounds), so only a
  *persistent* non-finite state is treated as divergence;
- global mass drift beyond tolerance for ``mass_window`` *consecutive*
  rounds (``reason="mass_drift"``) — flow algorithms carry a permanent
  crossing-overwrite noise floor (relative drift 0.1–0.65 on healthy
  hypercube-64 runs; see :class:`repro.telemetry.probes.MassConservationProbe`),
  so the black box only reacts to sustained, catastrophic loss such as the
  PCF crossing-deadlock drain, not to self-healing spikes;
- a permanent link failure being handled (``reason="link_failure"``) —
  the paper's Figs. 4/7 moment, captured so the pre-failure context
  survives even if the run later diverges;
- an exception escaping the run when wrapped in :meth:`FlightRecorder.watch`
  (``reason="exception"``).

Dumps are bounded (``max_dumps`` total, one per distinct reason by
default) and sanitized through
:func:`repro.simulation.trace.sanitize_record`, so NaN/inf snapshots stay
valid JSON. The campaign runner records each cell's dump paths in
``results.jsonl``.
"""

from __future__ import annotations

import collections
import contextlib
import json
import pathlib
from typing import TYPE_CHECKING, Deque, Dict, Iterator, List, Optional, Union

import numpy as np

from repro.simulation.observers import Observer
from repro.simulation.trace import sanitize_record
from repro.telemetry.probes import MassDriftTracker

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.engine import SynchronousEngine
    from repro.simulation.messages import Message

DUMP_REASONS = ("non_finite", "mass_drift", "link_failure", "exception")


class FlightRecorder(Observer):
    """Ring buffer of recent engine events + black-box dumps on failure.

    ``directory`` receives the dump files (``flight_<reason>_r<round>.json``).
    ``mass_tolerance`` enables the mass-drift trigger (None disables it):
    relative drift — computed by the same
    :class:`~repro.telemetry.probes.MassDriftTracker` the invariant probe
    uses — must exceed it for ``mass_window`` consecutive rounds. The
    default (0.75 sustained for 32 rounds) means "most of the conserved
    mass has been unaccounted for, persistently", which the PCF
    crossing-deadlock drain hits and healthy flow-algorithm crossing noise
    (drift ≤ 0.65, transient) does not. ``dump_on_link_failure`` controls
    the Figs. 4/7 trigger. ``capacity`` bounds memory; the per-round
    trigger checks cost one O(n) pass over the estimates, the same order
    as the probes.
    """

    def __init__(
        self,
        directory: Union[str, pathlib.Path],
        *,
        capacity: int = 512,
        mass_tolerance: Optional[float] = 0.75,
        mass_window: int = 32,
        nonfinite_window: int = 8,
        dump_on_link_failure: bool = True,
        max_dumps: int = 8,
        once_per_reason: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if mass_window < 1:
            raise ValueError(f"mass_window must be >= 1, got {mass_window}")
        if nonfinite_window < 1:
            raise ValueError(
                f"nonfinite_window must be >= 1, got {nonfinite_window}"
            )
        self.directory = pathlib.Path(directory)
        self.events: Deque[Dict[str, object]] = collections.deque(
            maxlen=int(capacity)
        )
        self.mass_tolerance = mass_tolerance
        self.mass_window = int(mass_window)
        self.nonfinite_window = int(nonfinite_window)
        self.dump_on_link_failure = bool(dump_on_link_failure)
        self.max_dumps = int(max_dumps)
        self.once_per_reason = bool(once_per_reason)
        self.dump_paths: List[pathlib.Path] = []
        self._dumped_reasons: set = set()
        self._drift_tracker = MassDriftTracker()
        self._drift_streak = 0
        self._nonfinite_streak = 0
        self._round = 0

    # ------------------------------------------------------------------
    # Ring-buffer recording (cheap, every hook)
    # ------------------------------------------------------------------
    def wants_detail(self, round_index: int) -> bool:
        # The black box records semantic events only; per-message detail is
        # the causal tracer's job.
        return False

    def _record(self, kind: str, **fields: object) -> None:
        self.events.append({"kind": kind, **fields})

    def on_run_start(self, engine: "SynchronousEngine") -> None:
        self._record("run_start", engine=type(engine).__name__)
        if self.mass_tolerance is not None:
            self._drift_tracker.start(engine)

    def on_round_end(self, engine: "SynchronousEngine", round_index: int) -> None:
        self._round = round_index
        summary = self._estimate_summary(engine)
        self._record(
            "round",
            round=round_index,
            **summary,
            messages_sent=int(getattr(engine, "messages_sent", 0)),
            messages_delivered=int(getattr(engine, "messages_delivered", 0)),
        )
        if summary.get("finite") is False:
            self._nonfinite_streak += 1
            if self._nonfinite_streak == self.nonfinite_window:
                self._trigger(
                    engine,
                    "non_finite",
                    round_index,
                    sustained_rounds=self._nonfinite_streak,
                )
            return
        self._nonfinite_streak = 0
        if self.mass_tolerance is None:
            return
        drift = self._drift_tracker.drift(engine)
        if drift is None:
            return
        if drift > self.mass_tolerance:
            self._drift_streak += 1
            if self._drift_streak == self.mass_window:
                self._trigger(
                    engine,
                    "mass_drift",
                    round_index,
                    drift=drift,
                    sustained_rounds=self._drift_streak,
                )
        else:
            self._drift_streak = 0

    def on_message_dropped(
        self, engine: "SynchronousEngine", message: "Message", reason: str
    ) -> None:
        self._record(
            "drop",
            round=message.round,
            sender=message.sender,
            receiver=message.receiver,
            reason=reason,
        )

    def on_fault_injected(
        self, engine: "SynchronousEngine", round_index: int, kind: str, detail: str
    ) -> None:
        self._record("fault", round=round_index, fault=kind, detail=detail)

    def on_link_handled(
        self, engine: "SynchronousEngine", round_index: int, u: int, v: int
    ) -> None:
        self._record("link_handled", round=round_index, u=u, v=v)
        if self.dump_on_link_failure:
            self._trigger(engine, "link_failure", round_index, edge=[u, v])

    def on_run_end(self, engine: "SynchronousEngine", rounds_executed: int) -> None:
        self._record("run_end", rounds=rounds_executed)

    # ------------------------------------------------------------------
    # Trigger evaluation
    # ------------------------------------------------------------------
    def _estimate_summary(self, engine: object) -> Dict[str, object]:
        try:
            estimates = np.array(
                [
                    float(np.max(np.atleast_1d(np.asarray(e, dtype=np.float64))))
                    for e in engine.estimates()  # type: ignore[attr-defined]
                ]
            )
        except (AttributeError, TypeError, ValueError):
            return {}
        if estimates.size == 0:
            return {"live": 0, "finite": True}
        finite = bool(np.all(np.isfinite(estimates)))
        return {
            "live": int(estimates.size),
            "finite": finite,
            "estimate_min": float(estimates.min()) if finite else None,
            "estimate_max": float(estimates.max()) if finite else None,
        }

    def _trigger(
        self,
        engine: object,
        reason: str,
        round_index: int,
        **detail: object,
    ) -> Optional[pathlib.Path]:
        if self.once_per_reason and reason in self._dumped_reasons:
            return None
        if len(self.dump_paths) >= self.max_dumps:
            return None
        self._dumped_reasons.add(reason)
        return self.dump(engine, reason, round_index, **detail)

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------
    def dump(
        self,
        engine: object,
        reason: str,
        round_index: int,
        **detail: object,
    ) -> pathlib.Path:
        """Write the black box now; returns the dump path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"flight_{reason}_r{round_index}.json"
        payload = sanitize_record(
            {
                "reason": reason,
                "round": round_index,
                "engine": type(engine).__name__,
                "detail": dict(detail),
                "state": self._estimate_summary(engine),
                "events": list(self.events),
            }
        )
        path.write_text(json.dumps(payload, indent=1))
        self.dump_paths.append(path)
        return path

    @contextlib.contextmanager
    def watch(self, engine: object) -> Iterator["FlightRecorder"]:
        """Dump the black box if an exception escapes the wrapped block."""
        try:
            yield self
        except Exception as exc:
            self._record("exception", error=f"{type(exc).__name__}: {exc}")
            self._trigger(engine, "exception", self._round)
            raise
