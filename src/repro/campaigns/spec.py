"""Campaign specs: declarative scenario grids and their expansion.

A campaign names four axes — algorithms, topologies, fault schedules and
seeds — plus shared run parameters; the runner sweeps the full
cross-product. Specs are plain data (Python dict, TOML or JSON file), in
the spirit of the scenario grids of *Dependability in Aggregation by
Averaging* (Jesus et al.): one fault scenario proves little, so campaigns
make "algorithm × topology × fault × seed" sweeps first-class.

Example (TOML)::

    name = "fig4-recovery"
    algorithms = ["push_flow", "push_cancel_flow"]
    seeds = [0, 1, 2]
    rounds = 200
    epsilon = 1e-9

    [[topologies]]
    family = "hypercube"
    n = 64

    [[faults]]
    kind = "link_failure"
    round = 75

Every cell of the expanded grid is a plain serializable dict (so it can
cross process boundaries) with a stable ``cell_id`` used for resumable
checkpointing.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Mapping, Tuple, Union

from repro.algorithms.registry import ALGORITHMS
from repro.exceptions import ConfigurationError, TopologyError
from repro.faults.specs import (
    validate_fault_against_topology,
    validate_fault_spec,
)
from repro.topology import registry as topology_registry

_AXES = ("algorithms", "topologies", "faults", "seeds")
_RUN_KEYS = (
    "name",
    "rounds",
    "epsilon",
    "aggregate",
    "data",
    "telemetry_sample_rate",
    "engine",
    "backend",
)
_DATA_KINDS = ("uniform", "spike", "log_uniform")
_AGGREGATES = ("average", "sum")
_ENGINES = ("object", "vectorized", "batched")
#: Fault kinds the vectorized/batched engines can express (i.i.d. loss
#: folds into the engine's transport mask; link failures map onto
#: transport blocking + edge-state zeroing; the dynamic kinds map onto
#: the batched engine's topology-delta support). Trace replays and
#: per-message injectors need the object engine.
_VECTOR_FAULT_KINDS = (
    "link_failure",
    "message_loss",
    "none",
    "churn",
    "partition",
    "regional_outage",
)


def _topology_label(topo: Mapping[str, object]) -> str:
    extras = {
        k: v for k, v in sorted(topo.items()) if k not in ("family", "n")
    }
    suffix = "".join(f",{k}={v}" for k, v in extras.items())
    return f"{topo['family']}-{topo['n']}{suffix}"


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """A validated, immutable campaign definition."""

    name: str
    algorithms: Tuple[str, ...]
    topologies: Tuple[Dict[str, object], ...]
    faults: Tuple[Dict[str, object], ...]
    seeds: Tuple[int, ...]
    rounds: int
    epsilon: float
    aggregate: str = "average"
    data: str = "uniform"
    #: Fraction of rounds the per-cell observers (anomaly detectors,
    #: flight-recorder state snapshots' cost-bearing peers) sample; None
    #: means the cheap default stride of
    #: :data:`repro.telemetry.sampling.DEFAULT_SAMPLE_EVERY`. Raising it
    #: toward 1.0 tightens detector latency at proportional overhead.
    telemetry_sample_rate: Union[float, None] = None
    #: Execution engine: ``object`` (per-message, full fault surface,
    #: default), ``vectorized`` (whole-array per cell), or ``batched``
    #: (whole-array across every compatible cell of an (algorithm,
    #: topology) group at once). Non-object engines require algorithms
    #: with a vectorized implementation and fault kinds in
    #: :data:`_VECTOR_FAULT_KINDS`.
    engine: str = "object"
    #: Kernel backend for the vectorized/batched engines: ``numpy`` (the
    #: bit-for-bit reference, default) or ``numba`` (jitted fused kernels;
    #: falls back to numpy with a RuntimeWarning when numba is not
    #: installed). ``None`` means the default. Meaningless — and rejected —
    #: on the object engine, which has no whole-array kernels.
    backend: Union[str, None] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: Mapping[str, object]) -> "CampaignSpec":
        """Validate a plain-dict spec; raises ConfigurationError with the
        offending axis/key named so bad specs fail before any run starts."""
        if not isinstance(raw, Mapping):
            raise ConfigurationError(
                f"campaign spec must be a dict/table, got {type(raw).__name__}"
            )
        unknown = sorted(set(raw) - set(_AXES) - set(_RUN_KEYS))
        if unknown:
            raise ConfigurationError(
                f"campaign spec has unknown key(s) {unknown}; "
                f"axes are {list(_AXES)}, run keys are {list(_RUN_KEYS)}"
            )
        missing = sorted(set(_AXES) - set(raw))
        if missing:
            raise ConfigurationError(
                f"campaign spec is missing axis/axes {missing}"
            )
        for axis in _AXES:
            values = raw[axis]
            if not isinstance(values, (list, tuple)) or len(values) == 0:
                raise ConfigurationError(
                    f"axis {axis!r} is empty — the cross-product has no cells"
                )

        algorithms = tuple(str(a) for a in raw["algorithms"])
        for alg in algorithms:
            if alg not in ALGORITHMS:
                raise ConfigurationError(
                    f"axis 'algorithms': unknown algorithm {alg!r}; "
                    f"expected one of {ALGORITHMS}"
                )

        topologies: List[Dict[str, object]] = []
        for i, topo in enumerate(raw["topologies"]):
            if not isinstance(topo, Mapping) or "family" not in topo or "n" not in topo:
                raise ConfigurationError(
                    f"axis 'topologies'[{i}]: each entry needs 'family' and 'n', "
                    f"got {topo!r}"
                )
            entry = {k: topo[k] for k in topo}
            entry["family"] = str(topo["family"])
            entry["n"] = int(topo["n"])  # type: ignore[arg-type]
            extra = {
                k: v for k, v in entry.items() if k not in ("family", "n")
            }
            try:  # dry-build once so bad families / node counts fail early
                topology_registry.build(
                    entry["family"], entry["n"], seed=0, **extra
                )
            except (TopologyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"axis 'topologies'[{i}] ({_topology_label(entry)}): {exc}"
                ) from exc
            topologies.append(entry)

        faults = tuple(
            validate_fault_spec(f, where=f"axis 'faults'[{i}]")
            for i, f in enumerate(raw["faults"])
        )
        fault_names = [str(f["name"]) for f in faults]
        if len(set(fault_names)) != len(fault_names):
            raise ConfigurationError(
                f"axis 'faults' has duplicate schedule names {fault_names}; "
                "give colliding entries an explicit 'name'"
            )
        # Cross-axis check: every fault must fit every topology it will be
        # paired with (node/edge ids in range, regions not larger than n),
        # so bad grids fail at load time instead of mid-sweep.
        for i, fault in enumerate(faults):
            for j, topo in enumerate(topologies):
                validate_fault_against_topology(
                    fault,
                    int(topo["n"]),  # type: ignore[arg-type]
                    where=(
                        f"axis 'faults'[{i}] vs 'topologies'[{j}] "
                        f"({_topology_label(topo)})"
                    ),
                )

        seeds = tuple(int(s) for s in raw["seeds"])
        if len(set(seeds)) != len(seeds):
            raise ConfigurationError(f"axis 'seeds' has duplicates: {list(seeds)}")

        rounds = int(raw.get("rounds", 200))  # type: ignore[arg-type]
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
        epsilon = float(raw.get("epsilon", 1e-9))  # type: ignore[arg-type]
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        aggregate = str(raw.get("aggregate", "average"))
        if aggregate not in _AGGREGATES:
            raise ConfigurationError(
                f"aggregate must be one of {_AGGREGATES}, got {aggregate!r}"
            )
        data = str(raw.get("data", "uniform"))
        if data not in _DATA_KINDS:
            raise ConfigurationError(
                f"data must be one of {_DATA_KINDS}, got {data!r}"
            )
        sample_rate = raw.get("telemetry_sample_rate")
        if sample_rate is not None:
            try:
                sample_rate = float(sample_rate)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"telemetry_sample_rate must be a number in (0, 1], "
                    f"got {sample_rate!r}"
                ) from None
            if not 0.0 < sample_rate <= 1.0:
                raise ConfigurationError(
                    f"telemetry_sample_rate must be in (0, 1], got {sample_rate}"
                )
        engine = str(raw.get("engine", "object"))
        if engine not in _ENGINES:
            raise ConfigurationError(
                f"engine must be one of {_ENGINES}, got {engine!r}"
            )
        backend = raw.get("backend")
        if backend is not None:
            backend = str(backend)
            from repro.vectorized.backends import BACKEND_NAMES

            if backend not in BACKEND_NAMES:
                raise ConfigurationError(
                    f"backend must be one of {BACKEND_NAMES}, got {backend!r}"
                )
            if engine == "object":
                raise ConfigurationError(
                    f"backend {backend!r} requires a vectorized engine; "
                    "the object engine has no kernel backends — set "
                    "engine to 'vectorized' or 'batched'"
                )
        if engine != "object":
            from repro.vectorized.parity import vector_engine_for

            for alg in algorithms:
                try:
                    vector_engine_for(alg)
                except ConfigurationError as exc:
                    raise ConfigurationError(
                        f"engine {engine!r}: {exc}"
                    ) from None
            for i, fault in enumerate(faults):
                parts = fault.get("compose") or [fault]
                for part in parts:  # type: ignore[union-attr]
                    kind = str(part["kind"])  # type: ignore[index]
                    if kind not in _VECTOR_FAULT_KINDS:
                        raise ConfigurationError(
                            f"axis 'faults'[{i}]: fault kind {kind!r} is not "
                            f"supported on engine {engine!r}; supported "
                            f"kinds: {sorted(_VECTOR_FAULT_KINDS)}"
                        )
        return cls(
            name=str(raw.get("name", "campaign")),
            algorithms=algorithms,
            topologies=tuple(topologies),
            faults=faults,
            seeds=seeds,
            rounds=rounds,
            epsilon=epsilon,
            aggregate=aggregate,
            data=data,
            telemetry_sample_rate=sample_rate,
            engine=engine,
            backend=backend,
        )

    @classmethod
    def from_file(cls, path: Union[str, pathlib.Path]) -> "CampaignSpec":
        """Load a spec from a ``.toml`` or ``.json`` file."""
        path = pathlib.Path(path)
        if not path.exists():
            raise ConfigurationError(f"campaign spec file not found: {path}")
        suffix = path.suffix.lower()
        if suffix == ".toml":
            try:
                import tomllib  # Python 3.11+
            except ImportError:  # pragma: no cover - Python <= 3.10
                try:
                    import tomli as tomllib  # type: ignore[no-redef]
                except ImportError:
                    raise ConfigurationError(
                        "TOML specs need Python >= 3.11 (tomllib) or the "
                        "'tomli' package; use a .json spec instead"
                    ) from None
            try:
                raw = tomllib.loads(path.read_text())
            except tomllib.TOMLDecodeError as exc:
                raise ConfigurationError(f"{path}: invalid TOML: {exc}") from exc
        elif suffix == ".json":
            try:
                raw = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                raise ConfigurationError(f"{path}: invalid JSON: {exc}") from exc
        else:
            raise ConfigurationError(
                f"campaign spec {path} must be .toml or .json, got {suffix!r}"
            )
        return cls.from_dict(raw)

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (written to the campaign directory for resume)."""
        return {
            "name": self.name,
            "algorithms": list(self.algorithms),
            "topologies": [dict(t) for t in self.topologies],
            "faults": [dict(f) for f in self.faults],
            "seeds": list(self.seeds),
            "rounds": self.rounds,
            "epsilon": self.epsilon,
            "aggregate": self.aggregate,
            "data": self.data,
            "telemetry_sample_rate": self.telemetry_sample_rate,
            "engine": self.engine,
            "backend": self.backend,
        }

    @property
    def n_cells(self) -> int:
        return (
            len(self.algorithms)
            * len(self.topologies)
            * len(self.faults)
            * len(self.seeds)
        )

    def expand(self) -> List[Dict[str, object]]:
        """The full cross-product as plain, picklable run cells.

        Cell ids are stable across processes and re-invocations — they are
        the checkpointing key that lets a partially completed campaign
        resume without re-running finished cells.
        """
        cells: List[Dict[str, object]] = []
        for algorithm in self.algorithms:
            for topo in self.topologies:
                topo_label = _topology_label(topo)
                for fault in self.faults:
                    for seed in self.seeds:
                        cell_id = (
                            f"{algorithm}|{topo_label}|{fault['name']}|s{seed}"
                        )
                        cells.append(
                            {
                                "cell_id": cell_id,
                                "algorithm": algorithm,
                                "topology": dict(topo),
                                "topology_label": topo_label,
                                "fault": dict(fault),
                                "seed": seed,
                                "rounds": self.rounds,
                                "epsilon": self.epsilon,
                                "aggregate": self.aggregate,
                                "data": self.data,
                                "telemetry_sample_rate": (
                                    self.telemetry_sample_rate
                                ),
                                "engine": self.engine,
                                "backend": self.backend,
                            }
                        )
        return cells


def load_spec(source: Union[str, pathlib.Path, Mapping[str, object]]) -> CampaignSpec:
    """Resolve ``source`` — a builtin name, a spec file path, or a dict."""
    if isinstance(source, Mapping):
        return CampaignSpec.from_dict(source)
    text = str(source)
    from repro.campaigns.builtin import BUILTIN_SPECS

    if text in BUILTIN_SPECS:
        return CampaignSpec.from_dict(BUILTIN_SPECS[text])
    path = pathlib.Path(text)
    if path.exists():
        return CampaignSpec.from_file(path)
    raise ConfigurationError(
        f"campaign spec {text!r} is neither a builtin "
        f"({sorted(BUILTIN_SPECS)}) nor an existing file"
    )
