"""Campaign execution: parallel cell runs with retries and checkpointing.

:func:`execute_cell` runs one (algorithm, topology, fault, seed) cell of an
expanded campaign grid and returns a plain-dict outcome record;
:func:`run_campaign` sweeps a whole :class:`~repro.campaigns.spec.CampaignSpec`,
either in-process (``workers=0``) or across ``multiprocessing`` workers with
per-run timeouts and bounded retries, appending every terminal record to
``results.jsonl`` as it lands — so a killed or partially completed campaign
resumes by simply re-invoking it: recorded cells are skipped.

Outcome metrics per cell (see DESIGN.md for the paper mapping):

- ``converged`` / ``rounds_to_tolerance`` / ``final_error`` / ``best_error``
  — oracle-relative accuracy, as in the paper's experiments;
- ``recovery_rounds`` / ``recovered`` / ``jump_factor`` / ``restart_fraction``
  — the Figs. 4/7 fallback analysis around the earliest permanent-failure
  handling event (``recovery_rounds`` is censored at the remaining round
  budget when the run never regains its pre-event accuracy — PF's typical
  fate, versus PCF's near-zero recovery cost);
- ``mass_drift_floor`` / ``mass_drift_final`` / ``mass_drift_worst`` —
  global mass-conservation drift from
  :class:`~repro.telemetry.probes.MassConservationProbe`; the *floor*
  (minimum over the run's tail) is the persistent-loss signal, since
  crossing-induced drift spikes self-heal;
- ``alerts`` / ``alerts_total`` — per-detector counts from the
  :mod:`repro.tracing.anomaly` detectors that ride along with every cell;
- ``flight_dumps`` — black-box files the cell's
  :class:`~repro.tracing.flight.FlightRecorder` wrote (link-failure
  handling, non-finite estimates, sustained mass drain, or the exception
  that failed the cell); failure records list whatever dumps reached the
  cell's flight directory before the attempt died.
"""

from __future__ import annotations

import dataclasses
import json
import math
import multiprocessing
import os
import pathlib
import queue as queue_module
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.algorithms.aggregates import (
    AggregateKind,
    initial_mass_pairs,
    true_aggregate,
)
from repro.algorithms.registry import instantiate
from repro.exceptions import ConfigurationError
from repro.experiments.workloads import bus_case_study_data, uniform_data
from repro.faults.events import LinkFailure
from repro.faults.specs import (
    DYNAMIC_FAULT_KINDS,
    build_faults,
    build_topology_schedule,
    validate_fault_spec,
)
from repro.metrics.convergence import fallback_report
from repro.metrics.history import ErrorHistory
from repro.campaigns.spec import _VECTOR_FAULT_KINDS, CampaignSpec
from repro.simulation.engine import SynchronousEngine
from repro.simulation.schedule import UniformGossipSchedule
from repro.telemetry.probes import MassConservationProbe
from repro.telemetry.registry import MetricsRegistry
from repro.topology import registry as topology_registry

_MASS_TOLERANCE = 1e-6


def _cell_seed_streams(seed: int):
    """Independent child streams for one cell's random components.

    The cell seed used to feed topology build, data generation, fault RNG
    and (offset by a constant) the gossip schedule directly, which starts
    several of those streams from correlated state. SeedSequence spawning
    gives statistically independent children while keeping cell ids — and
    the paper's paired-comparison property (same seed ⇒ same topology,
    data and fault timeline across algorithms) — intact.

    Returns ``(topology, data, fault, schedule)`` SeedSequence children.
    """
    return np.random.SeedSequence(seed).spawn(4)


def _stream_seed(stream: np.random.SeedSequence) -> int:
    """A plain integer seed drawn from a SeedSequence child."""
    return int(stream.generate_state(1)[0])


def _json_float(value: Optional[float]) -> object:
    """JSONL-safe float: non-finite values become tagged strings."""
    if value is None:
        return None
    value = float(value)
    if math.isfinite(value):
        return value
    if math.isnan(value):
        return "nan"
    return "inf" if value > 0 else "-inf"


def as_float(value: object) -> float:
    """Inverse of :func:`_json_float` (for report aggregation)."""
    if value is None:
        return float("nan")
    if value == "nan":
        return float("nan")
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    return float(value)  # type: ignore[arg-type]


def _count_cell_metrics(
    registry: MetricsRegistry,
    *,
    algorithm: str,
    engine: str,
    backend: str,
    rounds: int,
    sent: int,
    delivered: int,
    mass_violations: int,
) -> None:
    """Fold one finished cell's engine totals into a per-attempt registry.

    These counters ride home to the parent as a ``RegistrySnapshot``
    (attached to the record, popped before the record is persisted), so
    the authoritative aggregate is identical whether cells ran serially,
    via per-cell workers, or as multiprocess batched groups.
    """
    labels = {"algorithm": algorithm, "engine": engine, "backend": backend}
    registry.counter(
        "engine_rounds_total", "Gossip rounds executed by campaign cells"
    ).inc(float(rounds), **labels)
    registry.counter(
        "engine_messages_sent_total", "Messages sent by campaign cells"
    ).inc(float(sent), **labels)
    registry.counter(
        "engine_messages_delivered_total",
        "Messages delivered by campaign cells",
    ).inc(float(delivered), **labels)
    if mass_violations:
        registry.counter(
            "engine_mass_violations_total",
            "Mass-conservation violations observed by the probes",
        ).inc(float(mass_violations), **labels)


def _make_data(kind: str, n: int, seed: int) -> np.ndarray:
    if kind == "uniform":
        return uniform_data(n, seed=seed)
    if kind == "spike":
        return bus_case_study_data(n)
    if kind == "log_uniform":
        rng = np.random.default_rng(seed)
        return 10.0 ** rng.uniform(-3, 3, size=n)
    raise ConfigurationError(f"unknown data kind {kind!r}")


def execute_cell(cell: Dict[str, object]) -> Dict[str, object]:
    """Run one campaign cell to completion and measure its outcome.

    Cells carrying ``engine: vectorized`` or ``engine: batched`` run on
    the whole-array engines as a batch of one (so per-cell execution —
    e.g. under multiprocessing workers — produces records bit-identical
    to grouped batched execution); everything else takes the per-message
    object engine below.
    """
    if str(cell.get("engine", "object")) != "object":
        return _execute_cells_batched([cell])[0]
    t0 = time.perf_counter()
    topo_spec: Dict[str, object] = dict(cell["topology"])  # type: ignore[arg-type]
    family = str(topo_spec.pop("family"))
    n = int(topo_spec.pop("n"))  # type: ignore[arg-type]
    seed = int(cell["seed"])  # type: ignore[arg-type]
    rounds = int(cell["rounds"])  # type: ignore[arg-type]
    epsilon = float(cell["epsilon"])  # type: ignore[arg-type]

    topo_stream, data_stream, fault_stream, sched_stream = _cell_seed_streams(
        seed
    )
    topology = topology_registry.build(
        family, n, seed=_stream_seed(topo_stream), **topo_spec
    )
    data = _make_data(str(cell["data"]), n, _stream_seed(data_stream))
    kind = AggregateKind(str(cell["aggregate"]))
    truth = true_aggregate(kind, list(data))
    initial = initial_mass_pairs(kind, list(data))
    algorithms = instantiate(str(cell["algorithm"]), topology, initial)

    built = build_faults(
        cell["fault"],  # type: ignore[arg-type]
        seed=_stream_seed(fault_stream),
        topology=topology,
        horizon=rounds,
    )
    history = ErrorHistory(truth)
    mass_probe = MassConservationProbe(tolerance=_MASS_TOLERANCE)

    # Per-cell observability: anomaly detectors always ride along (they
    # sample, so they are cheap); the flight recorder joins when the
    # campaign provides a per-cell dump directory. Both honour the spec's
    # telemetry_sample_rate (None -> the cheap default stride).
    from repro.telemetry.sampling import RoundSampler
    from repro.tracing.anomaly import default_detectors
    from repro.tracing.flight import FlightRecorder

    sample_rate = cell.get("telemetry_sample_rate")
    sampler = (
        RoundSampler(rate=float(sample_rate))  # type: ignore[arg-type]
        if sample_rate is not None
        else None
    )
    # Per-cell registry: detector alert counters land here and the engine
    # totals are folded in below; the whole thing ships home with the
    # record as a snapshot so multiprocess runs aggregate losslessly.
    registry = MetricsRegistry()
    detectors = default_detectors(sampler=sampler, registry=registry)
    flight_dir = cell.get("flight_dir")
    flight = (
        FlightRecorder(str(flight_dir)) if flight_dir is not None else None
    )
    extra_observers: List[object] = list(detectors)
    if flight is not None:
        extra_observers.append(flight)

    engine = SynchronousEngine(
        topology,
        algorithms,
        UniformGossipSchedule(topology.n, _stream_seed(sched_stream)),
        message_fault=built.message_fault,
        fault_plan=built.fault_plan,
        topology_schedule=built.topology_schedule,
        observers=[history, mass_probe, *extra_observers] + built.observers,
    )
    if flight is not None:
        with flight.watch(engine):
            engine.run(rounds)
    else:
        engine.run(rounds)

    errors = history.max_errors
    final_error = history.final_max_error()
    converged = math.isfinite(final_error) and final_error <= epsilon
    finite_errors = [e for e in errors if math.isfinite(e)]
    best_error = min(finite_errors) if finite_errors else float("inf")

    recovery: Dict[str, object] = {
        "event_round": built.event_round,
        "recovery_rounds": None,
        "recovered": None,
        "jump_factor": None,
        "restart_fraction": None,
    }
    if built.event_round is not None and built.event_round < len(errors):
        report = fallback_report(errors, built.event_round)
        recovered = report.recovery_rounds is not None
        recovery.update(
            {
                # Censor never-recovered runs at the remaining round budget
                # so means stay comparable across algorithms.
                "recovery_rounds": report.recovery_rounds
                if recovered
                else len(errors) - built.event_round,
                "recovered": recovered,
                "jump_factor": _json_float(report.jump_factor),
                "restart_fraction": _json_float(report.restart_fraction),
            }
        )

    # Crossing overwrites make the instantaneous drift noisy (they
    # self-heal; see MassConservationProbe docs), so the fault signal is
    # the drift *floor* over the run's tail: healthy flow algorithms touch
    # ~0 repeatedly, genuine mass loss (push-sum under loss, PCF deadlock
    # drain) never returns there.
    mass_records = mass_probe.records
    tail_start = max(0, engine.round - max(engine.round // 4, 1))
    tail_drifts = [
        float(r["drift"])  # type: ignore[arg-type]
        for r in mass_records
        if int(r["round"]) >= tail_start  # type: ignore[arg-type]
    ]
    return {
        "cell_id": cell["cell_id"],
        "status": "ok",
        "algorithm": cell["algorithm"],
        "topology": cell["topology_label"],
        "fault": cell["fault"]["name"],  # type: ignore[index]
        "seed": seed,
        "engine": "object",
        "backend": None,
        "n": n,
        "rounds": engine.round,
        "epsilon": epsilon,
        "converged": converged,
        "rounds_to_tolerance": history.first_round_below(epsilon),
        "final_error": _json_float(final_error),
        "best_error": _json_float(best_error),
        "dynamics": built.dynamics_meta,
        **recovery,
        "mass_drift_final": _json_float(
            float(mass_records[-1]["drift"]) if mass_records else None  # type: ignore[arg-type]
        ),
        "mass_drift_floor": _json_float(
            min(tail_drifts) if tail_drifts else None
        ),
        "mass_drift_worst": _json_float(mass_probe.worst_drift()),
        "mass_violations": len(mass_probe.violations),
        "alerts_total": sum(len(d.alerts) for d in detectors),
        "alerts": {d.name: len(d.alerts) for d in detectors if d.alerts},
        "flight_dumps": (
            [str(p) for p in flight.dump_paths] if flight is not None else []
        ),
        "messages_sent": engine.messages_sent,
        "messages_delivered": engine.messages_delivered,
        "wall_s": round(time.perf_counter() - t0, 4),
        # No fused kernel on the per-message object engine.
        "kernel_seconds": None,
        "error": None,
        "_metrics_snapshot": _cell_snapshot(
            registry,
            algorithm=str(cell["algorithm"]),
            engine="object",
            backend="none",
            rounds=engine.round,
            sent=engine.messages_sent,
            delivered=engine.messages_delivered,
            mass_violations=len(mass_probe.violations),
        ),
    }


def _cell_snapshot(
    registry: MetricsRegistry,
    **totals,
) -> Dict[str, object]:
    """Engine totals + whatever the detectors counted, as a wire snapshot."""
    _count_cell_metrics(registry, **totals)
    return registry.snapshot()


def _vector_fault_params(spec: Dict[str, object]):
    """Map a fault spec onto the batched engine's fault surface.

    Supported kinds: ``none``, ``message_loss`` (composed rates combine
    into one i.i.d. loss probability) and ``link_failure``. Everything
    else needs the per-message object engine — the spec validator rejects
    such grids up front; this guard catches hand-built cells.
    """
    normalized = validate_fault_spec(spec)
    parts = normalized.get("compose") or [normalized]
    keep = 1.0
    links: List[LinkFailure] = []
    for part in parts:  # type: ignore[union-attr]
        kind = str(part["kind"])  # type: ignore[index]
        if kind == "none" or kind in DYNAMIC_FAULT_KINDS:
            # Dynamic kinds map onto the engine's topology-delta support
            # (built separately via build_topology_schedule).
            continue
        if kind == "message_loss":
            keep *= 1.0 - float(part["rate"])  # type: ignore[index]
        elif kind == "link_failure":
            u, v = part["edge"]  # type: ignore[index]
            links.append(
                LinkFailure(
                    round=int(part["round"]),  # type: ignore[index]
                    u=int(u),
                    v=int(v),
                    detection_delay=int(part.get("detection_delay", 0)),  # type: ignore[union-attr]
                )
            )
        else:
            raise ConfigurationError(
                f"fault kind {kind!r} is not supported on the vectorized/"
                f"batched engines; supported kinds: "
                f"{sorted(_VECTOR_FAULT_KINDS)}"
            )
    return 1.0 - keep, links


def _execute_cells_batched(
    cells: List[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Run same-signature cells as one batched whole-array program.

    Every cell becomes one run of a
    :class:`repro.vectorized.batched.BatchedEngine`; per-cell seed streams
    are derived exactly as in :func:`execute_cell` (same SeedSequence
    children), so topology and data match the object-engine path for the
    same seed. Converged fault-free runs retire early; cells with message
    loss or pending link failures run their full round budget, since
    their recovery/drift series must cover the horizon. Returned records
    are schema-identical to the object-engine records (observability
    fields are present but empty: the anomaly detectors and the flight
    recorder are per-message object-engine instruments).
    """
    from repro.vectorized.batched import (
        BatchedEngine,
        BatchedErrorHistory,
        BatchedMassProbe,
        BatchedRun,
    )

    t0 = time.perf_counter()
    first = cells[0]
    algorithm = str(first["algorithm"])
    rounds = int(first["rounds"])  # type: ignore[arg-type]
    epsilon = float(first["epsilon"])  # type: ignore[arg-type]
    kind = AggregateKind(str(first["aggregate"]))
    data_kind = str(first["data"])
    engine_kind = str(first.get("engine", "vectorized"))
    backend = first.get("backend")

    runs: List[BatchedRun] = []
    truths: List[float] = []
    event_rounds: List[Optional[int]] = []
    retire_ok: List[bool] = []
    sizes: List[int] = []
    schedules: List[object] = []
    for cell in cells:
        topo_spec: Dict[str, object] = dict(cell["topology"])  # type: ignore[arg-type]
        family = str(topo_spec.pop("family"))
        n = int(topo_spec.pop("n"))  # type: ignore[arg-type]
        seed = int(cell["seed"])  # type: ignore[arg-type]
        topo_stream, data_stream, fault_stream, sched_stream = (
            _cell_seed_streams(seed)
        )
        topology = topology_registry.build(
            family, n, seed=_stream_seed(topo_stream), **topo_spec
        )
        data = _make_data(data_kind, n, _stream_seed(data_stream))
        truths.append(float(true_aggregate(kind, list(data))))
        initial = initial_mass_pairs(kind, list(data))
        loss, links = _vector_fault_params(cell["fault"])  # type: ignore[arg-type]
        # Same fault-stream seed as the object path, so a dynamic cell
        # builds the identical topology schedule on either engine.
        schedule = build_topology_schedule(
            cell["fault"],  # type: ignore[arg-type]
            topology=topology,
            seed=_stream_seed(fault_stream),
            horizon=rounds,
        )
        schedules.append(schedule)
        handle_rounds = [lf.handle_round for lf in links]
        if handle_rounds:
            event_rounds.append(min(handle_rounds))
        elif schedule is not None:
            event_rounds.append(schedule.last_round)
        else:
            event_rounds.append(None)
        retire_ok.append(loss == 0.0 and not links and schedule is None)
        sizes.append(n)
        runs.append(
            BatchedRun(
                topology=topology,
                values=np.array([float(p.value) for p in initial]),
                weights=np.array([float(p.weight) for p in initial]),
                rng=np.random.default_rng(sched_stream),
                loss_probability=loss,
                link_failures=tuple(links),
                topology_schedule=schedule,
            )
        )

    engine = BatchedEngine(
        algorithm, runs, backend=str(backend) if backend is not None else None
    )
    # Group-level telemetry: the fused round kernel is timed into a
    # histogram labeled by (algorithm, engine, backend) — backend is the
    # *resolved* one, so a numba fallback profiles as numpy — and the
    # engine totals below join it in one snapshot shipped with the group.
    from repro.telemetry.phase import PhaseTimer

    registry = MetricsRegistry()
    timer = PhaseTimer(
        registry,
        engine_kind=engine_kind,
        metric="repro_kernel_seconds",
        help="Fused round-kernel wall time",
        labels={"algorithm": algorithm, "backend": engine.backend_name},
    )
    engine.phase_timer = timer
    history = BatchedErrorHistory(truths)
    mass_probe = BatchedMassProbe(tolerance=_MASS_TOLERANCE)
    mass_probe.start(engine)

    def on_round(eng, round_index: int) -> None:
        history.on_round_end(eng, round_index)
        mass_probe.on_round_end(eng, round_index)

    eligible = np.array(retire_ok, dtype=bool)
    stop_when = None
    if eligible.any():

        def stop_when(eng, round_index: int):
            current = history.current_max_errors()
            return eligible & np.isfinite(current) & (current <= epsilon)

    engine.run(rounds, stop_when=stop_when, on_round=on_round)

    wall = round((time.perf_counter() - t0) / len(cells), 4)
    # The kernel cost amortizes over the whole batch; attribute an equal
    # share to every cell, like wall_s.
    kernel_wall = round(timer.totals.get("kernel", 0.0) / len(cells), 6)
    sent = engine.messages_sent
    delivered = engine.messages_delivered
    run_rounds = engine.run_rounds
    records: List[Dict[str, object]] = []
    for r, cell in enumerate(cells):
        errors = history.max_errors[r]
        final_error = errors[-1] if errors else float("inf")
        converged = math.isfinite(final_error) and final_error <= epsilon
        finite_errors = [e for e in errors if math.isfinite(e)]
        best_error = min(finite_errors) if finite_errors else float("inf")

        recovery: Dict[str, object] = {
            "event_round": event_rounds[r],
            "recovery_rounds": None,
            "recovered": None,
            "jump_factor": None,
            "restart_fraction": None,
        }
        event_round = event_rounds[r]
        if event_round is not None and event_round < len(errors):
            report = fallback_report(errors, event_round)
            recovered = report.recovery_rounds is not None
            recovery.update(
                {
                    "recovery_rounds": report.recovery_rounds
                    if recovered
                    else len(errors) - event_round,
                    "recovered": recovered,
                    "jump_factor": _json_float(report.jump_factor),
                    "restart_fraction": _json_float(report.restart_fraction),
                }
            )

        mass_records = mass_probe.records[r]
        cell_rounds = int(run_rounds[r])
        tail_start = max(0, cell_rounds - max(cell_rounds // 4, 1))
        tail_drifts = [d for rnd, d in mass_records if rnd >= tail_start]
        records.append(
            {
                "cell_id": cell["cell_id"],
                "status": "ok",
                "algorithm": cell["algorithm"],
                "topology": cell["topology_label"],
                "fault": cell["fault"]["name"],  # type: ignore[index]
                "seed": int(cell["seed"]),  # type: ignore[arg-type]
                "engine": engine_kind,
                # The *resolved* backend: a numba spec that fell back to
                # numpy records "numpy", so results say what actually ran.
                "backend": engine.backend_name,
                "n": sizes[r],
                "rounds": cell_rounds,
                "epsilon": epsilon,
                "converged": converged,
                "rounds_to_tolerance": history.first_round_below(r, epsilon),
                "final_error": _json_float(final_error),
                "best_error": _json_float(best_error),
                "dynamics": (
                    schedules[r].meta() if schedules[r] is not None else None  # type: ignore[attr-defined]
                ),
                **recovery,
                "mass_drift_final": _json_float(
                    mass_records[-1][1] if mass_records else None
                ),
                "mass_drift_floor": _json_float(
                    min(tail_drifts) if tail_drifts else None
                ),
                "mass_drift_worst": _json_float(mass_probe.worst_drift(r)),
                "mass_violations": int(mass_probe.violations[r]),
                "alerts_total": 0,
                "alerts": {},
                "flight_dumps": [],
                "messages_sent": int(sent[r]),
                "messages_delivered": int(delivered[r]),
                "wall_s": wall,
                "kernel_seconds": kernel_wall,
                "error": None,
            }
        )
        _count_cell_metrics(
            registry,
            algorithm=algorithm,
            engine=engine_kind,
            backend=engine.backend_name,
            rounds=cell_rounds,
            sent=int(sent[r]),
            delivered=int(delivered[r]),
            mass_violations=int(mass_probe.violations[r]),
        )
    # One snapshot for the whole group, riding on its last record: the
    # parent merges it exactly once per successful attempt, whether the
    # group ran in-process or in a worker (shm/queue transport is JSON,
    # and the snapshot is a plain JSON-able dict).
    records[-1]["_metrics_snapshot"] = registry.snapshot()
    return records


def _safe_cell_dir(cell_id: str) -> str:
    """Filesystem-safe directory name for a cell's flight dumps."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in cell_id)


def _failure_record(
    cell: Dict[str, object], attempts: int, error: str
) -> Dict[str, object]:
    # The flight recorder writes its black-box dumps before the failing
    # attempt unwinds (FlightRecorder.watch dumps on the escaping
    # exception), so whatever reached the cell's flight directory is the
    # post-mortem record for this failure.
    flight_dir = cell.get("flight_dir")
    dumps: List[str] = []
    if flight_dir is not None:
        directory = pathlib.Path(str(flight_dir))
        if directory.is_dir():
            dumps = sorted(str(p) for p in directory.glob("flight_*.json"))
    return {
        "cell_id": cell["cell_id"],
        "status": "failed",
        "algorithm": cell["algorithm"],
        "topology": cell.get("topology_label"),
        "fault": cell["fault"].get("name"),  # type: ignore[union-attr]
        "seed": cell["seed"],
        "engine": cell.get("engine", "object"),
        "backend": cell.get("backend"),
        "attempts": attempts,
        "flight_dumps": dumps,
        "error": error,
    }


@dataclasses.dataclass
class CampaignRun:
    """Summary of one :func:`run_campaign` invocation."""

    spec: CampaignSpec
    out_dir: pathlib.Path
    total_cells: int
    skipped: int
    executed: int
    ok: int
    failed: int
    retries_used: int
    #: Authoritative cross-process aggregate: every worker's per-cell /
    #: per-group registry snapshot merged in record-arrival order.
    metrics: Optional[MetricsRegistry] = None

    @property
    def results_path(self) -> pathlib.Path:
        return self.out_dir / "results.jsonl"


def load_results(out_dir: Union[str, pathlib.Path]) -> Dict[str, Dict[str, object]]:
    """Read ``results.jsonl``, keeping the latest record per cell id.

    Tolerates a truncated trailing line (the checkpoint file may have been
    cut mid-write by a crash): bad lines are skipped, which simply means
    the affected cell re-runs.
    """
    path = pathlib.Path(out_dir) / "results.jsonl"
    records: Dict[str, Dict[str, object]] = {}
    if not path.exists():
        return records
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and "cell_id" in record:
            records[str(record["cell_id"])] = record
    return records


def _append_record(path: pathlib.Path, record: Dict[str, object]) -> None:
    with path.open("a") as fh:
        fh.write(json.dumps(record) + "\n")
        fh.flush()


def _mp_context(start_method: Optional[str] = None):
    """Explicit multiprocessing context selection.

    The start method used to be chosen as fork-if-available, which made
    the execution model platform-implicit (and silently picked ``fork``
    on macOS, where forking a threaded Python is unsafe). Now the choice
    is explicit: ``fork`` on Linux (cheap, inherits the imported NumPy),
    ``spawn`` everywhere else. Pass ``start_method`` to force one — e.g.
    ``spawn`` on Linux to mirror macOS/Windows behavior in tests.
    """
    if start_method is None:
        start_method = "fork" if sys.platform.startswith("linux") else "spawn"
    available = multiprocessing.get_all_start_methods()
    if start_method not in available:
        raise ConfigurationError(
            f"multiprocessing start method {start_method!r} is not "
            f"available on this platform; available: {available}"
        )
    return multiprocessing.get_context(start_method)


def _worker_entry(cell: Dict[str, object], result_queue) -> None:
    """Subprocess body: run the cell, ship the outcome (or the error) home."""
    try:
        result_queue.put(execute_cell(cell))
    except Exception as exc:  # noqa: BLE001 - forwarded to the parent
        result_queue.put(
            {
                "cell_id": cell["cell_id"],
                "status": "worker_error",
                "error": f"{type(exc).__name__}: {exc}",
            }
        )


@dataclasses.dataclass
class _Attempt:
    cell: Dict[str, object]
    attempt: int  # 1-based
    process: object = None
    queue: object = None
    deadline: Optional[float] = None


def _run_serial(
    pending: List[Dict[str, object]],
    retries: int,
    on_record: Callable[[Dict[str, object]], None],
    executor: Callable[[Dict[str, object]], Dict[str, object]],
) -> Dict[str, int]:
    stats = {"ok": 0, "failed": 0, "retries_used": 0}
    for cell in pending:
        last_error = "unknown"
        record: Optional[Dict[str, object]] = None
        for attempt in range(1, retries + 2):
            if attempt > 1:
                stats["retries_used"] += 1
            try:
                record = executor(cell)
                record["attempts"] = attempt
                break
            except Exception as exc:  # noqa: BLE001 - accounted as a failed attempt
                last_error = f"{type(exc).__name__}: {exc}"
                record = None
        if record is None:
            record = _failure_record(cell, retries + 1, last_error)
            stats["failed"] += 1
        else:
            stats["ok"] += 1
        on_record(record)
    return stats


def _run_batched(
    pending: List[Dict[str, object]],
    retries: int,
    on_record: Callable[[Dict[str, object]], None],
) -> Dict[str, int]:
    """Serial batched execution: one whole-array program per cell group.

    Pending cells are grouped by (algorithm, topology) — the run keys
    (rounds, epsilon, aggregate, data) are campaign-wide already — and
    each group executes as a single :class:`BatchedEngine` program. A
    failing group is retried whole; per-cell records land individually,
    so a partially completed campaign still resumes cell by cell.
    """
    stats = {"ok": 0, "failed": 0, "retries_used": 0}
    groups: Dict[tuple, List[Dict[str, object]]] = {}
    order: List[tuple] = []
    for cell in pending:
        key = (str(cell["algorithm"]), str(cell["topology_label"]))
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(cell)
    for key in order:
        cells = groups[key]
        last_error = "unknown"
        records: Optional[List[Dict[str, object]]] = None
        attempts = 0
        for attempt in range(1, retries + 2):
            attempts = attempt
            if attempt > 1:
                stats["retries_used"] += 1
            try:
                records = _execute_cells_batched(cells)
                break
            except Exception as exc:  # noqa: BLE001 - accounted per attempt
                last_error = f"{type(exc).__name__}: {exc}"
                records = None
        if records is None:
            for cell in cells:
                on_record(_failure_record(cell, retries + 1, last_error))
            stats["failed"] += len(cells)
        else:
            for record in records:
                record["attempts"] = attempts
                on_record(record)
            stats["ok"] += len(cells)
    return stats


def _run_parallel(
    pending: List[Dict[str, object]],
    workers: int,
    timeout: Optional[float],
    retries: int,
    on_record: Callable[[Dict[str, object]], None],
    start_method: Optional[str] = None,
) -> Dict[str, int]:
    ctx = _mp_context(start_method)
    stats = {"ok": 0, "failed": 0, "retries_used": 0}
    todo: List[_Attempt] = [_Attempt(cell=c, attempt=1) for c in pending]
    todo.reverse()  # pop() keeps the original submission order
    running: List[_Attempt] = []

    def settle(item: _Attempt, error: str) -> None:
        """One attempt failed: requeue it or record the terminal failure."""
        if item.attempt <= retries:
            stats["retries_used"] += 1
            todo.append(_Attempt(cell=item.cell, attempt=item.attempt + 1))
        else:
            stats["failed"] += 1
            on_record(_failure_record(item.cell, item.attempt, error))

    while todo or running:
        while todo and len(running) < workers:
            item = todo.pop()
            item.queue = ctx.Queue(maxsize=1)
            item.process = ctx.Process(
                target=_worker_entry,
                args=(item.cell, item.queue),
                daemon=True,
            )
            item.process.start()
            item.deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            running.append(item)

        time.sleep(0.02)
        still_running: List[_Attempt] = []
        for item in running:
            proc = item.process
            # Prefer a landed result over an expired deadline: the work is
            # done either way.
            record: Optional[Dict[str, object]] = None
            try:
                record = item.queue.get_nowait()  # type: ignore[union-attr]
            except queue_module.Empty:
                record = None
            if record is not None:
                proc.join()  # type: ignore[union-attr]
                if record.get("status") == "ok":
                    record["attempts"] = item.attempt
                    stats["ok"] += 1
                    on_record(record)
                else:  # the worker caught an in-run exception
                    settle(item, str(record.get("error", "worker error")))
            elif not proc.is_alive():  # type: ignore[union-attr]
                proc.join()  # type: ignore[union-attr]
                settle(
                    item,
                    f"worker crashed (exit code {proc.exitcode})",  # type: ignore[union-attr]
                )
            elif item.deadline is not None and time.monotonic() > item.deadline:
                proc.terminate()  # type: ignore[union-attr]
                proc.join()  # type: ignore[union-attr]
                settle(item, f"timeout after {timeout:g}s")
            else:
                still_running.append(item)
        running = still_running
    return stats


# ----------------------------------------------------------------------
# Parallel batched groups: one whole-array program per worker process,
# results shipped home through a parent-owned shared-memory segment.
# ----------------------------------------------------------------------

#: Per-cell capacity estimate for a group's result payload. Records are
#: ~1-2 KB of JSON; 8 KB per cell leaves generous headroom, and a group
#: whose payload still exceeds its segment falls back to the queue.
_SHM_BYTES_PER_CELL = 8192
_SHM_MIN_BYTES = 65536


def _attach_shm(name: str):
    """Child-side attach to the parent-owned result segment.

    Ownership stays with the parent: it created the segment and unlinks
    it in *every* outcome path (success, worker error, crash, timeout,
    retry). On Python 3.13+ the child attaches with ``track=False`` so it
    never becomes co-responsible. Earlier versions register the attach
    with the resource tracker unconditionally — which is safe here:
    fork, spawn and forkserver children all inherit the parent's tracker
    fd, registration is set-idempotent, and the parent's unlink balances
    the books (the child must NOT unregister, or the parent's later
    unlink-unregister trips a tracker KeyError).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python <= 3.12: no track parameter
        return shared_memory.SharedMemory(name=name)


def _group_worker_entry(
    cells: List[Dict[str, object]], shm_name: str, result_queue
) -> None:
    """Subprocess body for one batched group.

    Writes the group's records as JSON into the parent's shared-memory
    segment and signals the payload size on the queue; oversized payloads
    fall back to shipping the records inline through the queue.
    """
    try:
        records = _execute_cells_batched(cells)
        payload = json.dumps(records).encode()
        shm = _attach_shm(shm_name)
        try:
            if len(payload) <= shm.size:
                shm.buf[: len(payload)] = payload
                result_queue.put(("shm", len(payload)))
            else:
                result_queue.put(("inline", records))
        finally:
            shm.close()
    except Exception as exc:  # noqa: BLE001 - forwarded to the parent
        result_queue.put(("error", f"{type(exc).__name__}: {exc}"))


@dataclasses.dataclass
class _GroupAttempt:
    cells: List[Dict[str, object]]
    attempt: int  # 1-based
    process: object = None
    queue: object = None
    shm: object = None
    deadline: Optional[float] = None


def _group_pending(
    pending: List[Dict[str, object]],
) -> List[List[Dict[str, object]]]:
    """Group cells by (algorithm, topology) in first-seen order."""
    groups: Dict[Tuple[str, str], List[Dict[str, object]]] = {}
    order: List[Tuple[str, str]] = []
    for cell in pending:
        key = (str(cell["algorithm"]), str(cell["topology_label"]))
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(cell)
    return [groups[key] for key in order]


def _run_parallel_batched(
    pending: List[Dict[str, object]],
    workers: int,
    timeout: Optional[float],
    retries: int,
    on_record: Callable[[Dict[str, object]], None],
    start_method: Optional[str] = None,
) -> Dict[str, int]:
    """Parallel batched execution: whole (algorithm, topology) groups per
    worker process, so a multi-group campaign saturates the machine while
    every group keeps the full whole-array speedup.

    Result transport is a parent-owned shared-memory segment per running
    group (created before the worker starts, unlinked by the parent in
    *every* outcome path — success, worker error, crash, timeout and
    retry — so no segment outlives its attempt). The per-cell ``timeout``
    scales with group size: a group of k cells gets ``k * timeout``
    seconds, preserving per-cell semantics.
    """
    from multiprocessing import shared_memory

    ctx = _mp_context(start_method)
    stats = {"ok": 0, "failed": 0, "retries_used": 0}
    todo: List[_GroupAttempt] = [
        _GroupAttempt(cells=g, attempt=1) for g in _group_pending(pending)
    ]
    todo.reverse()  # pop() keeps the original submission order
    running: List[_GroupAttempt] = []
    seq = 0

    def release(item: _GroupAttempt) -> None:
        shm = item.shm
        if shm is None:
            return
        item.shm = None
        shm.close()  # type: ignore[union-attr]
        try:
            shm.unlink()  # type: ignore[union-attr]
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def settle(item: _GroupAttempt, error: str) -> None:
        release(item)
        if item.attempt <= retries:
            stats["retries_used"] += 1
            todo.append(_GroupAttempt(cells=item.cells, attempt=item.attempt + 1))
        else:
            stats["failed"] += len(item.cells)
            for cell in item.cells:
                on_record(_failure_record(cell, item.attempt, error))

    def finish(item: _GroupAttempt, records: List[Dict[str, object]]) -> None:
        release(item)
        stats["ok"] += len(item.cells)
        for record in records:
            record["attempts"] = item.attempt
            on_record(record)

    try:
        while todo or running:
            while todo and len(running) < workers:
                item = todo.pop()
                seq += 1
                item.shm = shared_memory.SharedMemory(
                    # PID-prefixed so stale segments are attributable (and
                    # the cleanup tests can scan for this process's leaks).
                    name=f"repro-grp-{os.getpid()}-{seq}",
                    create=True,
                    size=max(
                        _SHM_MIN_BYTES, _SHM_BYTES_PER_CELL * len(item.cells)
                    ),
                )
                item.queue = ctx.Queue(maxsize=1)
                item.process = ctx.Process(
                    target=_group_worker_entry,
                    args=(item.cells, item.shm.name, item.queue),
                    daemon=True,
                )
                item.process.start()
                item.deadline = (
                    time.monotonic() + timeout * len(item.cells)
                    if timeout is not None
                    else None
                )
                running.append(item)

            time.sleep(0.02)
            still_running: List[_GroupAttempt] = []
            for item in running:
                proc = item.process
                msg: Optional[Tuple[str, object]] = None
                try:
                    msg = item.queue.get_nowait()  # type: ignore[union-attr]
                except queue_module.Empty:
                    msg = None
                if msg is not None:
                    proc.join()  # type: ignore[union-attr]
                    tag, payload = msg
                    if tag == "shm":
                        nbytes = int(payload)  # type: ignore[arg-type]
                        raw = bytes(item.shm.buf[:nbytes])  # type: ignore[union-attr]
                        finish(item, json.loads(raw.decode()))
                    elif tag == "inline":
                        finish(item, payload)  # type: ignore[arg-type]
                    else:  # the worker caught an in-run exception
                        settle(item, str(payload))
                elif not proc.is_alive():  # type: ignore[union-attr]
                    proc.join()  # type: ignore[union-attr]
                    settle(
                        item,
                        f"worker crashed (exit code {proc.exitcode})",  # type: ignore[union-attr]
                    )
                elif (
                    item.deadline is not None
                    and time.monotonic() > item.deadline
                ):
                    proc.terminate()  # type: ignore[union-attr]
                    proc.join()  # type: ignore[union-attr]
                    settle(
                        item,
                        f"group timeout after "
                        f"{timeout * len(item.cells):g}s "  # type: ignore[operator]
                        f"({len(item.cells)} cells x {timeout:g}s)",
                    )
                else:
                    still_running.append(item)
            running = still_running
    finally:
        # Belt and braces: a raising on_record (or KeyboardInterrupt) must
        # not leak segments of still-running groups.
        for item in running:
            if item.process is not None and item.process.is_alive():  # type: ignore[union-attr]
                item.process.terminate()  # type: ignore[union-attr]
                item.process.join()  # type: ignore[union-attr]
            release(item)
    return stats


def run_campaign(
    spec: CampaignSpec,
    out_dir: Union[str, pathlib.Path],
    *,
    workers: int = 0,
    timeout: Optional[float] = None,
    retries: int = 1,
    resume: bool = True,
    log: Optional[Callable[[str], None]] = None,
    executor: Callable[[Dict[str, object]], Dict[str, object]] = execute_cell,
    metrics_every: int = 0,
    start_method: Optional[str] = None,
    metrics_port: Optional[int] = None,
) -> CampaignRun:
    """Sweep the full campaign grid, checkpointing into ``out_dir``.

    ``workers=0`` runs every cell in-process (deterministic, no timeout
    enforcement — the mode tests and small sweeps use); ``workers >= 1``
    fans cells out to that many OS processes, each attempt bounded by
    ``timeout`` seconds and retried up to ``retries`` times. On the
    batched engine, parallel workers execute whole (algorithm, topology)
    groups — one whole-array program per process, results returned
    through shared memory — so grouping and multiprocessing compose
    instead of competing. ``start_method`` forces the multiprocessing
    start method (default: ``fork`` on Linux, ``spawn`` elsewhere). With
    ``resume=True`` (default), cells already recorded in
    ``out_dir/results.jsonl`` are skipped — delete the file (or pass
    ``resume=False``) for a fresh sweep. ``executor`` is injectable for
    tests; the parallel path always runs :func:`execute_cell`.

    Every appended record is stamped with ``recorded_at`` (unix seconds)
    so the analysis layer can derive throughput and ETA. With
    ``metrics_every=N > 0``, campaign aggregates are re-exported to
    ``out_dir/metrics/`` (Prometheus/JSONL/CSV) after every N records —
    and once more when the sweep finishes — for in-flight observability.

    ``metrics_port`` (None = off, no socket is ever opened) starts a live
    HTTP observability server for the duration of the sweep: ``0`` binds
    an ephemeral port, logged and written to ``out_dir/server.json``. The
    server serves /metrics, /healthz, /progress, /alerts and /dashboard
    from the in-memory record stream plus the merged worker registries.
    """
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be > 0, got {timeout}")
    out_path = pathlib.Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    say = log or (lambda _msg: None)

    spec_path = out_path / "campaign.json"
    spec_dict = spec.to_dict()
    if spec_path.exists():
        existing = json.loads(spec_path.read_text())
        # Older campaign dirs predate the telemetry_sample_rate, engine
        # and backend run keys; let them resume under the defaults rather
        # than refusing.
        existing.setdefault("telemetry_sample_rate", None)
        existing.setdefault("engine", "object")
        existing.setdefault("backend", None)
        if existing != spec_dict:
            raise ConfigurationError(
                f"{out_path} already holds results for a different campaign "
                f"({existing.get('name')!r}); use a fresh --out directory"
            )
    else:
        spec_path.write_text(json.dumps(spec_dict, indent=2) + "\n")

    results_path = out_path / "results.jsonl"
    if not resume and results_path.exists():
        results_path.unlink()
    completed = load_results(out_path) if resume else {}

    cells = spec.expand()
    for cell in cells:
        cell["flight_dir"] = str(
            out_path / "flight" / _safe_cell_dir(str(cell["cell_id"]))
        )
    pending = [c for c in cells if c["cell_id"] not in completed]
    skipped = len(cells) - len(pending)
    say(
        f"campaign {spec.name!r}: {len(cells)} cells "
        f"({skipped} already done, {len(pending)} to run, "
        f"workers={workers or 'serial'})"
    )

    if metrics_every < 0:
        raise ConfigurationError(
            f"metrics_every must be >= 0, got {metrics_every}"
        )
    seen_records: List[Dict[str, object]] = list(completed.values())
    # The parent-side authoritative aggregate: per-cell / per-group
    # snapshots merge here as records land, plus runner-level counters
    # (export failures). Served live when metrics_port is set; returned
    # on the CampaignRun either way.
    live_registry = MetricsRegistry()

    def export_metrics() -> None:
        # Lazy import: the analysis layer depends on this module, and the
        # runner must stay importable without the analytics stack loaded.
        from repro.analysis.campaigns.export import export_records_metrics

        try:
            export_records_metrics(
                seen_records,
                name=spec.name,
                spec=spec_dict,
                out_dir=out_path / "metrics",
                extra=live_registry.snapshot(),
            )
        except Exception as exc:  # noqa: BLE001 - observability never kills a sweep
            # Counted, not just noted: /healthz reports degraded while
            # this counter is non-zero, so swallowed export failures are
            # no longer invisible.
            live_registry.counter(
                "campaign_export_errors_total",
                "In-flight metrics export failures",
            ).inc(campaign=spec.name)
            say(f"  note: in-flight metrics export failed: {exc}")

    server = None
    live_source = None
    if metrics_port is not None:
        from repro.telemetry.server import CampaignLiveSource, MetricsServer

        live_source = CampaignLiveSource(
            name=spec.name,
            spec=spec_dict,
            out_dir=out_path,
            registry=live_registry,
        )
        for done in seen_records:
            live_source.add_record(done)
        server = MetricsServer(live_source, port=metrics_port)
        server.start()
        (out_path / "server.json").write_text(
            json.dumps(
                {
                    "host": server.host,
                    "port": server.port,
                    "url": server.url,
                    "pid": os.getpid(),
                    "endpoints": [
                        "/metrics",
                        "/healthz",
                        "/progress",
                        "/alerts",
                        "/dashboard",
                    ],
                },
                indent=2,
            )
            + "\n"
        )
        say(f"live metrics: {server.url}")

    def on_record(record: Dict[str, object]) -> None:
        # The snapshot is transport metadata, not part of the results
        # schema: pop it before the record is persisted or analyzed.
        snapshot = record.pop("_metrics_snapshot", None)
        if snapshot:
            live_registry.merge(snapshot)  # type: ignore[arg-type]
        record["recorded_at"] = time.time()
        _append_record(results_path, record)
        seen_records.append(record)
        if live_source is not None:
            live_source.add_record(record)
        if metrics_every and len(seen_records) % metrics_every == 0:
            export_metrics()
        status = record.get("status")
        detail = (
            f"err={record.get('final_error')}"
            if status == "ok"
            else record.get("error")
        )
        say(f"  [{status}] {record.get('cell_id')} {detail}")

    try:
        if pending:
            if workers == 0:
                # The batched engine gets its speedup from grouping cells
                # into one whole-array program; an injected executor
                # (tests) keeps the per-cell serial path, where batched
                # cells run one by one.
                if spec.engine == "batched" and executor is execute_cell:
                    stats = _run_batched(pending, retries, on_record)
                else:
                    stats = _run_serial(pending, retries, on_record, executor)
            elif spec.engine == "batched":
                stats = _run_parallel_batched(
                    pending,
                    workers,
                    timeout,
                    retries,
                    on_record,
                    start_method=start_method,
                )
            else:
                stats = _run_parallel(
                    pending,
                    workers,
                    timeout,
                    retries,
                    on_record,
                    start_method=start_method,
                )
        else:
            stats = {"ok": 0, "failed": 0, "retries_used": 0}
        if metrics_every:
            export_metrics()
    finally:
        if server is not None:
            server.close()

    return CampaignRun(
        spec=spec,
        out_dir=out_path,
        total_cells=len(cells),
        skipped=skipped,
        executed=len(pending),
        ok=stats["ok"],
        failed=stats["failed"],
        retries_used=stats["retries_used"],
        metrics=live_registry,
    )
