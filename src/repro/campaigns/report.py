"""Summarize a campaign result set: ``python -m repro.campaigns.report <dir>``.

Reads the ``results.jsonl`` + ``campaign.json`` a
:func:`~repro.campaigns.runner.run_campaign` sweep wrote and prints:

1. **Coverage** — expected vs recorded vs failed cells (``--strict`` turns
   an incomplete or partially failed campaign into exit code 1, which is
   what the CI smoke job keys on);
2. **Scenario summary** — one row per (algorithm, topology, fault) group,
   aggregated over seeds: convergence fraction, rounds-to-tolerance,
   final error (median), recovery rounds after the fault (censored mean —
   the Fig. 4 vs Fig. 7 headline number), worst mass-conservation drift,
   anomaly-alert and flight-dump counts;
3. **Anomaly alerts / flight dumps** — per-cell detector counts and the
   black-box dump paths (``--strict-alerts`` turns any fired alert into
   exit code 1);
4. **Failures** — per-cell errors for anything that did not finish.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ExperimentError
from repro.experiments.tables import render_table
from repro.campaigns.runner import as_float, load_results
from repro.util.stats import finite_mean as _mean
from repro.util.stats import finite_median as _median


def _alert_count(record: Dict[str, object]) -> int:
    """Anomaly alerts in one record; 0 for pre-tracing-era records."""
    total = record.get("alerts_total")
    if isinstance(total, (int, float)):
        return int(total)
    alerts = record.get("alerts")
    if isinstance(alerts, dict):
        return int(sum(v for v in alerts.values() if isinstance(v, (int, float))))
    return 0


def _flight_dumps(record: Dict[str, object]) -> List[str]:
    dumps = record.get("flight_dumps")
    if isinstance(dumps, list):
        return [str(p) for p in dumps]
    return []


def summarize(
    records: Dict[str, Dict[str, object]], expected_cells: Optional[int] = None
) -> Tuple[str, int]:
    """Render the report; returns (text, number of problem cells)."""
    ok = [r for r in records.values() if r.get("status") == "ok"]
    failed = [r for r in records.values() if r.get("status") != "ok"]

    coverage_rows = [
        ["expected cells", expected_cells if expected_cells is not None else "-"],
        ["recorded", len(records)],
        ["ok", len(ok)],
        ["failed", len(failed)],
        ["anomaly alerts", sum(_alert_count(r) for r in records.values())],
        ["flight dumps", sum(len(_flight_dumps(r)) for r in records.values())],
    ]
    sections = [
        "Coverage\n" + render_table(["quantity", "value"], coverage_rows)
    ]

    groups: Dict[Tuple[str, str, str], List[Dict[str, object]]] = {}
    for record in ok:
        key = (
            str(record.get("algorithm")),
            str(record.get("topology")),
            str(record.get("fault")),
        )
        groups.setdefault(key, []).append(record)

    rows: List[List[object]] = []
    for (algorithm, topology, fault), group in sorted(groups.items()):
        conv = [bool(r.get("converged")) for r in group]
        tol_rounds = [
            float(r["rounds_to_tolerance"])
            for r in group
            if r.get("rounds_to_tolerance") is not None
        ]
        finals = [as_float(r.get("final_error")) for r in group]
        recoveries = [
            as_float(r.get("recovery_rounds"))
            for r in group
            if r.get("recovery_rounds") is not None
        ]
        unrecovered = sum(1 for r in group if r.get("recovered") is False)
        drifts = [as_float(r.get("mass_drift_floor")) for r in group]
        rows.append(
            [
                algorithm,
                topology,
                fault,
                len(group),
                f"{sum(conv)}/{len(conv)}",
                _mean(tol_rounds),
                _median(finals),
                _mean(recoveries),
                unrecovered,
                max(drifts) if drifts else None,
                sum(_alert_count(r) for r in group),
                sum(len(_flight_dumps(r)) for r in group),
            ]
        )
    if rows:
        sections.append(
            "Scenario summary (aggregated over seeds; recovery_rounds is "
            "censored at the\nremaining budget when a run never regained its "
            "pre-failure accuracy)\n"
            + render_table(
                [
                    "algorithm",
                    "topology",
                    "fault",
                    "runs",
                    "converged",
                    "mean_rounds_to_eps",
                    "median_final_error",
                    "mean_recovery_rounds",
                    "unrecovered",
                    "worst_mass_drift_floor",
                    "alerts",
                    "flight_dumps",
                ],
                rows,
            )
        )
    else:
        sections.append("Scenario summary: no successful runs recorded.")

    alert_rows = [
        [
            r.get("cell_id"),
            _alert_count(r),
            ", ".join(
                f"{k}={v}"
                for k, v in sorted(r.get("alerts", {}).items())  # type: ignore[union-attr]
            )
            if isinstance(r.get("alerts"), dict)
            else "-",
            "; ".join(_flight_dumps(r)) or "-",
        ]
        for r in sorted(records.values(), key=lambda r: str(r.get("cell_id")))
        if _alert_count(r) or _flight_dumps(r)
    ]
    if alert_rows:
        sections.append(
            "Anomaly alerts & flight-recorder dumps\n"
            + render_table(
                ["cell", "alerts", "by detector", "dump paths"], alert_rows
            )
        )

    if failed:
        fail_rows = [
            [r.get("cell_id"), r.get("attempts"), r.get("error")]
            for r in sorted(failed, key=lambda r: str(r.get("cell_id")))
        ]
        sections.append(
            "Failures\n" + render_table(["cell", "attempts", "error"], fail_rows)
        )

    problems = len(failed)
    if expected_cells is not None and len(records) < expected_cells:
        problems += expected_cells - len(records)
    return "\n\n".join(sections), problems


def render_report(directory: pathlib.Path) -> Tuple[str, int]:
    if not (directory / "results.jsonl").exists():
        raise ExperimentError(
            f"{directory} has no results.jsonl — not a campaign directory?"
        )
    records = load_results(directory)
    expected: Optional[int] = None
    header = f"Campaign report — {directory}"
    spec_path = directory / "campaign.json"
    if spec_path.exists():
        spec = json.loads(spec_path.read_text())
        expected = (
            len(spec.get("algorithms", []))
            * len(spec.get("topologies", []))
            * len(spec.get("faults", []))
            * len(spec.get("seeds", []))
        )
        header = f"Campaign report — {spec.get('name')} ({directory})"
    body, problems = summarize(records, expected)
    return header + "\n\n" + body, problems


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaigns.report",
        description="Summarize a campaign result directory.",
    )
    parser.add_argument("path", help="campaign output directory")
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when cells failed or the campaign is incomplete",
    )
    parser.add_argument(
        "--strict-alerts",
        action="store_true",
        help="exit 1 when any anomaly-detector alert fired",
    )
    return parser


def total_alerts(directory: pathlib.Path) -> int:
    """Total anomaly-detector alerts recorded across a campaign."""
    records = load_results(directory)
    return sum(_alert_count(r) for r in records.values())


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    path = pathlib.Path(args.path)
    try:
        text, problems = render_report(path)
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(text)
    status = 0
    if args.strict and problems:
        print(f"error: {problems} problem cell(s)", file=sys.stderr)
        status = 1
    if args.strict_alerts:
        alerts = total_alerts(path)
        if alerts:
            print(f"error: {alerts} anomaly alert(s) fired", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
