"""Declarative scenario-sweep campaigns over the fault-injection stack.

A campaign expands an algorithm x topology x fault-schedule x seed grid
(:class:`~repro.campaigns.spec.CampaignSpec`), executes the cells —
in-process or across ``multiprocessing`` workers with timeouts and bounded
retries (:func:`~repro.campaigns.runner.run_campaign`) — and checkpoints
per-cell outcome records into a resumable ``results.jsonl`` summarized by
:mod:`repro.campaigns.report`.

Entry points::

    python -m repro.experiments campaign <spec|builtin> [--workers N]
    python -m repro.campaigns.report <dir> [--strict]
"""

from repro.campaigns.builtin import BUILTIN_SPECS
from repro.campaigns.runner import (
    CampaignRun,
    execute_cell,
    load_results,
    run_campaign,
)
from repro.campaigns.spec import CampaignSpec, load_spec

__all__ = [
    "BUILTIN_SPECS",
    "CampaignRun",
    "CampaignSpec",
    "execute_cell",
    "load_results",
    "load_spec",
    "run_campaign",
]
