"""CLI for campaign sweeps: ``python -m repro.experiments campaign <spec>``.

``<spec>`` is a builtin name (``fig4-recovery``, ``smoke``, ``loss-grid``)
or a TOML/JSON spec file; results land in ``--out`` (default
``results/campaigns/<name>``) as a resumable ``results.jsonl``, and the
scenario summary prints at the end. Re-invoking the same command resumes:
already-recorded cells are skipped.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.exceptions import ConfigurationError
from repro.campaigns.report import render_report
from repro.campaigns.runner import run_campaign
from repro.campaigns.spec import load_spec


def build_parser() -> argparse.ArgumentParser:
    from repro.campaigns.builtin import BUILTIN_SPECS

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments campaign",
        description="Run a declarative fault-injection campaign sweep.",
    )
    parser.add_argument(
        "spec",
        help=(
            "campaign spec: a .toml/.json file or a builtin name "
            f"({', '.join(sorted(BUILTIN_SPECS))})"
        ),
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="result directory (default: results/campaigns/<spec name>)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="parallel worker processes; 0 = run in-process (default)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-run timeout in seconds, enforced in worker mode (default: 300)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries per cell after a failed/timed-out attempt (default: 1)",
    )
    parser.add_argument(
        "--engine",
        choices=("object", "vectorized", "batched"),
        default=None,
        help=(
            "override the spec's execution engine; the default output "
            "directory gains a -<engine> suffix so the runs don't collide"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("numpy", "numba"),
        default=None,
        help=(
            "override the spec's kernel backend (vectorized/batched "
            "engines only); 'numba' falls back to numpy with a warning "
            "when numba is not installed. The default output directory "
            "gains a -<backend> suffix so the runs don't collide"
        ),
    )
    parser.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help=(
            "multiprocessing start method for --workers > 0 "
            "(default: fork on Linux, spawn elsewhere)"
        ),
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="discard any existing results.jsonl instead of resuming",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    parser.add_argument(
        "--no-report",
        action="store_true",
        help="skip the scenario summary after the sweep",
    )
    parser.add_argument(
        "--metrics-every",
        type=int,
        metavar="N",
        default=0,
        help=(
            "re-export campaign aggregates to <out>/metrics/ "
            "(Prometheus/JSONL/CSV) after every N recorded cells, for "
            "in-flight observability; 0 disables (default)"
        ),
    )
    parser.add_argument(
        "--metrics-port",
        type=int,
        metavar="PORT",
        default=None,
        help=(
            "serve live /metrics, /healthz, /progress, /alerts and "
            "/dashboard over HTTP for the duration of the sweep; 0 binds "
            "an ephemeral port (logged, and written to <out>/server.json "
            "either way); omit to open no socket at all (default)"
        ),
    )
    parser.add_argument(
        "--strict-alerts",
        action="store_true",
        help=(
            "exit nonzero when any anomaly-detector alert fired during "
            "the sweep (implies the post-sweep report)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        spec = load_spec(args.spec)
        overrides = {}
        if args.engine is not None and args.engine != spec.engine:
            overrides["engine"] = args.engine
        if args.backend is not None and args.backend != spec.backend:
            overrides["backend"] = args.backend
        if overrides:
            from repro.campaigns.spec import CampaignSpec

            spec = CampaignSpec.from_dict({**spec.to_dict(), **overrides})
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    default_out = f"results/campaigns/{spec.name}"
    if args.engine is not None and args.engine != "object":
        default_out += f"-{args.engine}"
    if args.backend is not None:
        default_out += f"-{args.backend}"
    out_dir = pathlib.Path(args.out or default_out)
    log = (lambda _msg: None) if args.quiet else print
    try:
        run = run_campaign(
            spec,
            out_dir,
            workers=args.workers,
            timeout=args.timeout,
            retries=args.retries,
            resume=not args.fresh,
            log=log,
            metrics_every=args.metrics_every,
            start_method=args.start_method,
            metrics_port=args.metrics_port,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"campaign {spec.name!r}: {run.total_cells} cells — "
        f"{run.skipped} skipped (already done), {run.ok} ok, "
        f"{run.failed} failed, {run.retries_used} retries "
        f"-> {run.results_path}"
    )
    if not args.no_report or args.strict_alerts:
        text, _problems = render_report(out_dir)
        if not args.no_report:
            print()
            print(text)
    if args.strict_alerts:
        from repro.campaigns.report import total_alerts

        alerts = total_alerts(out_dir)
        if alerts:
            print(f"error: {alerts} anomaly alert(s) fired", file=sys.stderr)
            return 1
    return 1 if run.failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
